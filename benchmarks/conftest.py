"""Shared benchmark configuration.

Benchmarks regenerate every table/figure of the paper at a reduced dataset
scale (recorded in each printout and in EXPERIMENTS.md).  Graphs are cached
process-wide by the experiment runner, so the first benchmark touching a
dataset pays its synthesis cost once.
"""

import pytest

from repro.experiments.runner import ExperimentConfig

#: one shared configuration so every benchmark sees identical workloads
BENCH_CONFIG = ExperimentConfig(
    scale=0.05,
    seed=7,
    snapshots=6,
    large_dataset_shrink=0.1,
)


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    return BENCH_CONFIG


@pytest.fixture(scope="session")
def show():
    """Print a FigureResult block once per benchmark session."""
    seen = set()

    def _show(result):
        if result.figure_id not in seen:
            seen.add(result.figure_id)
            print("\n" + result.to_text())
        return result

    return _show
