"""Extra ablations beyond Fig. 11b (DESIGN.md §6).

Covers the two design choices the paper folds into the algorithm but never
isolates in its own ablation: the deletion-to-addition transform and the
selective RNN processing.
"""

from dataclasses import replace

from repro.baselines.algorithms import (
    AlgorithmParams,
    Placement,
    build_costs,
    measure_quantities,
)
from repro.experiments.runner import ExperimentRunner


def _workload(config):
    runner = ExperimentRunner(config)
    graph = runner.graph("Wikipedia")
    return graph, runner.spec("Wikipedia")


def test_deletion_to_addition_transform(benchmark, config):
    """Removing the transform makes DiTile pay RACE-style deletion costs."""
    graph, spec = _workload(config)
    placement = Placement(snapshot_groups=1, vertex_groups=16)
    quantities = measure_quantities(graph)

    def run():
        with_transform = build_costs(
            graph, spec, "ditile", placement, quantities=quantities
        )
        # Without the transform, deletions inflate the invalidated set the
        # same way Race-Alg's deletion penalty does.
        without_transform = build_costs(
            graph, spec, "race", placement,
            params=replace(AlgorithmParams(), race_deletion_penalty=1.6),
            quantities=quantities,
        )
        return with_transform, without_transform

    with_transform, without_transform = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert without_transform.total_macs > with_transform.total_macs
    deletions = sum(q.removed_edges for q in quantities[1:])
    assert deletions > 0  # the workload actually exercises deletions


def test_selective_rnn_processing(benchmark, config):
    """Selective RNN processing must save RNN MACs proportional to reuse."""
    graph, spec = _workload(config)
    placement = Placement(snapshot_groups=1, vertex_groups=16)
    quantities = measure_quantities(graph)

    def run():
        selective = build_costs(
            graph, spec, "ditile", placement, quantities=quantities
        )
        full_rnn = build_costs(
            graph, spec, "re", placement, quantities=quantities
        )
        return selective, full_rnn

    selective, full_rnn = benchmark.pedantic(run, rounds=1, iterations=1)
    assert selective.rnn_macs < full_rnn.rnn_macs
    # The saving tracks the reuse level: well below half the full cost at
    # the ~10% dissimilarity of the synthesized Wikipedia trace.
    assert selective.rnn_macs < 0.6 * full_rnn.rnn_macs
