"""Fig. 10 benchmark: analytic estimate vs measured traffic.

Paper: actual off-chip DRAM access exceeds the analytic estimate by 5% on
average; actual on-chip transfer exceeds it by 9%.
"""

from repro.experiments.figures import figure10


def test_fig10_model_accuracy(benchmark, config, show):
    result = benchmark.pedantic(figure10, args=(config,), rounds=1, iterations=1)
    show(result)
    avg = result.rows[-1]
    # Actual >= estimate, and the excess stays in a single-digit-to-teens
    # percent band like the paper's +5% / +9%.
    assert 1.0 <= avg[1] <= 1.15
    assert 1.0 <= avg[2] <= 1.25
