"""Fig. 11a benchmark: PE utilization on the Wikipedia dataset.

Paper: DiTile improves PE utilization by 23.8% on average over baselines.
Our busy-fraction metric counts redundant work as busy, which flatters the
full-recompute designs; DiTile must still beat the incremental baselines
(see EXPERIMENTS.md for the discussion).
"""

from repro.experiments.figures import figure11a


def test_fig11a_pe_utilization(benchmark, config, show):
    result = benchmark.pedantic(
        figure11a, args=(config,), rounds=1, iterations=1
    )
    show(result)
    utilization = {row[0]: row[1] for row in result.rows}
    assert 0.0 < utilization["DiTile-DGNN"] <= 1.0
    assert utilization["DiTile-DGNN"] > utilization["RACE"]
    assert utilization["DiTile-DGNN"] > utilization["MEGA"]
