"""Fig. 11b benchmark: the six ablation variants on Wikipedia.

Paper: NoPs +38.9%, NoWos +18.9%, NoRa +12.0%, OnlyPs +23.0%,
OnlyWos +45.9%, OnlyRa +68.8% execution-time increase over full DiTile.
"""

from repro.experiments.figures import figure11b


def test_fig11b_ablation(benchmark, config, show):
    result = benchmark.pedantic(
        figure11b, args=(config,), rounds=1, iterations=1
    )
    show(result)
    rows = result.row_dict()
    # The full design is fastest; every variant degrades.
    assert rows["DiTile-DGNN"][2] == 0
    for name in ("NoPs", "NoWos", "NoRa", "OnlyPs", "OnlyWos", "OnlyRa"):
        assert rows[name][2] > 0, name
    # Single-contribution variants lose more than single-removal variants
    # on average (each contribution matters, paper §7.5).
    only = (rows["OnlyPs"][2] + rows["OnlyWos"][2] + rows["OnlyRa"][2]) / 3
    missing_one = (rows["NoPs"][2] + rows["NoWos"][2] + rows["NoRa"][2]) / 3
    assert only >= missing_one
