"""Fig. 12 benchmark: normalized energy breakdown.

Paper: DiTile improves energy efficiency by 83.4% / 84.0% / 75.6% / 71.4%
vs ReaDy / DGNN-Booster / RACE / MEGA (normalized energies 6.26 / 6.01 /
4.10 / 3.50), with control+configuration under 7% of DiTile's total.
"""

import numpy as np

from repro.experiments.figures import figure12


def test_fig12_energy(benchmark, config, show):
    result = benchmark.pedantic(figure12, args=(config,), rounds=1, iterations=1)
    show(result)
    by_accel = {}
    for row in result.rows:
        by_accel.setdefault(row[1], []).append(row[2])
    averages = {name: float(np.mean(vals)) for name, vals in by_accel.items()}
    # DiTile is the reference and the most efficient design everywhere.
    assert averages["DiTile-DGNN"] == 1.0
    for name in ("ReaDy", "DGNN-Booster", "RACE", "MEGA"):
        assert averages[name] > 1.3, name
    # ReaDy (ReRAM writes) and Booster (FPGA fabric) burn the most energy.
    assert averages["ReaDy"] > averages["RACE"]
    assert averages["ReaDy"] > averages["MEGA"]
    assert averages["DGNN-Booster"] > averages["MEGA"]
    # Control share stays under the paper's 7% bound (checked in the note).
    control_rows = [row[6] for row in result.rows if row[1] == "DiTile-DGNN"]
    assert max(control_rows) < 0.07
