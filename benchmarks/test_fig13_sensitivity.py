"""Fig. 13 benchmark: sensitivity to snapshot dissimilarity.

Paper: baselines run x2.92 / x1.72 / x1.51 slower than DiTile on average
as dissimilarity grows through 0-5% / 5-10% / 10-15% — the advantage
shrinks with dissimilarity but persists.
"""

from repro.experiments.figures import figure13


def test_fig13_sensitivity(benchmark, config, show):
    result = benchmark.pedantic(figure13, args=(config,), rounds=1, iterations=1)
    show(result)
    averages = [row[-1] for row in result.rows]
    # Monotone decreasing advantage, always above 1x.
    assert averages[0] > averages[1] > averages[2]
    assert all(avg > 1.0 for avg in averages)
    # The low-dissimilarity band shows the largest gap, in the paper's
    # 1.5x-3.5x range.
    assert 1.5 <= averages[0] <= 4.5
