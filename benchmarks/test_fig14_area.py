"""Fig. 14 benchmark: area breakdown at chip / tile / PE level.

Paper: chip = tiles 77.8% / buffer 15.7% / NoC 5.6% / logic 0.9%;
tile = PE array 60.5% / distributed buffer 28.4% / FIFO 8.1% / mesh 2.3% /
control 0.7%; PE = MAC 59.4% / local buffer 23.8% / control 2.0%.
"""

import pytest

from repro.experiments.figures import figure14


def test_fig14_area(benchmark, show):
    result = benchmark.pedantic(figure14, rounds=1, iterations=1)
    show(result)
    values = {(row[0], row[1]): row[2] for row in result.rows}
    assert values[("chip", "tiles")] == pytest.approx(77.8, abs=0.5)
    assert values[("chip", "on_chip_buffer")] == pytest.approx(15.7, abs=0.5)
    assert values[("chip", "reconfigurable_noc")] == pytest.approx(5.6, abs=0.5)
    assert values[("tile", "pe_array")] == pytest.approx(60.5, abs=0.5)
    assert values[("tile", "distributed_buffer")] == pytest.approx(28.4, abs=0.5)
    assert values[("pe", "mac_array")] == pytest.approx(59.4, abs=0.5)
    assert values[("pe", "local_buffer")] == pytest.approx(23.8, abs=0.5)
