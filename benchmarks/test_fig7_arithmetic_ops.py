"""Fig. 7 benchmark: arithmetic operations per algorithm per dataset.

Paper: DiTile-Alg reduces operations by 65.7% / 33.9% / 26.4% on average
vs Re-Alg / Race-Alg / Mega-Alg.
"""

import numpy as np

from repro.experiments.figures import figure7


def test_fig7_arithmetic_ops(benchmark, config, show):
    result = benchmark.pedantic(figure7, args=(config,), rounds=1, iterations=1)
    show(result)
    per_dataset = result.rows[:-1]
    # DiTile-Alg does the least work on every dataset.
    for row in per_dataset:
        assert row[4] == min(row[1:5]), row[0]
    # Average reduction vs Re-Alg lands near the paper's 65.7%.
    avg = result.rows[-1]
    reduction = 1.0 - avg[4] / avg[1]
    assert 0.5 <= reduction <= 0.8
    # Race-Alg and Mega-Alg sit strictly between Re-Alg and DiTile-Alg.
    ratios = np.array([avg[2] / avg[1], avg[3] / avg[1]])
    assert np.all((ratios > 0.3) & (ratios < 0.9))
