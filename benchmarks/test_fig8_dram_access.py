"""Fig. 8 benchmark: DRAM traffic per algorithm per dataset.

Paper: DiTile reduces DRAM access by 58.1% / 26.6% / 33.5% on average vs
Re-Alg / Race-Alg / Mega-Alg.
"""

from repro.experiments.figures import figure8


def test_fig8_dram_access(benchmark, config, show):
    result = benchmark.pedantic(figure8, args=(config,), rounds=1, iterations=1)
    show(result)
    for row in result.rows[:-1]:
        assert row[4] == min(row[1:5]), row[0]
    avg = result.rows[-1]
    reduction_vs_re = 1.0 - avg[4] / avg[1]
    assert 0.4 <= reduction_vs_re <= 0.75
    # Race-Alg and Mega-Alg land close together, both well above DiTile
    # (the paper's reductions: 26.6% and 33.5%).
    assert avg[2] > 1.2 * avg[4]
    assert avg[3] > 1.2 * avg[4]
