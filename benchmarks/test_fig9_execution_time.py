"""Fig. 9 benchmark: execution cycles of all five accelerators.

Paper: DiTile cuts execution time by 48.4% / 56.1% / 23.2% / 36.1% on
average vs ReaDy / DGNN-Booster / RACE / MEGA, and performs 1.3x-3.0x
better per dataset.
"""

from repro.experiments.figures import figure9


def test_fig9_execution_time(benchmark, config, show):
    result = benchmark.pedantic(figure9, args=(config,), rounds=1, iterations=1)
    show(result)
    for row in result.rows[:-1]:
        ditile = row[5]
        assert all(ditile < baseline for baseline in row[1:5]), row[0]
    avg = result.rows[-1]
    ready, booster, race, mega, ditile = avg[1:6]
    # The incremental designs (RACE, MEGA) run closest to DiTile; the
    # full-recompute designs (ReaDy, Booster) trail far behind.  Speedups
    # stay within the paper's 1.3x-3.0x envelope (widened for the reduced
    # scale).
    closest = min(ready, booster, race, mega)
    assert race <= closest * 1.1
    assert ready > race and booster > race
    for baseline in (ready, booster, race, mega):
        assert 1.1 <= baseline / ditile <= 4.0
