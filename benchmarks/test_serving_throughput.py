"""Serving-layer benchmark: events/sec and window-latency percentiles.

Serves a synthetic power-law event stream through the full online
pipeline (threaded ingest, plan cache, batched worker-pool execution) and
records throughput plus p50/p95 window latency.  The measured service
statistics are exported to ``BENCH_serving.json`` next to the working
directory, so runs can be compared across commits.
"""

import json
from pathlib import Path

from repro.core.plan import DGNNSpec
from repro.ditile import DiTileAccelerator
from repro.serving import ServiceConfig, StreamingService, synthetic_event_stream

#: stream shape: large enough to exercise batching, backpressure, and the
#: plan cache, small enough to stay laptop-friendly
NUM_EVENTS = 12_000
NUM_VERTICES = 256
NUM_WINDOWS = 48

OUTPUT = Path("BENCH_serving.json")


def _serve_once():
    stream = synthetic_event_stream(
        num_vertices=NUM_VERTICES, num_events=NUM_EVENTS, seed=7
    )
    first, last = stream.time_span
    config = ServiceConfig(
        window=(last - first) / NUM_WINDOWS,
        workers=2,
        max_batch_windows=4,
        queue_capacity=8,
    )
    spec = DGNNSpec.classic(64)
    return StreamingService(DiTileAccelerator(), config).serve(stream, spec)


def test_serving_throughput(benchmark):
    report = benchmark.pedantic(_serve_once, rounds=1, iterations=1)
    stats = report.stats

    # Emit the machine-readable record before asserting anything, so a
    # regression still leaves the measurements on disk.
    payload = {
        "stream": {
            "num_events": NUM_EVENTS,
            "num_vertices": NUM_VERTICES,
            "num_windows": stats.windows,
        },
        "service": stats.as_dict(),
        "total_cycles": report.total_cycles,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2, sort_keys=True))
    print(
        f"\nserving: {stats.events_per_sec:,.0f} events/s, "
        f"p50={1e3 * stats.p50_latency_s:.2f} ms, "
        f"p95={1e3 * stats.p95_latency_s:.2f} ms "
        f"(plan hit rate {stats.plan_hit_rate:.1%}) -> {OUTPUT}"
    )

    assert stats.events == NUM_EVENTS
    assert stats.windows == NUM_WINDOWS
    assert stats.late_events == 0
    assert stats.events_per_sec > 1_000  # generous floor: the analytic
    # simulator prices a window in milliseconds, so tens of thousands of
    # events/sec is typical even on slow CI machines
    assert 0 < stats.p50_latency_s <= stats.p95_latency_s
    assert stats.plan_hit_rate > 0
    assert report.total_cycles > 0
