"""Serving-layer benchmark: events/sec and window-latency percentiles.

Runs the ``serving/throughput[standard]`` bench case (the full online
pipeline: threaded ingest, plan cache, batched worker-pool execution)
through :class:`repro.bench.BenchRunner` and refreshes the committed
``BENCH_serving.json`` record.  The same record is reproducible from the
CLI::

    repro bench run --case "serving/throughput[standard]" --json BENCH_serving.json

The committed ``benchmarks/baselines/full.json`` entry for the case acts
as the baseline: deterministic counters (events, windows, plan-cache
behaviour, modelled cycles) must match it exactly; wall-clock timings
are reported but not gated here — the ``repro bench compare`` tolerance
band handles those in CI.
"""

from pathlib import Path

from repro.bench import BenchRecord, BenchRunner, compare_records

CASE = "serving/throughput[standard]"

ROOT = Path(__file__).resolve().parent.parent
BASELINE = ROOT / "benchmarks" / "baselines" / "full.json"
OUTPUT = ROOT / "BENCH_serving.json"


def test_serving_throughput():
    full_baseline = BenchRecord.load(BASELINE)
    baseline = BenchRecord(
        cases=[full_baseline.case(CASE)],
        suite=full_baseline.suite,
        environment=full_baseline.environment,
    )
    record = BenchRunner(repeats=3, warmup=1).run(names=[CASE])

    # Emit the machine-readable record before asserting anything, so a
    # regression still leaves the fresh measurements on disk.
    record.save(OUTPUT)
    case = record.case(CASE)
    print(
        f"\nserving: {case.timings['events_per_sec']:,.0f} events/s, "
        f"p50={1e3 * case.timings['p50_latency_s']:.2f} ms, "
        f"p95={1e3 * case.timings['p95_latency_s']:.2f} ms -> {OUTPUT.name}"
    )

    report = compare_records(baseline, record)
    assert not report.counter_failures, report.render_text()

    assert case.counters["events"] == 12_000
    assert case.counters["windows"] == 48
    assert case.counters["late_events"] == 0
    assert case.counters["total_cycles"] > 0
    assert case.timings["events_per_sec"] > 1_000  # generous floor: the
    # analytic simulator prices a window in milliseconds, so tens of
    # thousands of events/sec is typical even on slow CI machines
    assert 0 < case.timings["p50_latency_s"] <= case.timings["p95_latency_s"]
