"""Supplementary benchmarks: pipeline utilization, roofline, link loads,
front-end overhead (beyond the paper's figures; see EXPERIMENTS.md)."""

from repro.experiments.supplementary import (
    frontend_overhead,
    link_load_analysis,
    pipeline_utilization,
    roofline_classification,
)


def test_pipeline_utilization(benchmark, config, show):
    result = benchmark.pedantic(
        pipeline_utilization, args=(config,), rounds=1, iterations=1
    )
    show(result)
    rows = result.row_dict()
    balanced = rows["DiTile (balanced)"]
    natural = rows["NoWos (natural split)"]
    # Balance shortens the makespan (or at worst ties).
    assert balanced[1] <= natural[1] * 1.001
    for row in result.rows:
        assert 0.0 < row[2] <= 1.0


def test_roofline_classification(benchmark, config, show):
    result = benchmark.pedantic(
        roofline_classification, args=(config,), rounds=1, iterations=1
    )
    show(result)
    bounds = {row[2] for row in result.rows}
    assert bounds <= {"compute", "memory", "interconnect", "overhead"}
    for row in result.rows:
        assert 0.0 <= row[4] <= 1.0


def test_link_load_analysis(benchmark, config, show):
    result = benchmark.pedantic(
        link_load_analysis, args=(config,), rounds=1, iterations=1
    )
    show(result)
    rows = result.row_dict()
    relink = rows["Re-Link"]
    mesh = rows["static mesh"]
    # The bypass never lengthens routes.
    assert relink[2] <= mesh[2] + 1e-9


def test_frontend_overhead(benchmark, config, show):
    result = benchmark.pedantic(
        frontend_overhead, args=(config,), rounds=1, iterations=1
    )
    show(result)
    for row in result.rows:
        assert row[3] < 50.0  # planning is far cheaper than execution
