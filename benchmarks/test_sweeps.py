"""Hardware-scaling sweep benchmarks (supplementary to the paper's figures:
scalability is claimed in §1/§8 but never plotted)."""

from repro.core.plan import DGNNSpec
from repro.experiments.runner import ExperimentRunner
from repro.experiments.sweeps import (
    buffer_scaling_sweep,
    gnn_depth_sweep,
    tile_scaling_sweep,
)


def _workload(config):
    runner = ExperimentRunner(config)
    return runner.graph("Wikipedia"), runner.spec("Wikipedia")


def test_tile_scaling(benchmark, config, show):
    graph, spec = _workload(config)
    result = benchmark.pedantic(
        tile_scaling_sweep, args=(graph, spec), rounds=1, iterations=1
    )
    show(result)
    cycles = [row[2] for row in result.rows]
    # More tiles never slow the workload down materially.
    assert cycles[-1] <= cycles[0] * 1.1


def test_buffer_scaling(benchmark, config, show):
    graph, spec = _workload(config)
    result = benchmark.pedantic(
        buffer_scaling_sweep,
        args=(graph, spec),
        kwargs={"capacities_kib": (64, 512, 4096)},
        rounds=1,
        iterations=1,
    )
    show(result)
    alphas = [row[1] for row in result.rows]
    assert alphas == sorted(alphas, reverse=True)


def test_depth_scaling(benchmark, config, show):
    graph, spec = _workload(config)
    result = benchmark.pedantic(
        gnn_depth_sweep,
        args=(graph, spec.feature_dim),
        kwargs={"hidden_dim": 64, "depths": (1, 2, 3)},
        rounds=1,
        iterations=1,
    )
    show(result)
    macs = [row[1] for row in result.rows]
    assert macs == sorted(macs)
