"""Table 1 benchmark: dataset synthesis matching the published statistics."""

from repro.experiments.figures import table1


def test_table1_datasets(benchmark, config, show):
    result = benchmark.pedantic(table1, args=(config,), rounds=1, iterations=1)
    show(result)
    assert len(result.rows) == 6
    for row in result.rows:
        published_ratio = row[1] / row[2]  # V/E
        synthesized_ratio = row[6] / row[7]
        assert abs(synthesized_ratio / published_ratio - 1.0) < 0.35
