"""Robustness and extension benchmarks: seed variance, steady-state
streaming (warm start), and the training-iteration extension."""

from repro.baselines.algorithms import Placement, build_costs
from repro.core.training import training_costs
from repro.experiments.runner import ExperimentConfig, ExperimentRunner
from repro.experiments.variance import seed_variance


def test_seed_variance(benchmark, config, show):
    small = ExperimentConfig(scale=0.02, snapshots=4,
                             large_dataset_shrink=0.1)
    result = benchmark.pedantic(
        seed_variance,
        args=(small,),
        kwargs={"seeds": (1, 2, 3)},
        rounds=1,
        iterations=1,
    )
    show(result)
    for row in result.rows:
        mean, cv = row[1], row[5]
        assert mean > 1.0  # every baseline slower than DiTile on every seed
        assert cv < 0.25  # headline ratios robust to synthesis noise


def test_warm_start_steady_state(benchmark, config):
    runner = ExperimentRunner(config)
    graph = runner.graph("Wikipedia")
    spec = runner.spec("Wikipedia")
    placement = Placement(snapshot_groups=1, vertex_groups=16)

    def run():
        cold = build_costs(graph, spec, "ditile", placement)
        warm = build_costs(graph, spec, "ditile", placement, warm_start=True)
        return cold, warm

    cold, warm = benchmark.pedantic(run, rounds=1, iterations=1)
    # Steady-state streaming amortizes away the cold start.
    assert warm.total_macs < cold.total_macs
    saving = 1.0 - warm.total_macs / cold.total_macs
    assert saving > 0.2  # the cold start dominates short windows


def test_training_extension(benchmark, config):
    runner = ExperimentRunner(config)
    graph = runner.graph("Wikipedia")
    spec = runner.spec("Wikipedia")
    model = runner.ditile()

    def run():
        inference = model.build_costs(graph, spec)
        train = training_costs(
            inference, spec,
            vertices_per_snapshot=[s.num_vertices for s in graph],
        )
        return inference, train

    inference, train = benchmark.pedantic(run, rounds=1, iterations=1)
    # One training iteration costs ~3x inference (forward + backward).
    ratio = train.total_macs / inference.total_macs
    assert 2.5 <= ratio <= 3.5
