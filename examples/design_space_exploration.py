"""Design-space exploration: ablations and hardware scaling.

Uses the ablation harness (Fig. 11b variants) plus a tile-array scaling
sweep to show how each DiTile contribution earns its keep and how the
design scales with the tile budget.

Run:  python examples/design_space_exploration.py
"""

from repro import DGNNSpec, HardwareConfig, load_dataset
from repro.accel import PipelineSimulator
from repro.experiments import ABLATION_VARIANTS, run_ablation
from repro.ditile import DiTileAccelerator


def main():
    graph = load_dataset("Wikipedia", scale=0.0625, seed=7)
    spec = DGNNSpec.classic(graph.feature_dim)

    print("== ablation on Wikipedia (Fig. 11b variants)")
    results = run_ablation(graph, spec)
    base = results["DiTile-DGNN"].execution_cycles
    for name in ABLATION_VARIANTS:
        r = results[name]
        delta = 100.0 * (r.execution_cycles / base - 1.0)
        print(
            f"  {name:12s} cycles={r.execution_cycles:12.3e} "
            f"({delta:+6.1f}%)  util={r.pe_utilization:.3f}"
        )

    print("\n== tile-array scaling (same workload)")
    print(f"  {'grid':>6s} {'tiles':>6s} {'cycles':>12s} {'energy(mJ)':>11s} "
          f"{'grid chosen by Alg.1':>22s}")
    for side in (2, 4, 8):
        hardware = HardwareConfig(
            grid_rows=side,
            grid_cols=side,
            distributed_buffer_bytes=side * side * 256 * 1024,
        )
        model = DiTileAccelerator(hardware)
        result = model.simulate(graph, spec)
        plan = model.plan(graph, spec)
        f = plan.factors
        print(
            f"  {side:>3d}x{side:<3d} {hardware.total_tiles:>5d} "
            f"{result.execution_cycles:12.3e} "
            f"{1e3 * result.energy_joules:11.3f} "
            f"{f.snapshot_groups:>11d}x{f.vertex_groups:<d}"
        )


def show_pipeline_gantt():
    """Round-level execution timeline of the chosen plan."""
    graph = load_dataset("Wikipedia", scale=0.02, snapshots=4, seed=7)
    spec = DGNNSpec.classic(graph.feature_dim)
    model = DiTileAccelerator()
    result = PipelineSimulator(model.hardware).run(model.plan(graph, spec))
    print("\n== pipeline timeline (round-level simulation)")
    print(result.gantt_text(width=64))
    print(
        f"makespan={result.makespan_cycles:.3e} cycles, "
        f"busy utilization={result.utilization():.3f}, "
        f"imbalance={result.imbalance():.3f}"
    )


if __name__ == "__main__":
    main()
    show_pipeline_gantt()
