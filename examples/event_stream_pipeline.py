"""Event-stream pipeline: CSV edge stream -> snapshots -> accelerator.

Real dynamic-graph traces arrive as timestamped edge events (the
continuous-time representation of paper §2.1).  This example walks the
full on-ramp: write a synthetic interaction stream to CSV, import it as a
continuous-time dynamic graph, discretize it into regular-interval
snapshots (Eq. 1), run the DiTile scheduler + simulator on the result, and
round-trip the discretized graph through the .npz persistence layer.

Run:  python examples/event_stream_pipeline.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import DGNNSpec, DiTileAccelerator
from repro.graphs import load_dynamic_graph, load_edge_stream, save_dynamic_graph


def synthesize_stream(path: Path, num_vertices: int = 400, num_events: int = 6000):
    """Write a power-law interaction stream with occasional unfollows."""
    rng = np.random.default_rng(11)
    weights = (np.arange(1, num_vertices + 1) ** -1.0)
    weights /= weights.sum()
    rows = ["src,dst,time,op"]
    live = set()
    for t in range(1, num_events + 1):
        if live and rng.random() < 0.15:  # deletions are the minority
            src, dst = list(live)[rng.integers(len(live))]
            live.discard((src, dst))
            rows.append(f"{src},{dst},{t},remove")
            continue
        src = int(rng.integers(num_vertices))
        dst = int(rng.choice(num_vertices, p=weights))
        if src != dst:
            live.add((src, dst))
            rows.append(f"{src},{dst},{t},add")
    path.write_text("\n".join(rows))


def main():
    with tempfile.TemporaryDirectory() as tmp:
        stream_path = Path(tmp) / "interactions.csv"
        synthesize_stream(stream_path)

        # 1. Import the continuous-time dynamic graph <G, O>.
        continuous = load_edge_stream(stream_path, name="interactions")
        first, last = continuous.time_span
        print(
            f"stream: |O|={continuous.num_events} events over "
            f"[{first:.0f}, {last:.0f}], V={continuous.num_vertices}"
        )

        # 2. Discretize at regular intervals (paper Eq. 1).
        graph = continuous.discretize(8, feature_dim=64)
        print(f"discretized: {graph.stats().summary()}")

        # 3. Plan and simulate on DiTile-DGNN.
        spec = DGNNSpec.classic(64)
        model = DiTileAccelerator()
        plan = model.plan(graph, spec)
        result = model.simulate(graph, spec)
        print(plan.summary())
        print(
            f"simulated: {result.execution_cycles:.3e} cycles, "
            f"{1e3 * result.energy_joules:.3f} mJ, "
            f"{result.dram_bytes / 2**20:.2f} MB DRAM"
        )

        # 4. Persist the discretized snapshots for later runs.
        archive = Path(tmp) / "interactions.npz"
        save_dynamic_graph(graph, archive)
        restored = load_dynamic_graph(archive)
        assert all(a == b for a, b in zip(graph, restored))
        print(f"round-tripped through {archive.name}: "
              f"{archive.stat().st_size / 1024:.0f} KiB")


if __name__ == "__main__":
    main()
