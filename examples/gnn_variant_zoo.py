"""GNN variant zoo: GCN vs GraphSAGE vs GIN vs EvolveGCN on one workload.

The paper abstracts all message-passing GNNs "in the form of adjacency
matrices" (§2.2); this example demonstrates that the library's redundancy-
free machinery really is kernel-agnostic: the exact incremental engine
reproduces full-recompute embeddings for every feature-recurrent variant,
and the weight-evolving EvolveGCN runs as a contrast.

Run:  python examples/gnn_variant_zoo.py
"""

import numpy as np

from repro import DGNNModel, IncrementalDGNN, generate_dynamic_graph
from repro.models import (
    EvolveGCNModel,
    GCNModel,
    LSTMCell,
    create_gin_model,
    create_sage_model,
)


def main():
    graph = generate_dynamic_graph(
        300, 1800, 6, dissimilarity=0.1, feature_dim=24, seed=5,
        with_features=True, name="variant-zoo",
    )
    print(f"workload: {graph.stats().summary()}\n")

    builders = {
        "GCN": lambda: GCNModel.create([24, 32, 16], seed=1),
        "GraphSAGE": lambda: create_sage_model([24, 32, 16], seed=1),
        "GIN": lambda: create_gin_model([24, 32, 16], seed=1),
    }
    print(f"{'variant':10s} {'reuse saved':>12s} {'max |err|':>10s}")
    for name, build in builders.items():
        model = DGNNModel(build(), LSTMCell.create(16, 12, seed=2))
        full = model.run(graph)
        engine = IncrementalDGNN(model)
        incremental = engine.run(graph)
        error = max(
            float(np.abs(full.hidden[t] - incremental.hidden[t]).max())
            for t in range(graph.num_snapshots)
        )
        print(
            f"{name:10s} {100 * engine.stats.reuse_fraction():11.1f}% "
            f"{error:10.2e}"
        )

    # EvolveGCN: the weights, not the features, carry the temporal signal.
    evolve = EvolveGCNModel.create([24, 32, 16], seed=3)
    outputs = evolve.run(graph)
    drift = [
        float(np.linalg.norm(outputs.weights[t][0] - outputs.weights[0][0]))
        for t in range(graph.num_snapshots)
    ]
    print("\nEvolveGCN layer-0 weight drift per snapshot:")
    print("  " + "  ".join(f"{d:.3f}" for d in drift))
    print("(monotone drift: the recurrent cell keeps adapting the kernel)")


if __name__ == "__main__":
    main()
