"""Quickstart: plan and simulate DGNN inference on DiTile-DGNN.

Runs the paper's classic DGCN (2-layer GCN + LSTM) over a scaled-down
Wikipedia dynamic graph, shows the scheduler's decisions (tiling factor,
parallel factors, balance), and compares DiTile against the four baseline
accelerators.

Run:  python examples/quickstart.py
"""

from repro import (
    DGNNBoosterAccelerator,
    DGNNSpec,
    DiTileAccelerator,
    MEGAAccelerator,
    RACEAccelerator,
    ReaDyAccelerator,
    load_dataset,
)


def main():
    # 1. Load a workload: a discrete-time dynamic graph (Table 1 registry).
    graph = load_dataset("Wikipedia", scale=0.0625, seed=0)
    stats = graph.stats()
    print(f"workload: {graph.name} — {stats.summary()}")

    # 2. Describe the model: the paper's evaluated DGCN.
    spec = DGNNSpec.classic(graph.feature_dim)
    print(
        f"model: {spec.num_gnn_layers}-layer GCN "
        f"({' -> '.join(map(str, spec.gcn_dims))}) + "
        f"{spec.rnn_kind.upper()}({spec.rnn_hidden_dim})"
    )

    # 3. Plan on DiTile-DGNN: Algorithm 1 (tiling + parallel factors) and
    #    Algorithm 2 (balance) run inside the scheduler.
    ditile = DiTileAccelerator()
    plan = ditile.plan(graph, spec)
    print(f"\n{plan.summary()}")
    print(
        f"tiling: alpha={plan.tiling.alpha} "
        f"(subgraph working set {plan.tiling.data_volume_bytes / 1024:.0f} KiB "
        f"vs buffer {plan.tiling.buffer_bytes / 1024:.0f} KiB)"
    )
    print(f"balance: utilization={plan.workload.utilization:.3f}")

    # 4. Simulate everyone on the same hardware budget.
    models = [
        ReaDyAccelerator(),
        DGNNBoosterAccelerator(),
        RACEAccelerator(),
        MEGAAccelerator(),
        ditile,
    ]
    print(f"\n{'accelerator':14s} {'cycles':>12s} {'time(ms)':>9s} "
          f"{'energy(mJ)':>10s} {'DRAM(MB)':>9s} {'speedup':>8s}")
    results = {m.name: m.simulate(graph, spec) for m in models}
    ditile_result = results["DiTile-DGNN"]
    for name, r in results.items():
        speedup = r.execution_cycles / ditile_result.execution_cycles
        print(
            f"{name:14s} {r.execution_cycles:12.3e} "
            f"{1e3 * r.execution_seconds:9.3f} "
            f"{1e3 * r.energy_joules:10.3f} "
            f"{r.dram_bytes / 2**20:9.2f} "
            f"{speedup:7.2f}x"
        )


if __name__ == "__main__":
    main()
