"""Reproduce every table and figure of the paper's evaluation section.

Runs Table 1 and Figures 7-14 at the configured scale and prints each as a
text table, with the paper's published numbers alongside for comparison.

Run:  python examples/reproduce_paper.py [scale]
(default scale 0.0625; the two largest datasets get an extra 5x shrink)
"""

import sys

from repro.experiments import ALL_FIGURES, ExperimentConfig


def main():
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.0625
    config = ExperimentConfig(scale=scale)
    print(f"reproducing all evaluation artifacts at scale={scale}\n")
    for name, figure_fn in ALL_FIGURES.items():
        result = figure_fn(config) if name != "figure14" else figure_fn()
        print(result.to_text())
        print()


if __name__ == "__main__":
    main()
