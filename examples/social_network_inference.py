"""Social-network link prediction: numeric DGNN inference with exact reuse.

The paper's intro motivates DGNNs with social-network analysis: entities
interact over time and the model must track both who-is-connected-to-whom
(GNN) and how relationships evolve (RNN).  This example runs *numeric*
inference — real embeddings, not an analytic model — on a Reddit-like
evolving interaction graph, twice:

1. full recompute of every snapshot (the Re-Alg behaviour), and
2. the exact redundancy-free incremental engine (the DiTile idea),

verifies the embeddings are identical, and reports the measured reuse.
Finally it ranks candidate links by embedding affinity — the downstream
task a deployment would run.

Run:  python examples/social_network_inference.py
"""

import time

import numpy as np

from repro import DGNNModel, IncrementalDGNN, generate_dynamic_graph


def main():
    # An evolving interaction graph: strong temporal similarity, power-law
    # activity (a few hub communities, many quiet users).
    graph = generate_dynamic_graph(
        num_vertices=600,
        num_edges=5_000,
        num_snapshots=10,
        dissimilarity=0.08,
        feature_dim=32,
        seed=42,
        with_features=True,
        name="social-interactions",
    )
    print(f"workload: {graph.stats().summary()}")

    model = DGNNModel.create(
        feature_dim=32, hidden_dims=[48, 24], rnn_hidden_dim=24, seed=1
    )

    start = time.perf_counter()
    full = model.run(graph)
    full_seconds = time.perf_counter() - start

    engine = IncrementalDGNN(model)
    start = time.perf_counter()
    incremental = engine.run(graph)
    incremental_seconds = time.perf_counter() - start

    for t in range(graph.num_snapshots):
        assert np.allclose(full.hidden[t], incremental.hidden[t], atol=1e-10)
    stats = engine.stats
    print(
        f"incremental == full recompute across {graph.num_snapshots} snapshots; "
        f"reuse saved {100 * stats.reuse_fraction():.1f}% of GNN row computations"
    )
    print(
        f"wall-clock: full {1e3 * full_seconds:.1f} ms, "
        f"incremental {1e3 * incremental_seconds:.1f} ms"
    )
    changed = ", ".join(str(c) for c in stats.changed_seeds[1:6])
    print(f"changed vertices per snapshot (first 5 transitions): {changed}")

    # Downstream task: rank the strongest not-yet-connected affinities from
    # the final hidden states (a standard link-prediction readout).
    hidden = incremental.final_hidden()
    norms = np.linalg.norm(hidden, axis=1, keepdims=True)
    normalized = hidden / np.maximum(norms, 1e-12)
    affinity = normalized @ normalized.T
    np.fill_diagonal(affinity, -np.inf)
    last = graph[graph.num_snapshots - 1]
    for src, dst in last.iter_edges():
        affinity[dst, src] = -np.inf
    flat = np.argsort(affinity, axis=None)[::-1][:5]
    print("top predicted links (dst <- src, affinity):")
    for idx in flat:
        dst, src = divmod(int(idx), last.num_vertices)
        print(f"  {dst:4d} <- {src:4d}  {affinity[dst, src]:+.3f}")


if __name__ == "__main__":
    main()
