"""Streaming-inference service demo: serve an event stream online.

Where ``event_stream_pipeline.py`` walks the *offline* on-ramp (CSV ->
discretize -> one batch simulation), this example runs the *online*
service layer (paper §2.1 streams + the ROADMAP's serving north star):

1. synthesize a bursty power-law interaction stream;
2. serve it through the three-stage pipeline — threaded incremental
   ingest, LRU plan cache with drift-triggered re-planning, batched
   worker-pool simulation with bounded-queue backpressure;
3. print the service statistics (throughput, latency percentiles, cache
   behaviour);
4. verify determinism: the offline batch pipeline over the same windowed
   discretization yields bit-identical per-window results.

Run:  python examples/streaming_service.py
"""

from repro import (
    DGNNSpec,
    DiTileAccelerator,
    ServiceConfig,
    StreamingService,
    serve_offline,
    synthetic_event_stream,
)


def main():
    # 1. A synthetic interaction stream: hub-heavy destinations, ~15%
    #    unfollows, bursty arrival times (stress for the drift detector).
    stream = synthetic_event_stream(
        num_vertices=300,
        num_events=8_000,
        seed=23,
        remove_fraction=0.15,
        burst_period=600.0,
        name="bursty-interactions",
    )
    first, last = stream.time_span
    print(
        f"stream: |O|={stream.num_events} events over [{first:.0f}, {last:.0f}], "
        f"V={stream.num_vertices}"
    )

    # 2. Serve it online: ~40 windows, 2 simulation workers, batches of 4.
    config = ServiceConfig(
        window=(last - first) / 40,
        workers=2,
        max_batch_windows=4,
        queue_capacity=8,
        plan_cache_capacity=32,
        drift_threshold=0.25,
    )
    spec = DGNNSpec.classic(64)
    model = DiTileAccelerator()
    report = StreamingService(model, config).serve(stream, spec)

    # 3. Service statistics.
    print()
    print(report.stats.summary())
    print(
        f"simulated load     {report.total_cycles:.3e} accelerator cycles "
        f"over {report.num_windows} windows"
    )

    # 4. Determinism: the offline batch pipeline agrees window for window.
    offline = serve_offline(stream, spec, DiTileAccelerator(), config)
    assert len(offline) == report.num_windows
    assert all(a == b for a, b in zip(report.results, offline))
    print(
        f"\nparity: online == offline for all {report.num_windows} windows "
        "(deterministic serving)"
    )


if __name__ == "__main__":
    main()
