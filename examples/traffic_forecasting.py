"""Traffic forecasting: strategy selection across workload regimes.

Traffic prediction (T-GCN-style, cited in the paper's intro) runs a DGNN
over a road network whose sensor graph barely changes, but other dynamic
workloads are dense and volatile.  This example shows the core §4.2 result:
no static parallelization wins everywhere, and the redundancy-free
*dynamic* strategy picks the right mapping per workload.

For three regimes (sparse/stable road network, dense/stable social graph,
dense/volatile interaction graph) it evaluates the analytic communication
model (Eqs. 7-16) for every grid shape of a 4x4 array and reports which one
Algorithm 1 selects.

Run:  python examples/traffic_forecasting.py
"""

from repro import DGNNSpec, ParallelismOptimizer, WorkloadProfile, generate_dynamic_graph
from repro.core.parallelism import spatial_factors, temporal_factors


REGIMES = [
    # name, vertices, edges, snapshots, dissimilarity
    ("road-network (sparse, stable)", 800, 2_400, 24, 0.02),
    ("social graph (dense, stable)", 800, 24_000, 8, 0.05),
    ("event stream (very sparse, volatile)", 800, 800, 64, 0.5),
]

TILES = 16


def main():
    spec = DGNNSpec.classic(feature_dim=64)
    for name, vertices, edges, snapshots, dis in REGIMES:
        graph = generate_dynamic_graph(
            vertices, edges, snapshots, dissimilarity=dis, feature_dim=64,
            seed=3, name=name,
        )
        profile = WorkloadProfile.from_graph(graph, spec.num_gnn_layers)
        optimizer = ParallelismOptimizer(profile, TILES)
        print(f"\n== {name}: T={snapshots}, E/V={edges / vertices:.0f}, "
              f"Dis={profile.dissimilarity:.2f}")
        print(f"   {'grid (Sxv)':>10s} {'temporal':>10s} {'spatial':>10s} "
              f"{'reuse':>10s} {'total':>10s}")
        for ev in sorted(
            optimizer.candidates(), key=lambda e: e.factors.snapshot_groups
        ):
            f, b = ev.factors, ev.breakdown
            print(
                f"   {f.snapshot_groups:>4d} x {f.vertex_groups:<3d} "
                f"{b.temporal:10.0f} {b.rf_spatial:10.0f} "
                f"{b.reuse:10.0f} {b.total:10.0f}"
            )
        best = optimizer.optimize()
        temporal = optimizer.model.total_comm(temporal_factors(profile, TILES))
        spatial = optimizer.model.total_comm(spatial_factors(profile, TILES))
        f = best.factors
        print(
            f"   -> Algorithm 1 selects {f.snapshot_groups}x{f.vertex_groups} "
            f"(Ps={f.snapshots_per_tile:.1f}, Pv={f.vertices_per_tile:.0f}): "
            f"{best.total_comm:.0f} rows vs pure-temporal {temporal:.0f}, "
            f"pure-spatial {spatial:.0f}"
        )


if __name__ == "__main__":
    main()
