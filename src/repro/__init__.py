"""DiTile-DGNN reproduction library (ISCA 2025).

A full-system reproduction of *DiTile-DGNN: An Efficient Accelerator for
Distributed Dynamic Graph Neural Network Inference* (Yang, Zheng, Louri):
the dynamic-graph substrate, numeric DGNN models with an exact
redundancy-free incremental engine, the paper's tiling/parallelism/balance
algorithms, an analytic cycle-level accelerator simulator with energy and
area models, the four baseline accelerators, and a per-figure experiment
harness.

Quick start::

    from repro import DiTileAccelerator, DGNNSpec, load_dataset

    graph = load_dataset("Wikipedia", scale=0.05, seed=0)
    spec = DGNNSpec.classic(graph.feature_dim)
    result = DiTileAccelerator().simulate(graph, spec)
    print(result.execution_cycles, result.energy_joules)
"""

from .graphs import (
    DynamicGraph,
    GraphSnapshot,
    TABLE1_DATASETS,
    dataset_names,
    dataset_profile,
    generate_dynamic_graph,
    load_dataset,
)
from .models import DGNNModel, GCNModel, GRUCell, IncrementalDGNN, LSTMCell
from .core import (
    DGNNSpec,
    DiTileScheduler,
    ExecutionPlan,
    ParallelismOptimizer,
    SchedulerOptions,
    WorkloadProfile,
    balance_workload,
    subgraph_tiling,
)
from .accel import (
    AcceleratorSimulator,
    AreaModel,
    EnergyModel,
    HardwareConfig,
    SimulationResult,
)
from .baselines import (
    DGNNBoosterAccelerator,
    MEGAAccelerator,
    RACEAccelerator,
    ReaDyAccelerator,
)
from .ditile import DiTileAccelerator
from .experiments import ExperimentConfig, ExperimentRunner
from .serving import (
    ServiceConfig,
    ServingReport,
    StreamingService,
    serve_offline,
    stream_from_dataset,
    synthetic_event_stream,
)

__version__ = "1.1.0"

__all__ = [
    "GraphSnapshot",
    "DynamicGraph",
    "TABLE1_DATASETS",
    "dataset_names",
    "dataset_profile",
    "generate_dynamic_graph",
    "load_dataset",
    "GCNModel",
    "LSTMCell",
    "GRUCell",
    "DGNNModel",
    "IncrementalDGNN",
    "DGNNSpec",
    "DiTileScheduler",
    "SchedulerOptions",
    "ExecutionPlan",
    "ParallelismOptimizer",
    "WorkloadProfile",
    "subgraph_tiling",
    "balance_workload",
    "HardwareConfig",
    "AcceleratorSimulator",
    "SimulationResult",
    "EnergyModel",
    "AreaModel",
    "ReaDyAccelerator",
    "DGNNBoosterAccelerator",
    "RACEAccelerator",
    "MEGAAccelerator",
    "DiTileAccelerator",
    "ExperimentConfig",
    "ExperimentRunner",
    "ServiceConfig",
    "ServingReport",
    "StreamingService",
    "serve_offline",
    "stream_from_dataset",
    "synthetic_event_stream",
    "__version__",
]
