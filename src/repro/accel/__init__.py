"""Accelerator simulator: hardware config, timing, energy, and area models."""

from .config import DRAMConfig, HardwareConfig, NoCConfig, PEConfig, TileConfig
from .energy import EnergyBreakdown, EnergyModel, EnergyParams
from .area import AreaModel, AreaParams, AreaReport
from .dram import DRAMModel, DRAMTraffic
from .noc import NoCModel, NoCTraffic, TrafficClass, mesh_hops, ring_hops
from .pe import KernelEfficiency, PEModel
from .tile import TileModel, TileWork
from .metrics import CostSummary, CycleBreakdown, SimulationResult, SnapshotCosts
from .simulator import AcceleratorSimulator, SimulatorParams
from .pipeline import PipelineResult, PipelineSimulator, TileSegment, TileTimeline
from .routing import LinkLoadReport, TrafficMatrixRouter, spatial_traffic_matrix
from .analysis import RooflineAnalysis, analyze
from .dispatch import DispatchResult, PEDispatcher

__all__ = [
    "PEConfig",
    "TileConfig",
    "NoCConfig",
    "DRAMConfig",
    "HardwareConfig",
    "EnergyParams",
    "EnergyBreakdown",
    "EnergyModel",
    "AreaParams",
    "AreaReport",
    "AreaModel",
    "DRAMTraffic",
    "DRAMModel",
    "NoCTraffic",
    "TrafficClass",
    "NoCModel",
    "ring_hops",
    "mesh_hops",
    "KernelEfficiency",
    "PEModel",
    "TileModel",
    "TileWork",
    "SnapshotCosts",
    "CostSummary",
    "CycleBreakdown",
    "SimulationResult",
    "AcceleratorSimulator",
    "SimulatorParams",
    "PipelineSimulator",
    "PipelineResult",
    "TileSegment",
    "TileTimeline",
    "TrafficMatrixRouter",
    "LinkLoadReport",
    "spatial_traffic_matrix",
    "RooflineAnalysis",
    "analyze",
    "PEDispatcher",
    "DispatchResult",
]
