"""Roofline-style bound analysis of simulation results.

Classifies a run as compute-, memory-, or interconnect-bound from the
simulator's cycle components, and computes operational intensity against
the hardware's roofline — the standard lens for judging whether an
optimization (fewer ops vs less traffic) can still pay off.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import HardwareConfig
from .metrics import SimulationResult

__all__ = ["RooflineAnalysis", "analyze"]


@dataclass(frozen=True)
class RooflineAnalysis:
    """Derived performance characteristics of one simulation."""

    bound: str  # "compute" | "memory" | "interconnect" | "overhead"
    operational_intensity: float  # MACs per DRAM byte
    ridge_intensity: float  # machine balance point (MACs/byte)
    achieved_macs_per_cycle: float
    peak_macs_per_cycle: float
    compute_fraction: float
    memory_fraction: float
    interconnect_fraction: float

    @property
    def achieved_fraction_of_peak(self) -> float:
        """Achieved throughput relative to the array's peak."""
        if self.peak_macs_per_cycle == 0:
            return 0.0
        return self.achieved_macs_per_cycle / self.peak_macs_per_cycle

    @property
    def is_below_ridge(self) -> bool:
        """True when the workload sits on the memory-bound roofline side."""
        return self.operational_intensity < self.ridge_intensity

    def summary(self) -> str:
        """One-line human-readable classification."""
        return (
            f"{self.bound}-bound: OI={self.operational_intensity:.1f} MAC/B "
            f"(ridge {self.ridge_intensity:.1f}), "
            f"{self.achieved_macs_per_cycle:.0f}/{self.peak_macs_per_cycle} "
            f"MACs/cycle ({100 * self.achieved_fraction_of_peak:.1f}% of peak)"
        )


def analyze(result: SimulationResult, hardware: HardwareConfig) -> RooflineAnalysis:
    """Classify a simulation result against its hardware roofline."""
    cycles = result.cycles
    total = max(cycles.total, 1e-12)
    components = {
        "compute": cycles.compute,
        "memory": cycles.off_chip,
        "interconnect": cycles.on_chip,
        "overhead": cycles.overhead,
    }
    bound = max(components, key=components.get)

    intensity = (
        result.total_macs / result.dram_bytes if result.dram_bytes > 0 else float("inf")
    )
    peak = hardware.peak_macs_per_cycle
    dram_bw = hardware.dram.bandwidth_bytes_per_cycle
    ridge = peak / dram_bw if dram_bw > 0 else float("inf")
    return RooflineAnalysis(
        bound=bound,
        operational_intensity=intensity,
        ridge_intensity=ridge,
        achieved_macs_per_cycle=result.total_macs / total,
        peak_macs_per_cycle=peak,
        compute_fraction=cycles.compute / total,
        memory_fraction=cycles.off_chip / total,
        interconnect_fraction=cycles.on_chip / total,
    )
