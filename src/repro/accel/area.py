"""Area model (paper §7.8, Fig. 14).

The paper synthesizes RTL with Synopsys DC at TSMC 45 nm and sizes buffers
with CACTI 6.0, but reports only the area *breakdown percentages* at three
levels (chip, tile, PE).  This model rebuilds the same component inventory
bottom-up — MAC arrays, local buffers, PPUs, dispatchers, reuse FIFOs,
distributed buffers, mesh links, routers/Re-Links, controllers, a global
on-chip buffer — with per-unit constants calibrated so the default
configuration reproduces the published breakdown (DESIGN.md §2 records this
substitution).  Absolute mm² therefore tracks the published *shape*, not a
tape-out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .config import HardwareConfig

__all__ = ["AreaParams", "AreaReport", "AreaModel"]


@dataclass(frozen=True)
class AreaParams:
    """Calibrated per-unit component areas (mm², TSMC 45 nm scale)."""

    # PE-level units (Fig. 14c: MAC 59.4%, local buffer 23.8%, ctrl 2.0%)
    mac_pair_mm2: float = 0.0072  # one FP32 multiplier + accumulation adder
    pe_local_buffer_mm2_per_kb: float = 1.805e-4
    pe_ppu_mm2: float = 0.0155
    pe_dispatcher_mm2: float = 0.0132
    pe_control_mm2: float = 0.0039
    # Tile-level units (Fig. 14b: PE 60.5%, dist buf 28.4%, FIFO 8.1%,
    # mesh 2.3%, ctrl 0.7%)
    distributed_buffer_mm2_per_kb: float = 5.691e-3
    reuse_fifo_mm2_per_kb: float = 8.117e-4
    tile_mesh_mm2: float = 0.118
    tile_control_mm2: float = 0.0359
    # Chip-level units (Fig. 14a: tiles 77.8%, buffer 15.7%, NoC 5.6%,
    # logic 0.9%) — global units scale per tile so the breakdown is
    # grid-size invariant.
    router_mm2_per_tile: float = 0.3694
    global_buffer_mm2_per_tile: float = 1.0356
    global_logic_mm2_per_tile: float = 0.0594


@dataclass
class AreaReport:
    """Absolute areas plus normalized breakdowns at all three levels."""

    pe_components: Dict[str, float]
    tile_components: Dict[str, float]
    chip_components: Dict[str, float]

    @property
    def pe_mm2(self) -> float:
        """Area of one PE."""
        return sum(self.pe_components.values())

    @property
    def tile_mm2(self) -> float:
        """Area of one tile."""
        return sum(self.tile_components.values())

    @property
    def chip_mm2(self) -> float:
        """Total chip area."""
        return sum(self.chip_components.values())

    @staticmethod
    def _percentages(components: Dict[str, float]) -> Dict[str, float]:
        total = sum(components.values())
        if total == 0:
            return {k: 0.0 for k in components}
        return {k: 100.0 * v / total for k, v in components.items()}

    def pe_breakdown(self) -> Dict[str, float]:
        """PE-level percentage breakdown (Fig. 14c)."""
        return self._percentages(self.pe_components)

    def tile_breakdown(self) -> Dict[str, float]:
        """Tile-level percentage breakdown (Fig. 14b)."""
        return self._percentages(self.tile_components)

    def chip_breakdown(self) -> Dict[str, float]:
        """Chip-level percentage breakdown (Fig. 14a)."""
        return self._percentages(self.chip_components)


@dataclass
class AreaModel:
    """Bottom-up area estimation for a :class:`HardwareConfig`."""

    params: AreaParams = field(default_factory=AreaParams)

    def report(self, config: HardwareConfig) -> AreaReport:
        """Full three-level area report."""
        p = self.params
        pe_cfg = config.tile.pe
        pe_components = {
            "mac_array": pe_cfg.macs_per_cycle * p.mac_pair_mm2,
            "local_buffer": (pe_cfg.local_buffer_bytes / 1024)
            * p.pe_local_buffer_mm2_per_kb,
            "ppu": p.pe_ppu_mm2,
            "dispatcher": p.pe_dispatcher_mm2,
            "control": p.pe_control_mm2,
        }
        pe_mm2 = sum(pe_components.values())

        dist_buffer_kb_per_tile = (
            config.distributed_buffer_bytes / config.total_tiles / 1024
        )
        tile_components = {
            "pe_array": config.tile.num_pes * pe_mm2,
            "distributed_buffer": dist_buffer_kb_per_tile
            * p.distributed_buffer_mm2_per_kb,
            "reuse_fifo": (config.tile.reuse_fifo_bytes / 1024)
            * p.reuse_fifo_mm2_per_kb,
            "mesh": p.tile_mesh_mm2,
            "control": p.tile_control_mm2,
        }
        tile_mm2 = sum(tile_components.values())

        n = config.total_tiles
        chip_components = {
            "tiles": n * tile_mm2,
            "on_chip_buffer": n * p.global_buffer_mm2_per_tile,
            "reconfigurable_noc": n * p.router_mm2_per_tile,
            "logic": n * p.global_logic_mm2_per_tile,
        }
        return AreaReport(pe_components, tile_components, chip_components)
