"""Hardware configuration of the DiTile-DGNN accelerator (paper §6, §7.1).

The evaluated configuration (§7.1 *Accelerator Modeling*):

* 16x16 tiles interconnected by the reconfigurable interconnect;
* each tile: a distributed buffer, a router interface, a 4x4 PE array, and
  a 512 KB reuse FIFO;
* each PE: a 256 KB local buffer, a data dispatcher, a 4x4 multiplier array
  feeding a 4x4 adder (accumulation) array, and a post-processing unit;
* 700 MHz on-chip clock, FP32 datapath, 4 MB distributed buffer capacity.

Baselines are normalized to the same multiplier count, storage, frequency,
and bandwidth (§7.1 *Baselines*), which :meth:`HardwareConfig.normalized`
enforces.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Tuple

__all__ = ["PEConfig", "TileConfig", "NoCConfig", "DRAMConfig", "HardwareConfig"]

#: An undirected physical link between two adjacent (or ring-wrapped)
#: routers, stored as an ordered ``(low_tile, high_tile)`` pair.
Link = Tuple[int, int]


def _link(a: int, b: int) -> Link:
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class PEConfig:
    """One processing element (Fig. 5d)."""

    mac_rows: int = 4
    mac_cols: int = 4
    local_buffer_bytes: int = 256 * 1024

    @property
    def macs_per_cycle(self) -> int:
        """Peak multiply-accumulates per cycle (multiplier array size)."""
        return self.mac_rows * self.mac_cols


@dataclass(frozen=True)
class TileConfig:
    """One tile (Fig. 5c): a PE array plus its buffers."""

    pe_rows: int = 4
    pe_cols: int = 4
    pe: PEConfig = PEConfig()
    reuse_fifo_bytes: int = 512 * 1024

    @property
    def num_pes(self) -> int:
        """PEs per tile."""
        return self.pe_rows * self.pe_cols

    @property
    def macs_per_cycle(self) -> int:
        """Peak tile MAC throughput per cycle."""
        return self.num_pes * self.pe.macs_per_cycle


@dataclass(frozen=True)
class NoCConfig:
    """Interconnect parameters (Fig. 5b).

    ``topology`` selects the transfer-time model: the paper's
    ``"ditile"`` dual-layer design (horizontal rings + vertical ring with
    Re-Link bypasses), a conventional ``"mesh"`` (ReaDy-style), or a
    ``"crossbar"`` (RACE-style engine interconnect).
    """

    topology: str = "ditile"
    link_bytes_per_cycle: int = 128  # 1024-bit links
    router_latency_cycles: int = 2
    relink_enabled: bool = True

    def __post_init__(self) -> None:
        if self.topology not in ("ditile", "mesh", "crossbar", "ring"):
            raise ValueError(f"unknown topology {self.topology!r}")
        if self.link_bytes_per_cycle <= 0:
            raise ValueError("link_bytes_per_cycle must be positive")


@dataclass(frozen=True)
class DRAMConfig:
    """Off-chip memory model parameters (DRAMSim2 substitute, DESIGN.md §2)."""

    bandwidth_bytes_per_cycle: float = 64.0  # ~45 GB/s at 700 MHz
    base_latency_cycles: int = 120
    streaming_efficiency: float = 0.85  # row-buffer-friendly accesses
    random_efficiency: float = 0.35  # scattered feature gathers

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_cycle <= 0:
            raise ValueError("bandwidth must be positive")
        if not 0 < self.streaming_efficiency <= 1:
            raise ValueError("streaming_efficiency must be in (0, 1]")
        if not 0 < self.random_efficiency <= 1:
            raise ValueError("random_efficiency must be in (0, 1]")


@dataclass(frozen=True)
class HardwareConfig:
    """Full accelerator configuration."""

    grid_rows: int = 4
    grid_cols: int = 4
    tile: TileConfig = TileConfig()
    noc: NoCConfig = NoCConfig()
    dram: DRAMConfig = DRAMConfig()
    frequency_hz: float = 700e6
    distributed_buffer_bytes: int = 4 * 1024 * 1024  # C_DB, array-wide
    bytes_per_value: int = 4  # FP32

    def __post_init__(self) -> None:
        if self.grid_rows < 1 or self.grid_cols < 1:
            raise ValueError("grid dimensions must be >= 1")
        if self.frequency_hz <= 0:
            raise ValueError("frequency must be positive")

    @property
    def total_tiles(self) -> int:
        """Tiles in the array."""
        return self.grid_rows * self.grid_cols

    @property
    def total_pes(self) -> int:
        """PEs across the whole array."""
        return self.total_tiles * self.tile.num_pes

    @property
    def total_multipliers(self) -> int:
        """Multipliers across the whole array (the normalization unit)."""
        return self.total_pes * self.tile.pe.macs_per_cycle

    @property
    def peak_macs_per_cycle(self) -> int:
        """Peak array MAC throughput."""
        return self.total_multipliers

    @property
    def total_onchip_bytes(self) -> int:
        """All on-chip storage: distributed buffers + FIFOs + local buffers."""
        per_tile = (
            self.tile.reuse_fifo_bytes
            + self.tile.num_pes * self.tile.pe.local_buffer_bytes
        )
        return self.distributed_buffer_bytes + self.total_tiles * per_tile

    # ------------------------------------------------------------------
    # Physical link inventory (shared by routing, NoC and fault models)
    # ------------------------------------------------------------------
    def tile_at(self, row: int, col: int) -> int:
        """Row-major tile index of grid position ``(row, col)``."""
        return row * self.grid_cols + col

    def row_ring_links(self, row: int) -> List[Link]:
        """Undirected links of one horizontal ring (wrap link included)."""
        cols = self.grid_cols
        if cols < 2:
            return []
        links = [
            _link(self.tile_at(row, c), self.tile_at(row, c + 1))
            for c in range(cols - 1)
        ]
        if cols > 2:
            links.append(_link(self.tile_at(row, 0), self.tile_at(row, cols - 1)))
        return links

    def column_ring_links(self, col: int) -> List[Link]:
        """Undirected links of one vertical ring (wrap link included)."""
        rows = self.grid_rows
        if rows < 2:
            return []
        links = [
            _link(self.tile_at(r, col), self.tile_at(r + 1, col))
            for r in range(rows - 1)
        ]
        if rows > 2:
            links.append(_link(self.tile_at(0, col), self.tile_at(rows - 1, col)))
        return links

    def mesh_links(self) -> List[Link]:
        """Undirected links of the conventional mesh (no wrap links)."""
        links: List[Link] = []
        for r in range(self.grid_rows):
            for c in range(self.grid_cols):
                if c + 1 < self.grid_cols:
                    links.append(_link(self.tile_at(r, c), self.tile_at(r, c + 1)))
                if r + 1 < self.grid_rows:
                    links.append(_link(self.tile_at(r, c), self.tile_at(r + 1, c)))
        return links

    def all_links(self) -> List[Link]:
        """Every physical link of any modeled topology, sorted and unique.

        The union of the mesh adjacency and the ring wrap links — the
        element universe a :class:`~repro.resilience.faults.FaultModel`
        samples link failures from, so the same seeded fault set applies
        to every topology under comparison.
        """
        links = set(self.mesh_links())
        for row in range(self.grid_rows):
            links.update(self.row_ring_links(row))
        for col in range(self.grid_cols):
            links.update(self.column_ring_links(col))
        return sorted(links)

    # ------------------------------------------------------------------
    # Named configurations
    # ------------------------------------------------------------------
    @classmethod
    def paper(cls) -> "HardwareConfig":
        """The full §7.1 configuration: 16x16 tiles.

        §7.1 states a 4 MB distributed buffer alongside 4x4 tiles in
        Fig. 5; we read that as 256 KB per tile and scale the array-wide
        capacity with the tile count.
        """
        return cls(
            grid_rows=16,
            grid_cols=16,
            distributed_buffer_bytes=16 * 16 * 256 * 1024,
        )

    @classmethod
    def small(cls) -> "HardwareConfig":
        """A 4x4 array (the Fig. 5/6 illustration scale) for fast tests."""
        return cls(grid_rows=4, grid_cols=4)

    def normalized(self, topology: str) -> "HardwareConfig":
        """A configuration with identical multipliers, storage, frequency,
        and bandwidth, differing only in interconnect (§7.1).  Re-Link
        bypasses exist only on the DiTile topology."""
        return replace(
            self,
            noc=replace(
                self.noc,
                topology=topology,
                relink_enabled=(topology == "ditile"),
            ),
        )
