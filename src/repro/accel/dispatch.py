"""Intra-tile PE dispatch model (paper Fig. 5c/d).

Inside a tile, the data dispatcher hands per-vertex work items to the 4x4
PE array.  Vertex workloads are skewed (Eq. 17), so the dispatch policy
decides how much of the tile's peak the array actually sustains:

* ``round_robin`` — vertices dealt to PEs in arrival order (the naive
  baseline dispatcher);
* ``greedy`` — each vertex goes to the least-loaded PE (LPT-style, what a
  work-stealing dispatcher converges to).

Workloads are divisible below ``grain_macs`` (a hub vertex's aggregation
splits across the MAC array), which bounds the worst-case imbalance.  The
model reports per-PE loads and the resulting stretch over a perfectly
balanced tile — the intra-tile component of the paper's utilization story
(its inter-tile component is Algorithm 2).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .config import TileConfig

__all__ = ["DispatchResult", "PEDispatcher"]


@dataclass(frozen=True)
class DispatchResult:
    """Outcome of dispatching one tile's work items."""

    pe_loads: np.ndarray  # MACs per PE
    policy: str

    @property
    def makespan_macs(self) -> float:
        """MACs on the most-loaded PE (the tile finishes with it)."""
        return float(self.pe_loads.max()) if len(self.pe_loads) else 0.0

    @property
    def utilization(self) -> float:
        """Mean-to-max PE load ratio (1.0 = perfectly balanced)."""
        peak = self.pe_loads.max() if len(self.pe_loads) else 0.0
        if peak == 0:
            return 1.0
        return float(self.pe_loads.mean() / peak)

    @property
    def stretch(self) -> float:
        """Makespan relative to a perfectly balanced split (>= 1.0)."""
        mean = self.pe_loads.mean() if len(self.pe_loads) else 0.0
        if mean == 0:
            return 1.0
        return float(self.pe_loads.max() / mean)


class PEDispatcher:
    """Distributes per-vertex MAC workloads over a tile's PE array."""

    def __init__(self, tile: TileConfig, grain_macs: float = 4096.0):
        if grain_macs <= 0:
            raise ValueError("grain_macs must be positive")
        self.tile = tile
        self.grain_macs = grain_macs

    def _split_items(self, workloads: Sequence[float]) -> np.ndarray:
        """Split oversized items into <= grain_macs chunks."""
        items = []
        for workload in workloads:
            if workload <= 0:
                continue
            pieces = max(int(np.ceil(workload / self.grain_macs)), 1)
            items.extend([workload / pieces] * pieces)
        return np.array(items, dtype=np.float64)

    def round_robin(self, workloads: Sequence[float]) -> DispatchResult:
        """Deal items to PEs in arrival order."""
        items = self._split_items(workloads)
        loads = np.zeros(self.tile.num_pes)
        for index, item in enumerate(items):
            loads[index % self.tile.num_pes] += item
        return DispatchResult(loads, "round_robin")

    def greedy(self, workloads: Sequence[float]) -> DispatchResult:
        """Longest-processing-time-style: each item to the least-loaded PE.

        Items are sorted descending first, which gives LPT's 4/3-OPT
        guarantee.
        """
        items = np.sort(self._split_items(workloads))[::-1]
        heap = [(0.0, pe) for pe in range(self.tile.num_pes)]
        heapq.heapify(heap)
        loads = np.zeros(self.tile.num_pes)
        for item in items:
            load, pe = heapq.heappop(heap)
            loads[pe] = load + item
            heapq.heappush(heap, (loads[pe], pe))
        return DispatchResult(loads, "greedy")

    def dispatch(
        self, workloads: Sequence[float], policy: str = "greedy"
    ) -> DispatchResult:
        """Dispatch under the named policy."""
        if policy == "greedy":
            return self.greedy(workloads)
        if policy == "round_robin":
            return self.round_robin(workloads)
        raise ValueError(f"unknown policy {policy!r}")
