"""Off-chip DRAM timing model (DRAMSim2 substitute — DESIGN.md §2).

The paper obtains off-chip communication time from DRAMSim2 and overlaps it
with on-chip execution.  The simulator only consumes aggregate transfer
latencies, so this analytic model — fixed access latency plus a bandwidth
term degraded by an access-pattern efficiency — exercises the same code
path.  Streaming transfers (feature rows, edge lists) run near peak
row-buffer efficiency; scattered gathers (irregular neighbour fetches) run
at a reduced efficiency, which is how untiled baselines pay for their
random access patterns.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import DRAMConfig

__all__ = ["DRAMTraffic", "DRAMModel"]


@dataclass
class DRAMTraffic:
    """Byte counters for one simulation, split by access pattern."""

    streaming_read: float = 0.0
    streaming_write: float = 0.0
    random_read: float = 0.0
    random_write: float = 0.0

    @property
    def total_bytes(self) -> float:
        """All off-chip bytes moved."""
        return (
            self.streaming_read
            + self.streaming_write
            + self.random_read
            + self.random_write
        )

    def add(self, other: "DRAMTraffic") -> None:
        """Accumulate another traffic record in place."""
        self.streaming_read += other.streaming_read
        self.streaming_write += other.streaming_write
        self.random_read += other.random_read
        self.random_write += other.random_write


class DRAMModel:
    """Latency/bandwidth timing for :class:`DRAMTraffic` records."""

    def __init__(self, config: DRAMConfig):
        self.config = config

    def transfer_cycles(self, traffic: DRAMTraffic) -> float:
        """Cycles to move ``traffic``, assuming one bulk transaction stream.

        The fixed ``base_latency_cycles`` is paid once per burst (the
        simulator invokes this per pipeline phase); the bandwidth term uses
        the pattern-specific efficiency.
        """
        cfg = self.config
        if traffic.total_bytes == 0:
            return 0.0
        streaming = traffic.streaming_read + traffic.streaming_write
        random = traffic.random_read + traffic.random_write
        bandwidth_cycles = (
            streaming / (cfg.bandwidth_bytes_per_cycle * cfg.streaming_efficiency)
            + random / (cfg.bandwidth_bytes_per_cycle * cfg.random_efficiency)
        )
        return cfg.base_latency_cycles + bandwidth_cycles

    def effective_bandwidth(self, traffic: DRAMTraffic) -> float:
        """Achieved bytes per cycle for ``traffic`` (diagnostics)."""
        cycles = self.transfer_cycles(traffic)
        if cycles == 0:
            return 0.0
        return traffic.total_bytes / cycles
