"""Energy model (paper §7.1: Horowitz 45 nm energy table + CACTI buffers).

The paper estimates energy from counted on/off-chip communications and
computations "according to the analytical model proposed in [19]"
(Horowitz, ISSCC 2014).  We embed the published 45 nm numbers directly:

* FP32 multiply: 3.7 pJ; FP32 add: 0.9 pJ (one MAC = 4.6 pJ);
* SRAM access: ~10 pJ per 32-bit word for an 8 KB array, scaling roughly
  with the square root of capacity (the CACTI trend);
* DRAM access: ~640 pJ per 32-bit word;
* NoC traversal: link + router energy per byte per hop.

Energies are reported in joules, split into the four §7.6 categories:
computation, on-chip communication, off-chip communication, and
control/configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import math

__all__ = ["JOULES_PER_PJ", "EnergyParams", "EnergyBreakdown", "EnergyModel"]

JOULES_PER_PJ = 1e-12  # the pJ -> J conversion factor
_PJ = JOULES_PER_PJ  # short internal alias


@dataclass(frozen=True)
class EnergyParams:
    """Per-event energy constants (picojoules)."""

    fp32_mult_pj: float = 3.7
    fp32_add_pj: float = 0.9
    sram_8kb_word_pj: float = 10.0  # per 32-bit word, 8 KB array
    dram_word_pj: float = 1600.0  # per 32-bit word, incl. I/O + controller
    noc_hop_pj_per_byte: float = 8.0  # link + router, per byte per hop (1 pJ/bit)
    config_pj_per_event: float = 2_000.0  # one tile's NoC reconfiguration
    # Instruction dispatch / sequencing overhead as a fraction of dynamic
    # (compute + communication) energy — the per-op control slice of
    # Fig. 12.
    control_overhead_fraction: float = 0.015

    @property
    def pj_per_mac(self) -> float:
        """Energy of one multiply-accumulate."""
        return self.fp32_mult_pj + self.fp32_add_pj  # repro: noqa[UNIT003] the two summands are already per-MAC energies (one mult + one add per MAC)

    def sram_word_pj(self, capacity_bytes: float) -> float:
        """Per-word SRAM access energy, sqrt-capacity scaling from 8 KB."""
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        return self.sram_8kb_word_pj * math.sqrt(capacity_bytes / (8 * 1024))


@dataclass
class EnergyBreakdown:
    """Joules per §7.6 category."""

    computation: float = 0.0
    on_chip: float = 0.0
    off_chip: float = 0.0
    control: float = 0.0

    @property
    def total(self) -> float:
        """Total energy in joules."""
        return self.computation + self.on_chip + self.off_chip + self.control

    def control_fraction(self) -> float:
        """Control/configuration share of total (paper: <7% for DiTile)."""
        total = self.total
        return self.control / total if total > 0 else 0.0

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            self.computation + other.computation,
            self.on_chip + other.on_chip,
            self.off_chip + other.off_chip,
            self.control + other.control,
        )

    def as_dict(self) -> dict:
        """Category -> joules mapping (for reports)."""
        return {
            "computation": self.computation,
            "on_chip": self.on_chip,
            "off_chip": self.off_chip,
            "control": self.control,
        }


@dataclass
class EnergyModel:
    """Accumulates event counts into an :class:`EnergyBreakdown`."""

    params: EnergyParams = field(default_factory=EnergyParams)

    def compute_energy(self, macs: float, sram_bytes: float,
                       sram_capacity_bytes: float) -> float:
        """Joules for ``macs`` MACs plus their operand SRAM traffic."""
        mac_j = macs * self.params.pj_per_mac * _PJ
        words = sram_bytes / 4.0
        sram_j = words * self.params.sram_word_pj(sram_capacity_bytes) * _PJ
        return mac_j + sram_j

    def noc_energy(self, byte_hops: float) -> float:
        """Joules for on-chip traffic measured in byte-hops."""
        return byte_hops * self.params.noc_hop_pj_per_byte * _PJ

    def dram_energy(self, bytes_moved: float) -> float:
        """Joules for off-chip traffic."""
        return (bytes_moved / 4.0) * self.params.dram_word_pj * _PJ

    def control_energy(self, config_events: float, dynamic_joules: float = 0.0) -> float:
        """Joules for control: reconfiguration events plus the instruction
        dispatch overhead proportional to dynamic energy."""
        reconfig_j = config_events * self.params.config_pj_per_event * _PJ
        dispatch_j = dynamic_joules * self.params.control_overhead_fraction
        return reconfig_j + dispatch_j

    def breakdown(
        self,
        macs: float,
        sram_bytes: float,
        sram_capacity_bytes: float,
        noc_byte_hops: float,
        dram_bytes: float,
        config_events: float,
    ) -> EnergyBreakdown:
        """Full breakdown from aggregate event counts."""
        computation = self.compute_energy(macs, sram_bytes, sram_capacity_bytes)
        on_chip = self.noc_energy(noc_byte_hops)
        off_chip = self.dram_energy(dram_bytes)
        dynamic = computation + on_chip + off_chip
        return EnergyBreakdown(
            computation=computation,
            on_chip=on_chip,
            off_chip=off_chip,
            control=self.control_energy(config_events, dynamic),
        )
