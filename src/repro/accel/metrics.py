"""Cost and result records exchanged between algorithm models and the simulator.

The paper's simulator "monitors the number of arithmetic operations and the
number of accesses across the memory hierarchy" (§7.1); those monitored
counts are what :class:`SnapshotCosts` carries, one record per snapshot.
The algorithm models in :mod:`repro.baselines.algorithms` fill them in; the
simulator converts them to cycles and energy and returns a
:class:`SimulationResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .dram import DRAMTraffic
from .energy import EnergyBreakdown
from .noc import NoCTraffic

__all__ = [
    "SnapshotCosts",
    "CostSummary",
    "CycleBreakdown",
    "DegradedModeReport",
    "SimulationResult",
]


@dataclass
class SnapshotCosts:
    """Monitored event counts for one snapshot's execution."""

    timestamp: int
    gnn_aggregation_macs: float = 0.0
    gnn_combination_macs: float = 0.0
    rnn_macs: float = 0.0
    dram: DRAMTraffic = field(default_factory=DRAMTraffic)
    noc: NoCTraffic = field(default_factory=NoCTraffic)
    config_events: float = 0.0
    sync_events: float = 0.0

    @property
    def gnn_macs(self) -> float:
        """GNN MACs (aggregation + combination)."""
        return self.gnn_aggregation_macs + self.gnn_combination_macs

    @property
    def total_macs(self) -> float:
        """All arithmetic MACs this snapshot."""
        return self.gnn_macs + self.rnn_macs


@dataclass
class CostSummary:
    """Event counts for one full DGNN execution under one algorithm."""

    algorithm: str
    snapshots: List[SnapshotCosts]
    load_utilization: float = 1.0  # mean/max per-tile load (Algorithm 2 output)

    @property
    def total_macs(self) -> float:
        """Arithmetic operations across all snapshots (Fig. 7 metric)."""
        return sum(s.total_macs for s in self.snapshots)

    @property
    def gnn_macs(self) -> float:
        """GNN-kernel MACs across all snapshots."""
        return sum(s.gnn_macs for s in self.snapshots)

    @property
    def rnn_macs(self) -> float:
        """RNN-kernel MACs across all snapshots."""
        return sum(s.rnn_macs for s in self.snapshots)

    @property
    def dram_bytes(self) -> float:
        """Off-chip bytes across all snapshots (Fig. 8 metric)."""
        return sum(s.dram.total_bytes for s in self.snapshots)

    @property
    def noc_bytes(self) -> float:
        """On-chip bytes across all snapshots (Fig. 10b metric)."""
        return sum(s.noc.total_bytes for s in self.snapshots)


@dataclass
class CycleBreakdown:
    """Where execution cycles went, before overlap and after."""

    compute: float = 0.0
    on_chip: float = 0.0
    off_chip: float = 0.0
    overhead: float = 0.0
    total: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        """Component -> cycles mapping (for reports)."""
        return {
            "compute": self.compute,
            "on_chip": self.on_chip,
            "off_chip": self.off_chip,
            "overhead": self.overhead,
            "total": self.total,
        }


@dataclass
class DegradedModeReport:
    """How a fault model degraded one simulation (``None`` when fault-free).

    ``reroute_penalty_cycles`` attributes the on-chip slowdown to the
    paper's three traffic classes by diffing the degraded NoC model's
    per-class transfer cycles against a fault-free model's on the same
    traffic; ``compute_stretch`` is the factor by which per-tile work grew
    when failed tiles' shares were remapped onto the survivors.
    """

    failed_tiles: int = 0
    failed_links: int = 0
    failed_relinks: int = 0
    live_tiles: int = 0
    #: total tiles / live tiles — how much per-survivor compute grew
    compute_stretch: float = 1.0
    #: extra on-chip cycles vs the fault-free NoC, per traffic class
    reroute_penalty_cycles: Dict[str, float] = field(default_factory=dict)
    #: cycles the same workload takes on the fault-free array
    baseline_cycles: float = 0.0
    #: cycles under the fault model (== the result's ``execution_cycles``)
    degraded_cycles: float = 0.0

    @property
    def total_reroute_penalty(self) -> float:
        """Extra on-chip cycles across all traffic classes."""
        return sum(self.reroute_penalty_cycles.values())

    @property
    def slowdown(self) -> float:
        """``degraded / baseline`` cycles (1.0 when nothing degraded)."""
        if self.baseline_cycles == 0:
            return 1.0
        return self.degraded_cycles / self.baseline_cycles

    def as_dict(self) -> Dict[str, object]:
        """Flat JSON-ready mapping for reports."""
        return {
            "failed_tiles": self.failed_tiles,
            "failed_links": self.failed_links,
            "failed_relinks": self.failed_relinks,
            "live_tiles": self.live_tiles,
            "compute_stretch": self.compute_stretch,
            "reroute_penalty_cycles": dict(self.reroute_penalty_cycles),
            "baseline_cycles": self.baseline_cycles,
            "degraded_cycles": self.degraded_cycles,
            "slowdown": self.slowdown,
        }


@dataclass
class SimulationResult:
    """Outcome of simulating one algorithm/accelerator on one workload."""

    accelerator: str
    algorithm: str
    cycles: CycleBreakdown
    energy: EnergyBreakdown
    total_macs: float
    dram_bytes: float
    noc_bytes: float
    noc_byte_hops: float
    pe_utilization: float
    frequency_hz: float
    per_snapshot_cycles: Optional[List[float]] = None
    #: present only when the simulation ran under a fault model
    degraded: Optional[DegradedModeReport] = None

    @property
    def execution_cycles(self) -> float:
        """Total execution cycles (the Fig. 9 metric)."""
        return self.cycles.total

    @property
    def execution_seconds(self) -> float:
        """Wall-clock execution time at the configured frequency."""
        return self.cycles.total / self.frequency_hz

    @property
    def energy_joules(self) -> float:
        """Total energy (the Fig. 12 metric)."""
        return self.energy.total

    def speedup_over(self, other: "SimulationResult") -> float:
        """``other.cycles / self.cycles`` — how much faster self is."""
        if self.execution_cycles == 0:
            return float("inf")
        return other.execution_cycles / self.execution_cycles

    def energy_ratio_over(self, other: "SimulationResult") -> float:
        """``other.energy / self.energy`` — energy advantage of self."""
        if self.energy_joules == 0:
            return float("inf")
        return other.energy_joules / self.energy_joules
