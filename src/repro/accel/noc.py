"""Network-on-chip models (paper §6.1, Fig. 5b / Fig. 6).

DiTile's interconnect is dual-layer: **horizontal rings** carry the regular
traffic classes (temporal RNN dependencies and reuse transfers between
snapshot groups, which flow between horizontally-adjacent tiles under the
Fig. 6 mapping), while **vertical rings augmented with Re-Link bypasses**
carry the irregular spatial aggregation traffic, shortening multi-hop
routes to near-constant distance.

Baselines use a conventional mesh (ReaDy, MEGA's tile fabric) or a crossbar
(RACE's engine interconnect).  The transfer-time model is a bandwidth
bottleneck analysis: serialization over the parallel links available to a
traffic class plus the average routing latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .config import HardwareConfig, NoCConfig

__all__ = ["TrafficClass", "NoCTraffic", "NoCModel", "ring_hops", "mesh_hops"]


def ring_hops(size: int, src: int, dst: int) -> int:
    """Shortest-path hop count on a bidirectional ring of ``size`` nodes."""
    if size <= 0:
        raise ValueError("ring size must be positive")
    distance = abs(src - dst) % size
    return min(distance, size - distance)


def mesh_hops(rows: int, cols: int, src: int, dst: int) -> int:
    """Manhattan hop count on a ``rows x cols`` mesh (XY routing)."""
    src_r, src_c = divmod(src, cols)
    dst_r, dst_c = divmod(dst, cols)
    return abs(src_r - dst_r) + abs(src_c - dst_c)


@dataclass(frozen=True)
class TrafficClass:
    """One of the three §4.2 traffic classes, as bytes plus locality."""

    name: str
    bytes: float
    regular: bool  # regular (temporal/reuse) vs irregular (spatial)


@dataclass
class NoCTraffic:
    """Per-class on-chip traffic of one simulation phase."""

    temporal_bytes: float = 0.0
    spatial_bytes: float = 0.0
    reuse_bytes: float = 0.0

    @property
    def total_bytes(self) -> float:
        """All on-chip bytes."""
        return self.temporal_bytes + self.spatial_bytes + self.reuse_bytes

    def classes(self) -> list:
        """The three traffic classes with their regularity flags."""
        return [
            TrafficClass("temporal", self.temporal_bytes, regular=True),
            TrafficClass("reuse", self.reuse_bytes, regular=True),
            TrafficClass("spatial", self.spatial_bytes, regular=False),
        ]

    def add(self, other: "NoCTraffic") -> None:
        """Accumulate another record in place."""
        self.temporal_bytes += other.temporal_bytes
        self.spatial_bytes += other.spatial_bytes
        self.reuse_bytes += other.reuse_bytes


class NoCModel:
    """Transfer-time and byte-hop estimation for one topology.

    The per-class average hop counts and parallel-path counts below encode
    each topology's structural properties:

    * ``ditile`` — regular traffic rides one-hop neighbour transfers on the
      per-row rings (``grid_rows`` independent paths); irregular traffic
      uses the vertical rings whose Re-Link bypasses cut the average route
      to ~2 hops (``grid_cols`` parallel columns).  Without Re-Link
      (``relink_enabled=False``) vertical routes average a quarter of the
      ring circumference.
    * ``mesh`` — all classes share the mesh; average route is a third of
      the array span, and the bisection (``2 * min(rows, cols)`` links)
      bounds throughput.
    * ``crossbar`` — single hop for everything, but one shared exchange
      whose aggregate throughput equals the port bandwidth; arbitration
      adds latency with port count.
    """

    def __init__(self, config: HardwareConfig):
        self.hw = config
        self.noc: NoCConfig = config.noc

    # ------------------------------------------------------------------
    # Structural parameters per traffic class
    # ------------------------------------------------------------------
    def avg_hops(self, regular: bool) -> float:
        """Average route length for a traffic class on this topology."""
        rows, cols = self.hw.grid_rows, self.hw.grid_cols
        topology = self.noc.topology
        if topology == "ditile":
            if regular:
                return 1.0  # neighbour transfers on the horizontal rings
            if self.noc.relink_enabled:
                return 2.0  # Re-Link bypass: near-constant vertical route
            return max(rows / 4.0, 1.0)  # plain vertical ring average
        if topology == "ring":
            n = rows * cols
            return max(n / 4.0, 1.0)
        if topology == "mesh":
            return max((rows + cols) / 3.0, 1.0)
        if topology == "crossbar":
            return 1.0
        raise ValueError(f"unknown topology {self.noc.topology!r}")

    def parallel_paths(self, regular: bool) -> float:
        """Independent links a traffic class can spread across."""
        rows, cols = self.hw.grid_rows, self.hw.grid_cols
        topology = self.noc.topology
        if topology == "ditile":
            # Bidirectional rings: one ring per row (regular) / column
            # (irregular), two directions each.
            return float(2 * rows) if regular else float(2 * cols)
        if topology == "ring":
            return 2.0  # both ring directions
        if topology == "mesh":
            return float(2 * min(rows, cols))  # bisection links, both directions
        if topology == "crossbar":
            # An n x n crossbar sustains one transfer per output port.
            return float(self.hw.total_tiles)
        raise ValueError(f"unknown topology {self.noc.topology!r}")

    def router_latency(self) -> float:
        """Per-hop routing latency; crossbar arbitration grows with radix."""
        base = float(self.noc.router_latency_cycles)
        if self.noc.topology == "crossbar":
            import math

            return base + math.log2(max(self.hw.total_tiles, 2))
        return base

    # ------------------------------------------------------------------
    # Aggregate estimates
    # ------------------------------------------------------------------
    def transfer_cycles(self, traffic: NoCTraffic) -> float:
        """Cycles to drain ``traffic``.

        Regular and irregular classes occupy disjoint link sets on the
        DiTile topology (they proceed concurrently); on shared topologies
        all classes serialize over the same links.
        """
        link_bw = self.noc.link_bytes_per_cycle
        per_class = {}
        for cls in traffic.classes():
            if cls.bytes == 0:
                per_class[cls.name] = 0.0
                continue
            serialization = cls.bytes * self.avg_hops(cls.regular) / (
                link_bw * self.parallel_paths(cls.regular)
            )
            per_class[cls.name] = serialization + self.router_latency() * self.avg_hops(
                cls.regular
            )
        if self.noc.topology == "ditile":
            regular = per_class["temporal"] + per_class["reuse"]
            irregular = per_class["spatial"]
            return max(regular, irregular)
        return sum(per_class.values())

    def byte_hops(self, traffic: NoCTraffic) -> float:
        """Total byte-hops (the NoC energy integrand)."""
        total = 0.0
        for cls in traffic.classes():
            total += cls.bytes * self.avg_hops(cls.regular)
        return total

    def describe(self) -> Dict[str, float]:
        """Structural summary for reports."""
        return {
            "regular_hops": self.avg_hops(True),
            "irregular_hops": self.avg_hops(False),
            "regular_paths": self.parallel_paths(True),
            "irregular_paths": self.parallel_paths(False),
            "router_latency": self.router_latency(),
        }
