"""Network-on-chip models (paper §6.1, Fig. 5b / Fig. 6).

DiTile's interconnect is dual-layer: **horizontal rings** carry the regular
traffic classes (temporal RNN dependencies and reuse transfers between
snapshot groups, which flow between horizontally-adjacent tiles under the
Fig. 6 mapping), while **vertical rings augmented with Re-Link bypasses**
carry the irregular spatial aggregation traffic, shortening multi-hop
routes to near-constant distance.

Baselines use a conventional mesh (ReaDy, MEGA's tile fabric) or a crossbar
(RACE's engine interconnect).  The transfer-time model is a bandwidth
bottleneck analysis: serialization over the parallel links available to a
traffic class plus the average routing latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, TYPE_CHECKING

from .config import HardwareConfig, NoCConfig

if TYPE_CHECKING:  # pragma: no cover - type-only; avoids an import cycle
    from ..resilience.faults import FaultModel

__all__ = ["TrafficClass", "NoCTraffic", "NoCModel", "ring_hops", "mesh_hops"]


def ring_hops(size: int, src: int, dst: int) -> int:
    """Shortest-path hop count on a bidirectional ring of ``size`` nodes."""
    if size <= 0:
        raise ValueError("ring size must be positive")
    distance = abs(src - dst) % size
    return min(distance, size - distance)


def mesh_hops(rows: int, cols: int, src: int, dst: int) -> int:
    """Manhattan hop count on a ``rows x cols`` mesh (XY routing)."""
    src_r, src_c = divmod(src, cols)
    dst_r, dst_c = divmod(dst, cols)
    return abs(src_r - dst_r) + abs(src_c - dst_c)


@dataclass(frozen=True)
class TrafficClass:
    """One of the three §4.2 traffic classes, as bytes plus locality."""

    name: str
    bytes: float
    regular: bool  # regular (temporal/reuse) vs irregular (spatial)


@dataclass
class NoCTraffic:
    """Per-class on-chip traffic of one simulation phase."""

    temporal_bytes: float = 0.0
    spatial_bytes: float = 0.0
    reuse_bytes: float = 0.0

    @property
    def total_bytes(self) -> float:
        """All on-chip bytes."""
        return self.temporal_bytes + self.spatial_bytes + self.reuse_bytes

    def classes(self) -> list:
        """The three traffic classes with their regularity flags."""
        return [
            TrafficClass("temporal", self.temporal_bytes, regular=True),
            TrafficClass("reuse", self.reuse_bytes, regular=True),
            TrafficClass("spatial", self.spatial_bytes, regular=False),
        ]

    def add(self, other: "NoCTraffic") -> None:
        """Accumulate another record in place."""
        self.temporal_bytes += other.temporal_bytes
        self.spatial_bytes += other.spatial_bytes
        self.reuse_bytes += other.reuse_bytes


class NoCModel:
    """Transfer-time and byte-hop estimation for one topology.

    The per-class average hop counts and parallel-path counts below encode
    each topology's structural properties:

    * ``ditile`` — regular traffic rides one-hop neighbour transfers on the
      per-row rings (``grid_rows`` independent paths); irregular traffic
      uses the vertical rings whose Re-Link bypasses cut the average route
      to ~2 hops (``grid_cols`` parallel columns).  Without Re-Link
      (``relink_enabled=False``) vertical routes average a quarter of the
      ring circumference.
    * ``mesh`` — all classes share the mesh; average route is a third of
      the array span, and the bisection (``2 * min(rows, cols)`` links)
      bounds throughput.
    * ``crossbar`` — single hop for everything, but one shared exchange
      whose aggregate throughput equals the port bandwidth; arbitration
      adds latency with port count.

    With a :class:`~repro.resilience.faults.FaultModel` the structural
    parameters degrade: cut rings lose a direction (fewer parallel paths)
    and detour the long way (longer average hops), a downed Re-Link
    bypass falls back to the plain vertical ring, mesh hop/path estimates
    scale with the failed-link fraction, and a crossbar loses the ports
    of dead tiles.  Every degradation is monotone — adding a fault never
    shortens hops or adds paths — which underwrites the fault-sweep
    monotonicity guarantee.  ``faults=None`` (or a clean model) leaves
    the fault-free arithmetic untouched, bit for bit.
    """

    def __init__(
        self,
        config: HardwareConfig,
        faults: Optional["FaultModel"] = None,
    ):
        self.hw = config
        self.noc: NoCConfig = config.noc
        # Drop a clean model so the fault-free path never consults it.
        self.faults = (
            faults if faults is not None and not faults.is_clean else None
        )
        self._degraded: Optional[Dict[str, float]] = (
            self._degradation() if self.faults is not None else None
        )

    # ------------------------------------------------------------------
    # Fault degradation
    # ------------------------------------------------------------------
    def _degradation(self) -> Dict[str, float]:
        """Structural parameters of the degraded array (faults present).

        Only reached when a non-clean fault model was supplied; every
        value is clamped so it is never *better* than its fault-free
        counterpart (monotone degradation).
        """
        assert self.faults is not None
        faults = self.faults
        rows, cols = self.hw.grid_rows, self.hw.grid_cols
        topology = self.noc.topology
        if topology == "ditile":
            # Horizontal rings: each cut segment makes its neighbour pair
            # detour the long way around (``cols - 1`` hops instead of 1)
            # and removes that segment's share of the row's capacity; the
            # remaining neighbour transfers are untouched — this per-link
            # (not per-ring) accounting is what keeps degradation
            # proportional to the damage.
            row_hops_sum = 0.0
            regular_paths = 0.0
            for r in range(rows):
                links = self.hw.row_ring_links(r)
                cuts = min(
                    sum(1 for a, b in links if faults.link_failed(a, b)),
                    cols,
                )
                if cols > 1:
                    row_hops_sum += (
                        (cols - cuts) * 1.0 + cuts * (cols - 1.0)
                    ) / cols
                else:
                    row_hops_sum += 1.0
                surviving = (len(links) - cuts) / len(links) if links else 1.0
                regular_paths += 2.0 * surviving
            regular_hops = row_hops_sum / rows
            regular_paths = max(regular_paths, 1.0)
            # Vertical rings + Re-Link: a live bypass keeps its column's
            # irregular route near-constant regardless of ring damage;
            # with the bypass down (or disabled) traffic rides the plain
            # ring, whose cuts force chain detours.
            plain = max(rows / 4.0, 1.0)
            irregular_hops_sum = 0.0
            irregular_paths = 0.0
            for c in range(cols):
                links = self.hw.column_ring_links(c)
                cuts = sum(1 for a, b in links if faults.link_failed(a, b))
                bypass_up = self.noc.relink_enabled and not faults.relink_failed(c)
                if bypass_up:
                    irregular_hops_sum += 2.0
                    irregular_paths += 2.0
                    continue
                if self.noc.relink_enabled:
                    # Bypass down: fall back to the plain ring, but never
                    # model the fallback as *better* than the bypass it
                    # replaces (small arrays have rows/4 < 2, which would
                    # otherwise invert the sweep).
                    hops = max(plain, 2.0)
                else:
                    hops = plain
                if cuts >= 1:
                    hops = max(
                        hops, min(rows / 2.0 + (cuts - 1), float(max(rows - 1, 1)))
                    )
                irregular_hops_sum += hops
                surviving = (len(links) - min(cuts, len(links))) / len(links) if links else 1.0
                irregular_paths += 2.0 * surviving
            irregular_hops = irregular_hops_sum / cols
            irregular_paths = max(irregular_paths, 1.0)
            return {
                "regular_hops": regular_hops,
                "irregular_hops": irregular_hops,
                "regular_paths": regular_paths,
                "irregular_paths": irregular_paths,
            }
        if topology == "mesh":
            mesh_links = self.hw.mesh_links()
            failed = sum(
                1 for a, b in mesh_links if faults.link_failed(a, b)
            )
            frac = failed / len(mesh_links) if mesh_links else 0.0
            hops = max((rows + cols) / 3.0, 1.0) * (1.0 + frac)
            paths = max(float(2 * min(rows, cols)) * (1.0 - frac), 1.0)
            return {
                "regular_hops": hops,
                "irregular_hops": hops,
                "regular_paths": paths,
                "irregular_paths": paths,
            }
        if topology == "ring":
            n = rows * cols
            ring_links = (
                [(i, i + 1) for i in range(n - 1)] + ([(0, n - 1)] if n > 2 else [])
            )
            cuts = sum(1 for a, b in ring_links if faults.link_failed(a, b))
            if cuts == 0:
                hops = max(n / 4.0, 1.0)
                paths = 2.0
            else:
                # First cut turns the ring into a chain; each further cut
                # forces longer blocked-direction charges, capped at the
                # network diameter.
                hops = min(max(n / 2.0, 1.0) + (cuts - 1), float(max(n - 1, 1)))
                paths = 1.0
            return {
                "regular_hops": hops,
                "irregular_hops": hops,
                "regular_paths": paths,
                "irregular_paths": paths,
            }
        if topology == "crossbar":
            paths = float(faults.live_tiles(self.hw))
            return {
                "regular_hops": 1.0,
                "irregular_hops": 1.0,
                "regular_paths": paths,
                "irregular_paths": paths,
            }
        raise ValueError(f"unknown topology {self.noc.topology!r}")

    # ------------------------------------------------------------------
    # Structural parameters per traffic class
    # ------------------------------------------------------------------
    def avg_hops(self, regular: bool) -> float:
        """Average route length for a traffic class on this topology."""
        if self._degraded is not None:
            return self._degraded["regular_hops" if regular else "irregular_hops"]
        rows, cols = self.hw.grid_rows, self.hw.grid_cols
        topology = self.noc.topology
        if topology == "ditile":
            if regular:
                return 1.0  # neighbour transfers on the horizontal rings
            if self.noc.relink_enabled:
                return 2.0  # Re-Link bypass: near-constant vertical route
            return max(rows / 4.0, 1.0)  # plain vertical ring average
        if topology == "ring":
            n = rows * cols
            return max(n / 4.0, 1.0)
        if topology == "mesh":
            return max((rows + cols) / 3.0, 1.0)
        if topology == "crossbar":
            return 1.0
        raise ValueError(f"unknown topology {self.noc.topology!r}")

    def parallel_paths(self, regular: bool) -> float:
        """Independent links a traffic class can spread across."""
        if self._degraded is not None:
            return self._degraded[
                "regular_paths" if regular else "irregular_paths"
            ]
        rows, cols = self.hw.grid_rows, self.hw.grid_cols
        topology = self.noc.topology
        if topology == "ditile":
            # Bidirectional rings: one ring per row (regular) / column
            # (irregular), two directions each.
            return float(2 * rows) if regular else float(2 * cols)
        if topology == "ring":
            return 2.0  # both ring directions
        if topology == "mesh":
            return float(2 * min(rows, cols))  # bisection links, both directions
        if topology == "crossbar":
            # An n x n crossbar sustains one transfer per output port.
            return float(self.hw.total_tiles)
        raise ValueError(f"unknown topology {self.noc.topology!r}")

    def router_latency(self) -> float:
        """Per-hop routing latency; crossbar arbitration grows with radix."""
        base = float(self.noc.router_latency_cycles)
        if self.noc.topology == "crossbar":
            import math

            return base + math.log2(max(self.hw.total_tiles, 2))
        return base

    # ------------------------------------------------------------------
    # Aggregate estimates
    # ------------------------------------------------------------------
    def per_class_cycles(self, traffic: NoCTraffic) -> Dict[str, float]:
        """Transfer cycles of each traffic class in isolation.

        The per-class breakdown behind :meth:`transfer_cycles`; the
        simulator diffs it against a fault-free model's to attribute
        reroute penalties to traffic classes.
        """
        link_bw = self.noc.link_bytes_per_cycle
        per_class = {}
        for cls in traffic.classes():
            if cls.bytes == 0:
                per_class[cls.name] = 0.0
                continue
            serialization = cls.bytes * self.avg_hops(cls.regular) / (
                link_bw * self.parallel_paths(cls.regular)
            )
            per_class[cls.name] = serialization + self.router_latency() * self.avg_hops(
                cls.regular
            )
        return per_class

    def transfer_cycles(self, traffic: NoCTraffic) -> float:
        """Cycles to drain ``traffic``.

        Regular and irregular classes occupy disjoint link sets on the
        DiTile topology (they proceed concurrently); on shared topologies
        all classes serialize over the same links.
        """
        per_class = self.per_class_cycles(traffic)
        if self.noc.topology == "ditile":
            regular = per_class["temporal"] + per_class["reuse"]
            irregular = per_class["spatial"]
            return max(regular, irregular)
        return sum(per_class.values())

    def byte_hops(self, traffic: NoCTraffic) -> float:
        """Total byte-hops (the NoC energy integrand)."""
        total = 0.0
        for cls in traffic.classes():
            total += cls.bytes * self.avg_hops(cls.regular)
        return total

    def describe(self) -> Dict[str, float]:
        """Structural summary for reports."""
        return {
            "regular_hops": self.avg_hops(True),
            "irregular_hops": self.avg_hops(False),
            "regular_paths": self.parallel_paths(True),
            "irregular_paths": self.parallel_paths(False),
            "router_latency": self.router_latency(),
        }
