"""Processing-element compute model (paper Fig. 5d).

Each PE couples a 4x4 multiplier array to a 4x4 accumulation-adder array
plus a post-processing unit (ReLU/pooling/bias).  The timing model maps MAC
counts to cycles at kernel-dependent efficiency: dense GEMMs (GCN
combination, RNN projections) keep the array nearly full, while sparse
aggregation suffers from irregular operand gathers.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import PEConfig

__all__ = ["KernelEfficiency", "PEModel"]


@dataclass(frozen=True)
class KernelEfficiency:
    """MAC-array occupancy by kernel class.

    Values follow the usual accelerator-simulator ranges: near-full for
    dense products, under half for gather-dominated sparse aggregation.
    """

    dense: float = 0.85
    sparse: float = 0.45
    elementwise: float = 0.60

    def __post_init__(self) -> None:
        for name in ("dense", "sparse", "elementwise"):
            value = getattr(self, name)
            if not 0 < value <= 1:
                raise ValueError(f"{name} efficiency must be in (0, 1]")


class PEModel:
    """Cycle estimation for one PE."""

    def __init__(self, config: PEConfig, efficiency: KernelEfficiency = KernelEfficiency()):
        self.config = config
        self.efficiency = efficiency

    def dense_cycles(self, macs: float) -> float:
        """Cycles for a dense GEMM of ``macs`` multiply-accumulates."""
        return macs / (self.config.macs_per_cycle * self.efficiency.dense)

    def sparse_cycles(self, macs: float) -> float:
        """Cycles for sparse aggregation work."""
        return macs / (self.config.macs_per_cycle * self.efficiency.sparse)

    def elementwise_cycles(self, ops: float) -> float:
        """Cycles for element-wise gate math (sigmoid/tanh/Hadamard)."""
        return ops / (self.config.macs_per_cycle * self.efficiency.elementwise)
