"""Round-level pipeline simulation of an execution plan.

The aggregate simulator (:mod:`repro.accel.simulator`) converts monitored
event *counts* into cycles; this module executes the plan's actual
structure: the logical grid of ``snapshot_groups`` columns x
``vertex_groups`` rows (Fig. 6), where

* each column owns a consecutive group of snapshots and processes them in
  order,
* each row owns one vertex partition (Algorithm 2's balanced groups),
* within a snapshot, the rows of a column compute their partition's GNN
  work, exchange spatial aggregation traffic down the column, then run the
  RNN step,
* consecutive snapshots in *different* columns are linked by a temporal
  dependency: column ``c`` cannot start snapshot ``t`` before column
  ``c-1`` has finished snapshot ``t-1`` and shipped the hidden state
  (plus reuse data) across the horizontal ring.

The result is a per-tile busy/idle timeline, a makespan, and an honest
utilization figure: idle time from load imbalance and pipeline stalls is
visible directly, instead of being folded into an analytic stretch factor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ..core.plan import ExecutionPlan
from ..graphs.partition import partition_loads
from ..models.workload import gcn_ops, rnn_ops, vertex_workload
from .config import HardwareConfig
from .noc import NoCModel, NoCTraffic
from .pe import KernelEfficiency
from .tile import TileModel, TileWork

__all__ = ["TileSegment", "TileTimeline", "PipelineResult", "PipelineSimulator"]

_BYTES = 4


@dataclass(frozen=True)
class TileSegment:
    """One busy interval of a tile: ``[start, end)`` cycles doing ``kind``."""

    start: float
    end: float
    kind: str  # "gnn" | "rnn" | "spatial" | "temporal"
    snapshot: int

    @property
    def duration(self) -> float:
        """Segment length in cycles."""
        return self.end - self.start


@dataclass
class TileTimeline:
    """Busy segments of one logical tile (column, row)."""

    column: int
    row: int
    segments: List[TileSegment] = field(default_factory=list)

    def busy_cycles(self) -> float:
        """Total busy time."""
        return sum(segment.duration for segment in self.segments)

    def compute_cycles(self) -> float:
        """Busy time spent on GNN/RNN computation."""
        return sum(
            segment.duration
            for segment in self.segments
            if segment.kind in ("gnn", "rnn")
        )

    def append(self, start: float, duration: float, kind: str, snapshot: int) -> float:
        """Append a segment; returns its end time."""
        if duration > 0:
            self.segments.append(
                TileSegment(start, start + duration, kind, snapshot)
            )
        return start + duration


@dataclass
class PipelineResult:
    """Outcome of a pipeline simulation."""

    makespan_cycles: float
    timelines: Dict[Tuple[int, int], TileTimeline]
    snapshot_finish: List[float]

    @property
    def num_tiles(self) -> int:
        """Logical tiles in the grid."""
        return len(self.timelines)

    def utilization(self) -> float:
        """Mean busy fraction across tiles (idle = imbalance + stalls)."""
        if self.makespan_cycles <= 0 or not self.timelines:
            return 0.0
        busy = np.mean([t.busy_cycles() for t in self.timelines.values()])
        return float(busy / self.makespan_cycles)

    def compute_utilization(self) -> float:
        """Mean compute-busy fraction (excludes communication segments)."""
        if self.makespan_cycles <= 0 or not self.timelines:
            return 0.0
        busy = np.mean([t.compute_cycles() for t in self.timelines.values()])
        return float(busy / self.makespan_cycles)

    def imbalance(self) -> float:
        """Max-to-mean busy-time ratio across tiles."""
        busy = np.array([t.busy_cycles() for t in self.timelines.values()])
        mean = busy.mean()
        return float(busy.max() / mean) if mean > 0 else 1.0

    def gantt_text(self, width: int = 72) -> str:
        """ASCII Gantt chart of the per-tile timelines.

        One row per tile; ``g``/``r``/``s``/``t`` mark GNN, RNN, spatial,
        and temporal segments, ``.`` marks idle time.
        """
        if self.makespan_cycles <= 0:
            return "(empty timeline)"
        marks = {"gnn": "g", "rnn": "r", "spatial": "s", "temporal": "t"}
        scale = width / self.makespan_cycles
        lines = []
        for (column, row), timeline in sorted(self.timelines.items()):
            canvas = ["."] * width
            for segment in timeline.segments:
                lo = int(segment.start * scale)
                hi = max(int(segment.end * scale), lo + 1)
                for i in range(lo, min(hi, width)):
                    canvas[i] = marks[segment.kind]
            lines.append(f"tile[{column},{row}] |" + "".join(canvas) + "|")
        lines.append(
            f"scale: {self.makespan_cycles / width:.1f} cycles/char, "
            "g=GNN r=RNN s=spatial t=temporal .=idle"
        )
        return "\n".join(lines)

    def to_rows(self) -> list:
        """Timeline segments as flat rows (column, row, kind, start, end,
        snapshot) — CSV-friendly."""
        rows = []
        for (column, row), timeline in sorted(self.timelines.items()):
            for segment in timeline.segments:
                rows.append(
                    [column, row, segment.kind, segment.start, segment.end,
                     segment.snapshot]
                )
        return rows


class PipelineSimulator:
    """Executes an :class:`ExecutionPlan` on its logical tile grid."""

    def __init__(
        self,
        hardware: HardwareConfig,
        efficiency: KernelEfficiency = KernelEfficiency(),
    ):
        self.hardware = hardware
        self.tile_model = TileModel(hardware.tile, efficiency)
        self.noc_model = NoCModel(hardware)

    # ------------------------------------------------------------------
    # Per-snapshot per-row work estimation
    # ------------------------------------------------------------------
    def _row_work(
        self, plan: ExecutionPlan, t: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(gnn_macs, rnn_macs) per vertex row for snapshot ``t``.

        GNN work distributes over rows proportionally to the Eq. 17 load of
        each row's *invalidated* vertices; RNN work follows the invalidated
        vertex count (selective RNN processing).
        """
        snapshot = plan.graph[t]
        spec = plan.spec
        partition = plan.workload.partition
        rows = partition.num_parts
        full = gcn_ops(snapshot, spec.gcn_dims)
        full_rnn = rnn_ops(
            snapshot.num_vertices,
            spec.embedding_dim,
            spec.rnn_hidden_dim,
            spec.rnn_matmuls,
        ).total

        loads = vertex_workload(snapshot, spec.num_gnn_layers)
        if plan.reuse_enabled and plan.redundancy is not None and t > 0:
            affected = plan.redundancy[t].affected_per_layer[-1]
            mask = np.zeros(snapshot.num_vertices, dtype=bool)
            mask[affected] = True
            loads = np.where(mask, loads, 0.0)
            rnn_share_counts = np.bincount(
                partition.assignment[affected], minlength=rows
            ).astype(np.float64)
            gnn_scale = len(affected) / max(snapshot.num_vertices, 1)
        else:
            rnn_share_counts = partition.sizes().astype(np.float64)
            gnn_scale = 1.0

        padded = np.zeros(partition.num_vertices)
        padded[: len(loads)] = loads
        row_loads = partition_loads(padded, partition)
        total_load = row_loads.sum()
        if total_load > 0:
            gnn = full.total * gnn_scale * row_loads / total_load
        else:
            gnn = np.zeros(rows)
        total_rnn_rows = rnn_share_counts.sum()
        if total_rnn_rows > 0:
            rnn = full_rnn * rnn_share_counts / max(snapshot.num_vertices, 1)
        else:
            rnn = np.zeros(rows)
        return gnn, rnn

    def _spatial_cycles(self, plan: ExecutionPlan, t: int) -> float:
        """Column-internal aggregation exchange time for snapshot ``t``."""
        spec = plan.spec
        snapshot = plan.graph[t]
        nv = plan.factors.vertex_groups
        if nv <= 1:
            return 0.0
        fraction = 1.0
        if plan.reuse_enabled and plan.redundancy is not None and t > 0:
            fraction = plan.redundancy[t].affected_fraction(
                plan.spec.num_gnn_layers - 1
            )
        cut = 1.0 - 1.0 / nv
        rows = min(
            fraction * snapshot.num_edges * cut,
            fraction * snapshot.num_vertices * (nv - 1),
        )
        bytes_moved = rows * spec.avg_gnn_width * _BYTES
        return self.noc_model.transfer_cycles(NoCTraffic(spatial_bytes=bytes_moved))

    def _temporal_cycles(self, plan: ExecutionPlan, t: int) -> float:
        """Hidden-state + reuse handoff time between adjacent columns."""
        spec = plan.spec
        snapshot = plan.graph[t]
        bytes_moved = snapshot.num_vertices * spec.rnn_hidden_dim * _BYTES
        if plan.reuse_enabled:
            bytes_moved += snapshot.num_vertices * spec.embedding_dim * _BYTES
        return self.noc_model.transfer_cycles(
            NoCTraffic(temporal_bytes=bytes_moved)
        )

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self, plan: ExecutionPlan) -> PipelineResult:
        """Simulate the plan's pipelined execution; returns the timeline."""
        factors = plan.factors
        columns = factors.snapshot_groups
        rows = factors.vertex_groups
        timelines = {
            (c, r): TileTimeline(c, r) for c in range(columns) for r in range(rows)
        }
        snapshot_groups = plan.workload.snapshot_groups
        snapshot_finish: List[float] = [0.0] * plan.graph.num_snapshots
        column_free = [0.0] * columns

        previous_finish = 0.0  # finish time of snapshot t-1 (any column)
        for column, snapshots in enumerate(snapshot_groups):
            for t in snapshots:
                t = int(t)
                # Temporal dependency: h^{t-1} must have arrived.
                ready = max(column_free[column], previous_finish)
                if t > 0:
                    handoff = self._temporal_cycles(plan, t)
                    cross_column = (
                        t == int(snapshots[0]) and column > 0
                    )  # first snapshot of this column comes from the left
                    if cross_column:
                        for r in range(rows):
                            timelines[(column, r)].append(
                                ready, handoff, "temporal", t
                            )
                        ready += handoff
                gnn, rnn = self._row_work(plan, t)
                spatial = self._spatial_cycles(plan, t)
                finish_times = []
                for r in range(rows):
                    tiles_per_row = max(
                        self.hardware.total_tiles // max(columns * rows, 1), 1
                    )
                    work = TileWork(
                        gnn_aggregation_macs=gnn[r] * 0.3 / tiles_per_row,
                        gnn_combination_macs=gnn[r] * 0.7 / tiles_per_row,
                        rnn_macs=rnn[r] / tiles_per_row,
                    )
                    timeline = timelines[(column, r)]
                    end = timeline.append(
                        ready, self.tile_model.gnn_cycles(work), "gnn", t
                    )
                    if spatial > 0:
                        end = timeline.append(end, spatial, "spatial", t)
                    end = timeline.append(
                        end, self.tile_model.rnn_cycles(work), "rnn", t
                    )
                    finish_times.append(end)
                finish = max(finish_times) if finish_times else ready
                snapshot_finish[t] = finish
                column_free[column] = finish
                previous_finish = finish

        makespan = max(column_free) if column_free else 0.0
        return PipelineResult(
            makespan_cycles=makespan,
            timelines=timelines,
            snapshot_finish=snapshot_finish,
        )
