"""Traffic-matrix NoC analysis: per-link loads under explicit routing.

The aggregate :class:`~repro.accel.noc.NoCModel` uses average hop counts
and path counts; this module routes an explicit tile-to-tile traffic
matrix over the topology's links and reports per-link loads, the
bottleneck link, and measured average hops — the data behind the paper's
claim that restricting irregular traffic to one array dimension "prevents
worst-case data transfers proportional to the network diameter" (§6.1.1).

Links are identified by ``(src_tile, dst_tile)`` pairs of physically
adjacent (or Re-Link-bypassed) routers.  Tiles are indexed row-major on
the ``grid_rows x grid_cols`` array.

Routing is fault-aware when a
:class:`~repro.resilience.faults.FaultModel` is supplied: ring routes
detour around dead links via the longer ring direction, a downed Re-Link
bypass falls back to the plain vertical ring, and when a ring is cut on
both sides the route escapes onto the mesh adjacency (the non-wrap subset
of the ring links, which physically exists on the DiTile array).  Traffic
whose endpoint tile has failed is remapped to the nearest surviving tile
(:meth:`FaultModel.tile_remap`) before routing.  With ``faults=None`` the
router behaves bit-identically to the fault-free model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, TYPE_CHECKING, Tuple

import numpy as np

from ..core.plan import ExecutionPlan
from ..graphs.partition import VertexPartition
from .config import HardwareConfig

if TYPE_CHECKING:  # pragma: no cover - type-only; avoids an import cycle
    from ..resilience.faults import FaultModel

__all__ = ["LinkLoadReport", "TrafficMatrixRouter", "spatial_traffic_matrix"]

Link = Tuple[int, int]


@dataclass
class LinkLoadReport:
    """Routing outcome for one traffic matrix."""

    link_loads: Dict[Link, float]
    total_bytes: float
    total_byte_hops: float
    #: bytes whose route differs from the fault-free route (0 without faults)
    rerouted_bytes: float = 0.0

    @property
    def max_link_load(self) -> float:
        """Bytes on the most-loaded link (the serialization bottleneck)."""
        return max(self.link_loads.values()) if self.link_loads else 0.0

    @property
    def avg_hops(self) -> float:
        """Measured average route length, weighted by bytes."""
        if self.total_bytes == 0:
            return 0.0
        return self.total_byte_hops / self.total_bytes

    def bottleneck_cycles(self, link_bytes_per_cycle: float) -> float:
        """Serialization time of the bottleneck link."""
        return self.max_link_load / link_bytes_per_cycle

    def merged(self, other: "LinkLoadReport") -> "LinkLoadReport":
        """Combine two reports (disjoint or shared links both fine)."""
        loads = dict(self.link_loads)
        for link, load in other.link_loads.items():
            loads[link] = loads.get(link, 0.0) + load
        return LinkLoadReport(
            loads,
            self.total_bytes + other.total_bytes,
            self.total_byte_hops + other.total_byte_hops,
            self.rerouted_bytes + other.rerouted_bytes,
        )


class TrafficMatrixRouter:
    """Routes tile-to-tile traffic over one topology's physical links."""

    def __init__(
        self,
        hardware: HardwareConfig,
        faults: Optional["FaultModel"] = None,
    ):
        self.hardware = hardware
        self.rows = hardware.grid_rows
        self.cols = hardware.grid_cols
        # A clean fault model is dropped so the fault-free path never pays
        # (or observes) any fault machinery.
        self.faults = faults if faults is not None and not faults.is_clean else None

    def _tile(self, row: int, col: int) -> int:
        return row * self.cols + col

    # ------------------------------------------------------------------
    # Fault predicates
    # ------------------------------------------------------------------
    def _route_clear(self, route: List[int]) -> bool:
        """Whether every link of ``route`` is usable under the fault model.

        Links into or out of a failed tile count as failed, so a clear
        route never transits a dead router (endpoints are assumed live —
        :meth:`route_matrix` remaps dead endpoints before routing).
        """
        if self.faults is None:
            return True
        return all(
            not self.faults.link_failed(a, b) for a, b in zip(route, route[1:])
        )

    # ------------------------------------------------------------------
    # Route primitives
    # ------------------------------------------------------------------
    def _ring_path(
        self, positions: List[int], i: int, j: int, step: int
    ) -> List[int]:
        """The route from index ``i`` to ``j`` walking ``step`` around."""
        n = len(positions)
        route = [positions[i]]
        k = i
        while k != j:
            k = (k + step) % n
            route.append(positions[k])
        return route

    def _ring_route(
        self, positions: List[int], src: int, dst: int
    ) -> Optional[List[int]]:
        """Shortest usable path around a ring of tile ids ``positions``.

        Fault-free this is the shorter direction (ties go forward).  With
        faults, a blocked shorter direction detours the long way around;
        ``None`` when the ring is cut on both sides.
        """
        n = len(positions)
        i, j = positions.index(src), positions.index(dst)
        forward = (j - i) % n
        backward = (i - j) % n
        step = 1 if forward <= backward else -1
        primary = self._ring_path(positions, i, j, step)
        if self.faults is None or self._route_clear(primary):
            return primary
        secondary = self._ring_path(positions, i, j, -step)
        if self._route_clear(secondary):
            return secondary
        return None

    def _mesh_route(self, src: int, dst: int) -> List[int]:
        """Dimension-ordered (XY) mesh route."""
        src_r, src_c = divmod(src, self.cols)
        dst_r, dst_c = divmod(dst, self.cols)
        route = [src]
        c = src_c
        while c != dst_c:
            c += 1 if dst_c > c else -1
            route.append(self._tile(src_r, c))
        r = src_r
        while r != dst_r:
            r += 1 if dst_r > r else -1
            route.append(self._tile(r, dst_c))
        return route

    def _mesh_route_yx(self, src: int, dst: int) -> List[int]:
        """Dimension-ordered (YX) mesh route — the XY detour alternative."""
        src_r, src_c = divmod(src, self.cols)
        dst_r, dst_c = divmod(dst, self.cols)
        route = [src]
        r = src_r
        while r != dst_r:
            r += 1 if dst_r > r else -1
            route.append(self._tile(r, src_c))
        c = src_c
        while c != dst_c:
            c += 1 if dst_c > c else -1
            route.append(self._tile(dst_r, c))
        return route

    def _mesh_escape(self, src: int, dst: int) -> List[int]:
        """Best-effort mesh route under faults: XY, else YX, else XY.

        The final fallback deliberately returns a route that may cross a
        dead element: the analytic model still charges its hops, which
        over-costs (never under-costs) an unroutable pattern.
        """
        xy = self._mesh_route(src, dst)
        if self._route_clear(xy):
            return xy
        yx = self._mesh_route_yx(src, dst)
        if self._route_clear(yx):
            return yx
        return xy

    def route(self, src: int, dst: int, regular: bool) -> List[int]:
        """The tile sequence a transfer follows on this topology."""
        if src == dst:
            return [src]
        topology = self.hardware.noc.topology
        src_r, src_c = divmod(src, self.cols)
        dst_r, dst_c = divmod(dst, self.cols)
        if topology == "ditile":
            if regular and src_r == dst_r:
                ring = [self._tile(src_r, c) for c in range(self.cols)]
                route = self._ring_route(ring, src, dst)
                return route if route is not None else self._mesh_escape(src, dst)
            if not regular and src_c == dst_c:
                if self.hardware.noc.relink_enabled and (
                    self.faults is None
                    or not (
                        self.faults.relink_failed(src_c)
                        or self.faults.tile_failed(src)
                        or self.faults.tile_failed(dst)
                    )
                ):
                    return [src, dst]  # Re-Link bypass
                ring = [self._tile(r, src_c) for r in range(self.rows)]
                route = self._ring_route(ring, src, dst)
                return route if route is not None else self._mesh_escape(src, dst)
            # Off-dimension transfer: row ring then column.
            corner = self._tile(src_r, dst_c)
            if self.faults is not None and self.faults.tile_failed(corner):
                return self._mesh_escape(src, dst)
            row_ring = [self._tile(src_r, c) for c in range(self.cols)]
            first = self._ring_route(row_ring, src, corner)
            if first is None:
                return self._mesh_escape(src, dst)
            return first + self.route(corner, dst, regular=False)[1:]
        if topology == "mesh":
            if self.faults is None:
                return self._mesh_route(src, dst)
            return self._mesh_escape(src, dst)
        if topology == "crossbar":
            return [src, dst]
        if topology == "ring":
            ring = list(range(self.rows * self.cols))
            route = self._ring_route(ring, src, dst)
            if route is not None:
                return route
            # A doubly-cut global ring has no alternative fabric; charge
            # the (blocked) shorter direction rather than under-cost.
            i, j = src, dst
            n = len(ring)
            step = 1 if (j - i) % n <= (i - j) % n else -1
            return self._ring_path(ring, i, j, step)
        raise ValueError(f"unknown topology {topology!r}")

    # ------------------------------------------------------------------
    # Matrix routing
    # ------------------------------------------------------------------
    def route_matrix(
        self, traffic: np.ndarray, regular: bool
    ) -> LinkLoadReport:
        """Route a ``tiles x tiles`` byte matrix; returns per-link loads.

        Under a fault model, traffic terminating on a failed tile is first
        remapped to the nearest live tile; ``rerouted_bytes`` counts the
        volume whose route differs from the fault-free baseline.
        """
        tiles = self.rows * self.cols
        if traffic.shape != (tiles, tiles):
            raise ValueError(
                f"traffic matrix must be {tiles}x{tiles}, got {traffic.shape}"
            )
        remap: Dict[int, int] = (
            self.faults.tile_remap(self.hardware) if self.faults else {}
        )
        clean = TrafficMatrixRouter(self.hardware) if self.faults else None
        loads: Dict[Link, float] = {}
        total_bytes = 0.0
        byte_hops = 0.0
        rerouted = 0.0
        for src in range(tiles):
            for dst in range(tiles):
                volume = float(traffic[src, dst])
                if volume <= 0 or src == dst:
                    continue
                live_src = remap.get(src, src)
                live_dst = remap.get(dst, dst)
                if live_src == live_dst:
                    # Remapped onto one tile: the transfer became local.
                    total_bytes += volume
                    continue
                route = self.route(live_src, live_dst, regular)
                total_bytes += volume
                byte_hops += volume * (len(route) - 1)
                for a, b in zip(route, route[1:]):
                    loads[(a, b)] = loads.get((a, b), 0.0) + volume
                if clean is not None and route != clean.route(src, dst, regular):
                    rerouted += volume
        return LinkLoadReport(loads, total_bytes, byte_hops, rerouted)


def spatial_traffic_matrix(
    plan: ExecutionPlan,
    hardware: HardwareConfig,
    timestamp: int = 0,
) -> np.ndarray:
    """Tile-to-tile spatial (aggregation) bytes for one snapshot.

    Vertex row ``i`` of every grid column sends the feature rows its
    partition owns to the rows holding their out-neighbours, within the
    same column (the Fig. 6 mapping).  Returns a dense
    ``total_tiles x total_tiles`` byte matrix on the physical array; grid
    rows/columns beyond the logical mapping stay silent.
    """
    factors = plan.factors
    partition: VertexPartition = plan.workload.partition
    snapshot = plan.graph[timestamp]
    src, dst = snapshot.edge_arrays()
    part_src = partition.assignment[src]
    part_dst = partition.assignment[dst]
    nv = factors.vertex_groups
    pair_counts = np.zeros((nv, nv), dtype=np.float64)
    np.add.at(pair_counts, (part_src, part_dst), 1.0)
    np.fill_diagonal(pair_counts, 0.0)

    width_bytes = plan.spec.avg_gnn_width * 4
    tiles = hardware.total_tiles
    matrix = np.zeros((tiles, tiles))
    cols = hardware.grid_cols
    for column in range(min(factors.snapshot_groups, cols)):
        for i in range(min(nv, hardware.grid_rows)):
            for j in range(min(nv, hardware.grid_rows)):
                if i == j:
                    continue
                src_tile = i * cols + column
                dst_tile = j * cols + column
                matrix[src_tile, dst_tile] += pair_counts[i, j] * width_bytes
    return matrix
