"""Traffic-matrix NoC analysis: per-link loads under explicit routing.

The aggregate :class:`~repro.accel.noc.NoCModel` uses average hop counts
and path counts; this module routes an explicit tile-to-tile traffic
matrix over the topology's links and reports per-link loads, the
bottleneck link, and measured average hops — the data behind the paper's
claim that restricting irregular traffic to one array dimension "prevents
worst-case data transfers proportional to the network diameter" (§6.1.1).

Links are identified by ``(src_tile, dst_tile)`` pairs of physically
adjacent (or Re-Link-bypassed) routers.  Tiles are indexed row-major on
the ``grid_rows x grid_cols`` array.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..core.plan import ExecutionPlan
from ..graphs.partition import VertexPartition
from .config import HardwareConfig

__all__ = ["LinkLoadReport", "TrafficMatrixRouter", "spatial_traffic_matrix"]

Link = Tuple[int, int]


@dataclass
class LinkLoadReport:
    """Routing outcome for one traffic matrix."""

    link_loads: Dict[Link, float]
    total_bytes: float
    total_byte_hops: float

    @property
    def max_link_load(self) -> float:
        """Bytes on the most-loaded link (the serialization bottleneck)."""
        return max(self.link_loads.values()) if self.link_loads else 0.0

    @property
    def avg_hops(self) -> float:
        """Measured average route length, weighted by bytes."""
        if self.total_bytes == 0:
            return 0.0
        return self.total_byte_hops / self.total_bytes

    def bottleneck_cycles(self, link_bytes_per_cycle: float) -> float:
        """Serialization time of the bottleneck link."""
        return self.max_link_load / link_bytes_per_cycle

    def merged(self, other: "LinkLoadReport") -> "LinkLoadReport":
        """Combine two reports (disjoint or shared links both fine)."""
        loads = dict(self.link_loads)
        for link, load in other.link_loads.items():
            loads[link] = loads.get(link, 0.0) + load
        return LinkLoadReport(
            loads,
            self.total_bytes + other.total_bytes,
            self.total_byte_hops + other.total_byte_hops,
        )


class TrafficMatrixRouter:
    """Routes tile-to-tile traffic over one topology's physical links."""

    def __init__(self, hardware: HardwareConfig):
        self.hardware = hardware
        self.rows = hardware.grid_rows
        self.cols = hardware.grid_cols

    def _tile(self, row: int, col: int) -> int:
        return row * self.cols + col

    # ------------------------------------------------------------------
    # Route primitives
    # ------------------------------------------------------------------
    def _ring_route(self, positions: List[int], src: int, dst: int) -> List[int]:
        """Shortest path around a ring of tile ids ``positions``."""
        n = len(positions)
        i, j = positions.index(src), positions.index(dst)
        forward = (j - i) % n
        backward = (i - j) % n
        step = 1 if forward <= backward else -1
        route = [src]
        k = i
        while positions[k] != dst:
            k = (k + step) % n
            route.append(positions[k])
        return route

    def _mesh_route(self, src: int, dst: int) -> List[int]:
        """Dimension-ordered (XY) mesh route."""
        src_r, src_c = divmod(src, self.cols)
        dst_r, dst_c = divmod(dst, self.cols)
        route = [src]
        c = src_c
        while c != dst_c:
            c += 1 if dst_c > c else -1
            route.append(self._tile(src_r, c))
        r = src_r
        while r != dst_r:
            r += 1 if dst_r > r else -1
            route.append(self._tile(r, dst_c))
        return route

    def route(self, src: int, dst: int, regular: bool) -> List[int]:
        """The tile sequence a transfer follows on this topology."""
        if src == dst:
            return [src]
        topology = self.hardware.noc.topology
        src_r, src_c = divmod(src, self.cols)
        dst_r, dst_c = divmod(dst, self.cols)
        if topology == "ditile":
            if regular and src_r == dst_r:
                ring = [self._tile(src_r, c) for c in range(self.cols)]
                return self._ring_route(ring, src, dst)
            if not regular and src_c == dst_c:
                if self.hardware.noc.relink_enabled:
                    return [src, dst]  # Re-Link bypass
                ring = [self._tile(r, src_c) for r in range(self.rows)]
                return self._ring_route(ring, src, dst)
            # Off-dimension transfer: row ring then column.
            corner = self._tile(src_r, dst_c)
            row_ring = [self._tile(src_r, c) for c in range(self.cols)]
            first = self._ring_route(row_ring, src, corner)
            return first + self.route(corner, dst, regular=False)[1:]
        if topology == "mesh":
            return self._mesh_route(src, dst)
        if topology == "crossbar":
            return [src, dst]
        if topology == "ring":
            ring = list(range(self.rows * self.cols))
            return self._ring_route(ring, src, dst)
        raise ValueError(f"unknown topology {topology!r}")

    # ------------------------------------------------------------------
    # Matrix routing
    # ------------------------------------------------------------------
    def route_matrix(
        self, traffic: np.ndarray, regular: bool
    ) -> LinkLoadReport:
        """Route a ``tiles x tiles`` byte matrix; returns per-link loads."""
        tiles = self.rows * self.cols
        if traffic.shape != (tiles, tiles):
            raise ValueError(
                f"traffic matrix must be {tiles}x{tiles}, got {traffic.shape}"
            )
        loads: Dict[Link, float] = {}
        total_bytes = 0.0
        byte_hops = 0.0
        for src in range(tiles):
            for dst in range(tiles):
                volume = float(traffic[src, dst])
                if volume <= 0 or src == dst:
                    continue
                route = self.route(src, dst, regular)
                total_bytes += volume
                byte_hops += volume * (len(route) - 1)
                for a, b in zip(route, route[1:]):
                    loads[(a, b)] = loads.get((a, b), 0.0) + volume
        return LinkLoadReport(loads, total_bytes, byte_hops)


def spatial_traffic_matrix(
    plan: ExecutionPlan,
    hardware: HardwareConfig,
    timestamp: int = 0,
) -> np.ndarray:
    """Tile-to-tile spatial (aggregation) bytes for one snapshot.

    Vertex row ``i`` of every grid column sends the feature rows its
    partition owns to the rows holding their out-neighbours, within the
    same column (the Fig. 6 mapping).  Returns a dense
    ``total_tiles x total_tiles`` byte matrix on the physical array; grid
    rows/columns beyond the logical mapping stay silent.
    """
    factors = plan.factors
    partition: VertexPartition = plan.workload.partition
    snapshot = plan.graph[timestamp]
    src, dst = snapshot.edge_arrays()
    part_src = partition.assignment[src]
    part_dst = partition.assignment[dst]
    nv = factors.vertex_groups
    pair_counts = np.zeros((nv, nv), dtype=np.float64)
    np.add.at(pair_counts, (part_src, part_dst), 1.0)
    np.fill_diagonal(pair_counts, 0.0)

    width_bytes = plan.spec.avg_gnn_width * 4
    tiles = hardware.total_tiles
    matrix = np.zeros((tiles, tiles))
    cols = hardware.grid_cols
    for column in range(min(factors.snapshot_groups, cols)):
        for i in range(min(nv, hardware.grid_rows)):
            for j in range(min(nv, hardware.grid_rows)):
                if i == j:
                    continue
                src_tile = i * cols + column
                dst_tile = j * cols + column
                matrix[src_tile, dst_tile] += pair_counts[i, j] * width_bytes
    return matrix
