"""Phase-level accelerator simulator (paper §7.1).

Timing follows the paper's composition rule: "the overall execution time is
determined by overlapping the off-chip communication time with the on-chip
execution time, while accounting for system configuration overheads and
control signal delays.  The on-chip execution time is further refined by
overlapping the on-chip communication latency with the computation
latency."

Per snapshot the simulator therefore computes

``on_chip = max(compute, noc_transfer)``
``snapshot = max(on_chip, dram_transfer) + overheads``

where ``compute`` is the balanced per-tile MAC time divided by the measured
load utilization (an imbalanced mapping waits for its slowest tile), and
the overheads cover synchronization and reconfiguration events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, TYPE_CHECKING

from ..obs import span as obs_span
from .config import HardwareConfig
from .dram import DRAMModel
from .energy import EnergyBreakdown, EnergyModel, EnergyParams
from .metrics import (
    CostSummary,
    CycleBreakdown,
    DegradedModeReport,
    SimulationResult,
    SnapshotCosts,
)
from .noc import NoCModel
from .pe import KernelEfficiency
from .tile import TileModel, TileWork

if TYPE_CHECKING:  # pragma: no cover - type-only; avoids an import cycle
    from ..resilience.faults import FaultModel

__all__ = ["SimulatorParams", "AcceleratorSimulator"]


@dataclass(frozen=True)
class SimulatorParams:
    """Secondary timing/energy constants."""

    efficiency: KernelEfficiency = KernelEfficiency()
    pipeline_overlap: float = 0.85
    sync_latency_cycles: float = 60.0  # one inter-tile barrier
    config_latency_cycles: float = 50.0  # one NoC/tile reconfiguration
    # Fraction of the shorter phase that fails to hide behind the longer
    # one when overlapping communication with computation (dependency
    # stalls, buffer turnaround).
    overlap_residual: float = 0.2
    sram_bytes_per_mac: float = 0.25  # post-reuse operand traffic
    # Operand bytes hauled through the interconnect per MAC: zero for
    # designs whose PEs read from local buffers (DiTile, ReaDy, MEGA),
    # positive for crossbar-fed PEs (RACE) that stream operands through
    # the exchange.
    operand_noc_bytes_per_mac: float = 0.0


class AcceleratorSimulator:
    """Executes a :class:`CostSummary` on a :class:`HardwareConfig`."""

    def __init__(
        self,
        hardware: HardwareConfig,
        params: SimulatorParams = SimulatorParams(),
        name: Optional[str] = None,
        energy_params: Optional[EnergyParams] = None,
        faults: Optional["FaultModel"] = None,
    ):
        self.hardware = hardware
        self.params = params
        self.name = name or f"accel-{hardware.noc.topology}"
        self.tile_model = TileModel(
            hardware.tile, params.efficiency, params.pipeline_overlap
        )
        # A clean fault model is dropped so the fault-free path is
        # bit-identical to an unfaulted simulator.
        self.faults = (
            faults if faults is not None and not faults.is_clean else None
        )
        self.noc_model = NoCModel(hardware, faults=self.faults)
        self.dram_model = DRAMModel(hardware.dram)
        self.energy_model = EnergyModel(
            energy_params if energy_params is not None else EnergyParams()
        )
        if self.faults is not None:
            # Validates at least one survivor (raises otherwise) and
            # fixes the compute-remap denominator for this run.
            self._live_tiles = self.faults.live_tiles(hardware)
            self._clean_noc: Optional[NoCModel] = NoCModel(hardware)
        else:
            self._live_tiles = hardware.total_tiles
            self._clean_noc = None

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    def _compute_cycles(self, snapshot: SnapshotCosts, utilization: float) -> float:
        """Balanced per-tile compute time, stretched by load imbalance.

        Under a fault model the failed tiles' compute share is remapped
        onto the survivors, so per-tile work grows by
        ``total_tiles / live_tiles`` (fault-free the two are equal)."""
        tiles = self._live_tiles
        work = TileWork(
            gnn_aggregation_macs=snapshot.gnn_aggregation_macs / tiles,
            gnn_combination_macs=snapshot.gnn_combination_macs / tiles,
            rnn_macs=snapshot.rnn_macs / tiles,
        )
        ideal = self.tile_model.total_cycles(work)
        return ideal / max(utilization, 1e-9)

    def _trace_kernels(self, snapshot: SnapshotCosts) -> None:
        """Per-kernel child spans of ``compute`` (traced runs only).

        ``tile_cycles`` is each kernel's un-overlapped per-tile time; the
        parent ``compute`` span's ``cycles`` counter is the authoritative
        (overlapped, imbalance-stretched) figure that reconciles with
        :class:`SimulationResult` totals.
        """
        per_pe = self.hardware.total_tiles * self.tile_model.config.num_pes
        pe = self.tile_model.pe_model
        with obs_span("aggregation") as sp:
            sp.add("macs", snapshot.gnn_aggregation_macs)
            sp.add("tile_cycles", pe.sparse_cycles(snapshot.gnn_aggregation_macs / per_pe))
        with obs_span("combination") as sp:
            sp.add("macs", snapshot.gnn_combination_macs)
            sp.add("tile_cycles", pe.dense_cycles(snapshot.gnn_combination_macs / per_pe))
        with obs_span("rnn") as sp:
            sp.add("macs", snapshot.rnn_macs)
            sp.add("tile_cycles", pe.dense_cycles(snapshot.rnn_macs / per_pe))

    def _snapshot_cycles(
        self, snapshot: SnapshotCosts, utilization: float
    ) -> CycleBreakdown:
        with obs_span("compute") as sp:
            compute = self._compute_cycles(snapshot, utilization)
            if sp.enabled:
                sp.add("cycles", compute)
                self._trace_kernels(snapshot)
        with obs_span("noc") as sp:
            on_chip_comm = self.noc_model.transfer_cycles(snapshot.noc)
            if sp.enabled:
                sp.add("cycles", on_chip_comm)
                sp.add("temporal_bytes", snapshot.noc.temporal_bytes)
                sp.add("spatial_bytes", snapshot.noc.spatial_bytes)
                sp.add("reuse_bytes", snapshot.noc.reuse_bytes)
                sp.add("byte_hops", self.noc_model.byte_hops(snapshot.noc))
        with obs_span("dram") as sp:
            off_chip = self.dram_model.transfer_cycles(snapshot.dram)
            if sp.enabled:
                sp.add("cycles", off_chip)
                sp.add("bytes", snapshot.dram.total_bytes)
                sp.add(
                    "streaming_bytes",
                    snapshot.dram.streaming_read + snapshot.dram.streaming_write,
                )
                sp.add(
                    "random_bytes",
                    snapshot.dram.random_read + snapshot.dram.random_write,
                )
        with obs_span("overhead") as sp:
            overhead = (
                snapshot.sync_events * self.params.sync_latency_cycles
                + snapshot.config_events * self.params.config_latency_cycles
            )
            if sp.enabled:
                sp.add("cycles", overhead)
                sp.add("sync_events", snapshot.sync_events)
                sp.add("config_events", snapshot.config_events)
        residual = self.params.overlap_residual
        on_chip_exec = max(compute, on_chip_comm) + residual * min(
            compute, on_chip_comm
        )
        total = (
            max(on_chip_exec, off_chip)
            + residual * min(on_chip_exec, off_chip)
            + overhead
        )
        return CycleBreakdown(
            compute=compute,
            on_chip=on_chip_comm,
            off_chip=off_chip,
            overhead=overhead,
            total=total,
        )

    def _fault_free_snapshot_total(
        self, snapshot: SnapshotCosts, utilization: float
    ) -> float:
        """What :meth:`_snapshot_cycles` would return on the clean array.

        Mirrors that method's composition rule exactly (no spans) using
        the fault-free NoC model and the full tile count; only consulted
        when a fault model is active, to fill the degraded-mode report's
        baseline.
        """
        assert self._clean_noc is not None
        tiles = self.hardware.total_tiles
        work = TileWork(
            gnn_aggregation_macs=snapshot.gnn_aggregation_macs / tiles,
            gnn_combination_macs=snapshot.gnn_combination_macs / tiles,
            rnn_macs=snapshot.rnn_macs / tiles,
        )
        compute = self.tile_model.total_cycles(work) / max(utilization, 1e-9)
        on_chip_comm = self._clean_noc.transfer_cycles(snapshot.noc)
        off_chip = self.dram_model.transfer_cycles(snapshot.dram)
        overhead = (
            snapshot.sync_events * self.params.sync_latency_cycles
            + snapshot.config_events * self.params.config_latency_cycles
        )
        residual = self.params.overlap_residual
        on_chip_exec = max(compute, on_chip_comm) + residual * min(
            compute, on_chip_comm
        )
        return (
            max(on_chip_exec, off_chip)
            + residual * min(on_chip_exec, off_chip)
            + overhead
        )

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self, costs: CostSummary) -> SimulationResult:
        """Simulate one full DGNN execution."""
        with obs_span(
            "simulate",
            accelerator=self.name,
            algorithm=costs.algorithm,
            snapshots=len(costs.snapshots),
        ) as sim_sp:
            return self._run(costs, sim_sp)

    def _run(self, costs: CostSummary, sim_sp) -> SimulationResult:
        total = CycleBreakdown()
        per_snapshot = []
        noc_byte_hops = 0.0
        config_events = 0.0
        baseline_cycles = 0.0
        reroute_penalty: Dict[str, float] = {}
        for snapshot in costs.snapshots:
            with obs_span("snapshot", index=snapshot.timestamp) as snap_sp:
                breakdown = self._snapshot_cycles(snapshot, costs.load_utilization)
                if snap_sp.enabled:
                    snap_sp.add("cycles", breakdown.total)
            per_snapshot.append(breakdown.total)
            total.compute += breakdown.compute
            total.on_chip += breakdown.on_chip
            total.off_chip += breakdown.off_chip
            total.overhead += breakdown.overhead
            total.total += breakdown.total
            noc_byte_hops += self.noc_model.byte_hops(snapshot.noc)
            config_events += snapshot.config_events
            if self.faults is not None:
                assert self._clean_noc is not None
                baseline_cycles += self._fault_free_snapshot_total(
                    snapshot, costs.load_utilization
                )
                degraded_cls = self.noc_model.per_class_cycles(snapshot.noc)
                clean_cls = self._clean_noc.per_class_cycles(snapshot.noc)
                for name, cycles in degraded_cls.items():
                    penalty = max(cycles - clean_cls[name], 0.0)
                    reroute_penalty[name] = (
                        reroute_penalty.get(name, 0.0) + penalty
                    )

        energy = self._energy(costs, noc_byte_hops, config_events)
        # PE utilization (Fig. 11a): fraction of execution time the PE
        # arrays spend on perfectly-balanced useful compute — imbalance,
        # synchronization, and communication stalls all erode it.
        ideal_compute = total.compute * costs.load_utilization
        utilization = ideal_compute / total.total if total.total > 0 else 0.0
        if sim_sp.enabled:
            sim_sp.add("cycles", total.total)
            sim_sp.add("total_macs", costs.total_macs)
            sim_sp.add("dram_bytes", costs.dram_bytes)
            sim_sp.add("noc_bytes", costs.noc_bytes)
            sim_sp.add("noc_byte_hops", noc_byte_hops)
            sim_sp.set_attr("pe_utilization", utilization)
        degraded: Optional[DegradedModeReport] = None
        if self.faults is not None:
            fault_counts = self.faults.counts()
            degraded = DegradedModeReport(
                failed_tiles=fault_counts["failed_tiles"],
                failed_links=fault_counts["failed_links"],
                failed_relinks=fault_counts["failed_relinks"],
                live_tiles=self._live_tiles,
                compute_stretch=self.hardware.total_tiles / self._live_tiles,
                reroute_penalty_cycles=reroute_penalty,
                baseline_cycles=baseline_cycles,
                degraded_cycles=total.total,
            )
            if sim_sp.enabled:
                sim_sp.add("degraded_cycles", total.total)
                sim_sp.add("baseline_cycles", baseline_cycles)
        return SimulationResult(
            accelerator=self.name,
            algorithm=costs.algorithm,
            cycles=total,
            energy=energy,
            total_macs=costs.total_macs,
            dram_bytes=costs.dram_bytes,
            noc_bytes=costs.noc_bytes,
            noc_byte_hops=noc_byte_hops,
            pe_utilization=utilization,
            frequency_hz=self.hardware.frequency_hz,
            per_snapshot_cycles=per_snapshot,
            degraded=degraded,
        )

    def _energy(
        self, costs: CostSummary, noc_byte_hops: float, config_events: float
    ) -> EnergyBreakdown:
        local_buffer = self.hardware.tile.pe.local_buffer_bytes
        operand_byte_hops = (
            costs.total_macs * self.params.operand_noc_bytes_per_mac
        )
        return self.energy_model.breakdown(
            macs=costs.total_macs,
            sram_bytes=costs.total_macs * self.params.sram_bytes_per_mac,
            sram_capacity_bytes=local_buffer,
            noc_byte_hops=noc_byte_hops + operand_byte_hops,
            dram_bytes=costs.dram_bytes,
            config_events=config_events,
        )
