"""Tile-level compute model (paper Fig. 5c).

A tile aggregates a 4x4 PE array behind a distributed buffer and a reuse
FIFO.  Work assigned to a tile spreads over its PEs; the intra-tile mesh
and double-buffered reuse FIFO let the paper pipeline GNN and RNN kernels,
which the model captures as a pipelining factor on back-to-back kernel
phases.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import TileConfig
from .pe import KernelEfficiency, PEModel

__all__ = ["TileModel", "TileWork"]


@dataclass(frozen=True)
class TileWork:
    """MAC workload of one tile for one snapshot phase."""

    gnn_aggregation_macs: float = 0.0
    gnn_combination_macs: float = 0.0
    rnn_macs: float = 0.0

    @property
    def total_macs(self) -> float:
        """All MACs in this work unit."""
        return self.gnn_aggregation_macs + self.gnn_combination_macs + self.rnn_macs


class TileModel:
    """Cycle estimation for one tile's PE array."""

    def __init__(
        self,
        config: TileConfig,
        efficiency: KernelEfficiency = KernelEfficiency(),
        pipeline_overlap: float = 0.85,
    ):
        if not 0 < pipeline_overlap <= 1:
            raise ValueError("pipeline_overlap must be in (0, 1]")
        self.config = config
        self.pe_model = PEModel(config.pe, efficiency)
        self.pipeline_overlap = pipeline_overlap

    def gnn_cycles(self, work: TileWork) -> float:
        """Cycles for the GNN phase, spread over the tile's PEs."""
        per_pe_agg = work.gnn_aggregation_macs / self.config.num_pes
        per_pe_comb = work.gnn_combination_macs / self.config.num_pes
        return self.pe_model.sparse_cycles(per_pe_agg) + self.pe_model.dense_cycles(
            per_pe_comb
        )

    def rnn_cycles(self, work: TileWork) -> float:
        """Cycles for the RNN phase."""
        return self.pe_model.dense_cycles(work.rnn_macs / self.config.num_pes)

    def total_cycles(self, work: TileWork) -> float:
        """GNN + RNN with pipeline overlap between the kernels.

        The reuse FIFO double-buffers GNN outputs into the RNN kernel
        (§6.1.2), so the shorter phase hides behind the longer one up to
        ``pipeline_overlap``.
        """
        gnn = self.gnn_cycles(work)
        rnn = self.rnn_cycles(work)
        longer, shorter = max(gnn, rnn), min(gnn, rnn)
        return longer + shorter * (1.0 - self.pipeline_overlap)
