"""Static analysis for the repo's own invariants (``repro lint``).

An AST-based lint suite encoding the three invariant families the
codebase cannot express in the type system:

* determinism of the planning/simulation/serving paths (DET001-DET003) —
  the property the offline/online parity guarantee rests on;
* unit consistency of the suffix-annotated cost models (UNIT001-UNIT003);
* thread-confinement of mutable state in the serving layer (THR001);
* process safety of the distributed layer (MP001-MP005) — fork ordering,
  shared-memory lifecycle, queue discipline, and the cross-process
  message protocol.

The project rules run on a shared analysis engine: an AST→CFG builder
(:mod:`.cfg`), a forward worklist dataflow solver (:mod:`.dataflow`), and
a conservative project-wide call graph (:mod:`.callgraph`).

See ``docs/static-analysis.md`` for the rule catalog, the
``# repro: noqa[RULE] justification`` suppression syntax, and how to add
a rule.  CI runs ``repro lint src/repro`` and requires a clean tree.
"""

from .callgraph import CallGraph, FunctionDecl
from .cfg import CFG, CFGNode, build_cfg
from .dataflow import State, fixpoint, solve_forward
from .determinism import DETERMINISM_RULES
from .findings import (
    FileRule,
    Finding,
    PathScope,
    ProjectRule,
    Rule,
    RuleRegistry,
    Severity,
    default_registry,
)
from .processes import PROCESS_RULES
from .reporters import (
    JSON_SCHEMA_VERSION,
    SARIF_VERSION,
    render_json,
    render_sarif,
    render_text,
)
from .runner import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    LintReport,
    LintRunner,
    UsageError,
    run_lint,
)
from .source import SourceFile, Suppression, iter_python_files
from .threads import THREAD_RULES
from .units import UNIT_RULES, Unit, infer_unit, unit_of_name

__all__ = [
    "Severity",
    "Finding",
    "PathScope",
    "Rule",
    "FileRule",
    "ProjectRule",
    "RuleRegistry",
    "default_registry",
    "CFG",
    "CFGNode",
    "build_cfg",
    "State",
    "solve_forward",
    "fixpoint",
    "CallGraph",
    "FunctionDecl",
    "DETERMINISM_RULES",
    "UNIT_RULES",
    "THREAD_RULES",
    "PROCESS_RULES",
    "Unit",
    "infer_unit",
    "unit_of_name",
    "SourceFile",
    "Suppression",
    "iter_python_files",
    "render_text",
    "render_json",
    "render_sarif",
    "JSON_SCHEMA_VERSION",
    "SARIF_VERSION",
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_USAGE",
    "LintReport",
    "LintRunner",
    "UsageError",
    "run_lint",
]
