"""Small AST helpers shared by the rule implementations."""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional

__all__ = ["dotted_name", "terminal_name", "ImportMap", "walk_functions"]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a ``Name``/``Attribute`` chain, else ``None``."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def terminal_name(node: ast.AST) -> Optional[str]:
    """The last identifier of a ``Name``/``Attribute`` chain, else ``None``."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


class ImportMap:
    """Maps local names to the dotted module paths they were imported as.

    ``import numpy as np`` makes ``np`` resolve to ``numpy``;
    ``from datetime import datetime as dt`` makes ``dt`` resolve to
    ``datetime.datetime``.  :meth:`resolve` rewrites a call chain like
    ``np.random.default_rng`` into ``numpy.random.default_rng`` so rules
    can match fully-qualified names regardless of import style.
    """

    def __init__(self, tree: ast.AST):
        self.aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.aliases[local] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level:  # relative imports never shadow stdlib targets
                    continue
                module = node.module or ""
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{module}.{alias.name}" if module else alias.name

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Fully-qualified dotted path of a ``Name``/``Attribute`` chain."""
        dotted = dotted_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        origin = self.aliases.get(head)
        if origin is None:
            return dotted
        return f"{origin}.{rest}" if rest else origin


def walk_functions(tree: ast.AST) -> Iterator[ast.AST]:
    """Module plus every (async) function definition, outermost first."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
