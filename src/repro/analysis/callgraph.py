"""Project-wide call graph over the in-scope source set.

Generalizes the ad-hoc name resolution the thread-safety rule used to
carry: one pass per file collects every function/method definition and
the simple (terminal) names it calls; the graph then answers the two
reachability questions the project rules need —

* :meth:`CallGraph.reachable` — which functions can run downstream of a
  set of root names (THR001's "reachable from a thread target");
* :meth:`CallGraph.reaches_call` — which functions can, transitively,
  make a call whose terminal name is in a target set (MP001's "this call
  may fork").

Resolution is deliberately conservative: a call resolves to *every*
definition with the same terminal name, anywhere in the in-scope set.
That over-approximates (``a.serve()`` matches every ``serve``), which is
the right failure mode for a lint — a missed edge would silently hide a
hazard, an extra edge at worst costs a justified suppression.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

from .astutil import terminal_name
from .source import SourceFile

__all__ = ["FunctionDecl", "CallGraph"]


@dataclass
class FunctionDecl:
    """One function/method definition and the simple names it calls."""

    name: str
    #: enclosing class name for methods; ``None`` for plain/nested funcs
    cls: Optional[str]
    path: str
    line: int
    calls: Set[str] = field(default_factory=set)


class _DeclCollector(ast.NodeVisitor):
    """Per-file pass: definitions and the terminal names each one calls."""

    def __init__(self, source: SourceFile):
        self.source = source
        self.decls: List[FunctionDecl] = []
        self._class_stack: List[str] = []
        self._func_stack: List[FunctionDecl] = []

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _visit_function(self, node: ast.AST, name: str) -> None:
        enclosing_class = self._class_stack[-1] if self._class_stack else None
        if self._func_stack:  # a nested function is not a method
            enclosing_class = None
        decl = FunctionDecl(
            name=name,
            cls=enclosing_class,
            path=self.source.display_path,
            line=getattr(node, "lineno", 1),
        )
        self.decls.append(decl)
        self._func_stack.append(decl)
        self.generic_visit(node)
        self._func_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node, node.name)

    def visit_Call(self, node: ast.Call) -> None:
        callee = terminal_name(node.func)
        if self._func_stack and callee is not None:
            self._func_stack[-1].calls.add(callee)
        self.generic_visit(node)


class CallGraph:
    """The conservative name-resolution call graph of a source set."""

    def __init__(self, decls: Sequence[FunctionDecl]):
        self.decls = list(decls)
        self.by_name: Dict[str, List[FunctionDecl]] = {}
        for decl in self.decls:
            self.by_name.setdefault(decl.name, []).append(decl)

    @classmethod
    def build(cls, sources: Iterable[SourceFile]) -> "CallGraph":
        decls: List[FunctionDecl] = []
        for source in sources:
            if source.tree is None:
                continue
            collector = _DeclCollector(source)
            collector.visit(source.tree)
            decls.extend(collector.decls)
        return cls(decls)

    def calls_of(self, name: str) -> Set[str]:
        """Union of the call sets of every definition named ``name``."""
        out: Set[str] = set()
        for decl in self.by_name.get(name, []):
            out |= decl.calls
        return out

    def reachable(self, roots: Iterable[str]) -> Set[str]:
        """Every name reachable from ``roots`` along call edges.

        Includes the roots themselves and call targets with no in-scope
        definition (they terminate the walk but are still "reached").
        """
        seen: Set[str] = set()
        frontier = list(roots)
        while frontier:
            name = frontier.pop()
            if name in seen:
                continue
            seen.add(name)
            frontier.extend(call for call in self.calls_of(name) if call not in seen)
        return seen

    def reaches_call(self, targets: Set[str]) -> Set[str]:
        """Defined function names that may transitively call ``targets``.

        A function reaches a target if any same-named definition calls a
        target name directly, or calls a function that reaches one.
        Computed by reverse propagation to a fixpoint.
        """
        reaching: Set[str] = set()
        changed = True
        while changed:
            changed = False
            for decl in self.decls:
                if decl.name in reaching:
                    continue
                if decl.calls & targets or decl.calls & reaching:
                    reaching.add(decl.name)
                    changed = True
        return reaching
