"""AST -> intraprocedural control-flow graph.

The CFG is the substrate of the dataflow rules (``analysis/dataflow.py``
solves over it): one node per *statement*, plus synthetic entry / exit /
raise-exit nodes and synthetic cleanup nodes for ``finally`` blocks and
``with`` exits.  The builder models the edges the process-safety rules
depend on:

* **branches and loops** — ``if``/``while``/``for`` with back edges and
  zero-iteration exits (``while True`` conservatively keeps an exit edge;
  infeasible paths are acceptable, missed paths are not);
* **try/except/else/finally** — every statement inside a ``try`` (or
  ``with``) body gets an implicit exception edge to the innermost
  handler dispatch / cleanup node; ``finally`` bodies are built once and
  conservatively continue to *every* continuation that can enter them
  (normal successor, enclosing exception target, function exit);
* **with** — the body's exception edges route through a synthetic
  ``with_end`` node carrying the ``With`` statement, so transfer
  functions can model ``__exit__`` cleanup on both the normal and the
  exceptional path;
* **abrupt exits** — ``return``/``break``/``continue``/``raise`` route
  through the pending cleanup (finally / with) stack before reaching
  their targets.

Exception edges are marked via :attr:`CFG.exc_edges`; the solver carries
the join of the raising statement's pre- and post-state over them (its
effect may or may not have happened).  Statements outside any
``try``/``with`` body get no implicit exception edge — the suite flags
unprotected cleanup via the resource rules, not by assuming every line
can throw.

Exits are classified (:attr:`CFG.exit_kinds`) so resource rules can
distinguish a value-bearing ``return`` (a possible ownership handoff)
from falling off the end of the function.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

__all__ = ["CFGNode", "CFG", "build_cfg"]

FunctionLike = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Module]

#: exit-kind labels (values of :attr:`CFG.exit_kinds`)
RETURN_VALUE = "return_value"
RETURN_NONE = "return_none"
IMPLICIT = "implicit"
AMBIGUOUS = "ambiguous"


@dataclass
class CFGNode:
    """One CFG node: a statement, or a synthetic structural marker."""

    index: int
    #: the statement this node executes (``None`` for synthetic nodes)
    stmt: Optional[ast.stmt]
    #: ``"stmt"``, ``"entry"``, ``"exit"``, ``"raise_exit"``,
    #: ``"with_end"`` (stmt is the ``With``), or ``"finally"`` (stmt is
    #: the ``Try`` whose finalbody follows)
    kind: str = "stmt"


@dataclass
class CFG:
    """The control-flow graph of one function (or module) body."""

    nodes: List[CFGNode] = field(default_factory=list)
    succ: Dict[int, Set[int]] = field(default_factory=dict)
    pred: Dict[int, Set[int]] = field(default_factory=dict)
    entry: int = 0
    exit: int = 1
    raise_exit: int = 2
    #: edges that model an exception in flight (solver uses the source's
    #: pre-state on these, since the raising statement's effect may not
    #: have happened)
    exc_edges: Set[Tuple[int, int]] = field(default_factory=set)
    #: classification of each predecessor of :attr:`exit`
    exit_kinds: Dict[int, str] = field(default_factory=dict)

    def add_node(self, stmt: Optional[ast.stmt], kind: str = "stmt") -> int:
        node = CFGNode(index=len(self.nodes), stmt=stmt, kind=kind)
        self.nodes.append(node)
        self.succ[node.index] = set()
        self.pred[node.index] = set()
        return node.index

    def add_edge(self, src: int, dst: int, exc: bool = False) -> None:
        self.succ[src].add(dst)
        self.pred[dst].add(src)
        if exc:
            self.exc_edges.add((src, dst))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def statement_nodes(self) -> List[CFGNode]:
        """The non-synthetic nodes, in creation (roughly source) order."""
        return [n for n in self.nodes if n.kind == "stmt"]

    @staticmethod
    def evaluated_exprs(node: CFGNode) -> List[ast.AST]:
        """The expression subtrees actually evaluated *at* ``node``.

        A compound statement's head node evaluates only its own
        expressions (an ``if``'s test, a ``for``'s iterable, a ``with``'s
        context managers) — the body statements are separate nodes, so
        transfer functions must not :func:`ast.walk` the whole compound
        statement.  Synthetic nodes (``finally``, ``with_end``,
        ``dispatch``) evaluate nothing.
        """
        stmt = node.stmt
        if stmt is None or node.kind != "stmt":
            return []
        if isinstance(stmt, ast.If):
            return [stmt.test]
        if isinstance(stmt, ast.While):
            return [stmt.test]
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return [stmt.iter, stmt.target]
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return list(stmt.items)
        if isinstance(stmt, ast.Try):  # pragma: no cover - heads are synthetic
            return []
        if isinstance(stmt, ast.Return):
            return [] if stmt.value is None else [stmt.value]
        if isinstance(stmt, ast.Raise):
            return [e for e in (stmt.exc, stmt.cause) if e is not None]
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return []  # opaque nested definition
        return [stmt]

    def postdominators(self) -> Dict[int, Set[int]]:
        """Node -> the set of nodes on every path from it to the exits.

        Computed by the standard iterative intersection over the reversed
        graph, with both :attr:`exit` and :attr:`raise_exit` as roots.
        A cleanup node that post-dominates a resource creation is exactly
        the "guaranteed cleanup" MP002 asks for.
        """
        all_nodes = set(self.succ)
        roots = {self.exit, self.raise_exit}
        post: Dict[int, Set[int]] = {
            n: ({n} if n in roots else set(all_nodes)) for n in all_nodes
        }
        changed = True
        while changed:
            changed = False
            for n in all_nodes - roots:
                succs = self.succ[n]
                if succs:
                    new = set.intersection(*(post[s] for s in succs)) | {n}
                else:  # dangling node: nothing beyond itself is guaranteed
                    new = {n}
                if new != post[n]:
                    post[n] = new
                    changed = True
        return post


class _Builder:
    """Recursive-descent CFG construction over a statement list."""

    def __init__(self) -> None:
        self.cfg = CFG()
        self.cfg.entry = self.cfg.add_node(None, kind="entry")
        self.cfg.exit = self.cfg.add_node(None, kind="exit")
        self.cfg.raise_exit = self.cfg.add_node(None, kind="raise_exit")
        #: innermost implicit-exception target (``None`` outside try/with)
        self._exc_stack: List[Optional[int]] = [None]
        #: pending cleanup (finally / with_end) entry nodes, innermost last
        self._cleanup_stack: List[int] = []
        #: abrupt-continuation kinds routed into each cleanup node
        self._cleanup_kinds: Dict[int, Set[str]] = {}
        #: (continue target, break frontier collector), innermost last
        self._loop_stack: List[Tuple[int, List[int]]] = []

    # -- helpers --------------------------------------------------------
    def _connect(self, frontier: Sequence[int], node: int) -> None:
        for src in frontier:
            self.cfg.add_edge(src, node)

    def _exc_target(self) -> Optional[int]:
        return self._exc_stack[-1]

    def _implicit_exc_edge(self, node: int) -> None:
        target = self._exc_target()
        if target is not None:
            self.cfg.add_edge(node, target, exc=True)

    def _route_abrupt(self, node: int, kind: str, target: int) -> None:
        """Send ``node``'s abrupt exit through pending cleanup, or direct."""
        if self._cleanup_stack:
            cleanup = self._cleanup_stack[-1]
            self.cfg.add_edge(node, cleanup)
            self._cleanup_kinds.setdefault(cleanup, set()).add(kind)
        else:
            self.cfg.add_edge(node, target)
            if target == self.cfg.exit:
                self._note_exit_kind(node, kind)

    def _note_exit_kind(self, node: int, kind: str) -> None:
        kinds = self.cfg.exit_kinds
        if kind in (
            "break", "continue"
        ):  # pragma: no cover - break/continue never target exit
            kind = AMBIGUOUS
        if node in kinds and kinds[node] != kind:
            kinds[node] = AMBIGUOUS
        else:
            kinds[node] = kind

    # -- statement dispatch ---------------------------------------------
    def build_block(
        self, stmts: Sequence[ast.stmt], frontier: List[int]
    ) -> List[int]:
        for stmt in stmts:
            if not frontier:
                break  # unreachable code after an abrupt statement
            frontier = self._build_stmt(stmt, frontier)
        return frontier

    def _build_stmt(self, stmt: ast.stmt, frontier: List[int]) -> List[int]:
        if isinstance(stmt, ast.If):
            return self._build_if(stmt, frontier)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._build_loop(stmt, frontier)
        if isinstance(stmt, ast.Try):
            return self._build_try(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._build_with(stmt, frontier)
        if isinstance(stmt, ast.Return):
            return self._build_return(stmt, frontier)
        if isinstance(stmt, ast.Raise):
            return self._build_raise(stmt, frontier)
        if isinstance(stmt, ast.Break):
            return self._build_break(stmt, frontier)
        if isinstance(stmt, ast.Continue):
            return self._build_continue(stmt, frontier)
        # Simple statement (incl. nested def/class, which are opaque).
        node = self.cfg.add_node(stmt)
        self._connect(frontier, node)
        self._implicit_exc_edge(node)
        return [node]

    def _build_if(self, stmt: ast.If, frontier: List[int]) -> List[int]:
        node = self.cfg.add_node(stmt)
        self._connect(frontier, node)
        self._implicit_exc_edge(node)
        then_frontier = self.build_block(stmt.body, [node])
        else_frontier = (
            self.build_block(stmt.orelse, [node]) if stmt.orelse else [node]
        )
        return then_frontier + else_frontier

    def _build_loop(
        self, stmt: Union[ast.While, ast.For, ast.AsyncFor], frontier: List[int]
    ) -> List[int]:
        head = self.cfg.add_node(stmt)
        self._connect(frontier, head)
        self._implicit_exc_edge(head)
        breaks: List[int] = []
        self._loop_stack.append((head, breaks))
        body_frontier = self.build_block(stmt.body, [head])
        self._connect(body_frontier, head)  # back edge
        self._loop_stack.pop()
        exit_frontier = (
            self.build_block(stmt.orelse, [head]) if stmt.orelse else [head]
        )
        return exit_frontier + breaks

    def _build_return(self, stmt: ast.Return, frontier: List[int]) -> List[int]:
        node = self.cfg.add_node(stmt)
        self._connect(frontier, node)
        self._implicit_exc_edge(node)
        returns_value = not (
            stmt.value is None
            or (isinstance(stmt.value, ast.Constant) and stmt.value.value is None)
        )
        self._route_abrupt(
            node, RETURN_VALUE if returns_value else RETURN_NONE, self.cfg.exit
        )
        return []

    def _build_raise(self, stmt: ast.Raise, frontier: List[int]) -> List[int]:
        node = self.cfg.add_node(stmt)
        self._connect(frontier, node)
        target = self._exc_target()
        if target is not None:
            self.cfg.add_edge(node, target, exc=True)
        elif self._cleanup_stack:
            cleanup = self._cleanup_stack[-1]
            self.cfg.add_edge(node, cleanup, exc=True)
            self._cleanup_kinds.setdefault(cleanup, set()).add("raise")
        else:
            self.cfg.add_edge(node, self.cfg.raise_exit, exc=True)
        return []

    def _build_break(self, stmt: ast.Break, frontier: List[int]) -> List[int]:
        node = self.cfg.add_node(stmt)
        self._connect(frontier, node)
        if self._loop_stack:
            if self._cleanup_stack:
                cleanup = self._cleanup_stack[-1]
                self.cfg.add_edge(node, cleanup)
                self._cleanup_kinds.setdefault(cleanup, set()).add("break")
            else:
                self._loop_stack[-1][1].append(node)
        return []

    def _build_continue(self, stmt: ast.Continue, frontier: List[int]) -> List[int]:
        node = self.cfg.add_node(stmt)
        self._connect(frontier, node)
        if self._loop_stack:
            self._route_abrupt(node, "continue", self._loop_stack[-1][0])
        return []

    # -- structured statements ------------------------------------------
    def _build_with(
        self, stmt: Union[ast.With, ast.AsyncWith], frontier: List[int]
    ) -> List[int]:
        node = self.cfg.add_node(stmt)
        self._connect(frontier, node)
        self._implicit_exc_edge(node)
        with_end = self.cfg.add_node(stmt, kind="with_end")
        self._exc_stack.append(with_end)
        self._cleanup_stack.append(with_end)
        body_frontier = self.build_block(stmt.body, [node])
        self._cleanup_stack.pop()
        self._exc_stack.pop()
        self._connect(body_frontier, with_end)
        self._finish_cleanup(with_end, [with_end])
        return [with_end]

    def _build_try(self, stmt: ast.Try, frontier: List[int]) -> List[int]:
        has_finally = bool(stmt.finalbody)
        fin_entry = (
            self.cfg.add_node(stmt, kind="finally") if has_finally else None
        )
        if fin_entry is not None:
            self._cleanup_stack.append(fin_entry)

        # Where does an exception inside the body go?
        dispatch: Optional[int] = None
        if stmt.handlers:
            dispatch = self.cfg.add_node(stmt, kind="dispatch")
        body_exc_target = dispatch if dispatch is not None else fin_entry
        self._exc_stack.append(
            body_exc_target if body_exc_target is not None else self._exc_target()
        )
        body_frontier = self.build_block(stmt.body, list(frontier))
        self._exc_stack.pop()

        else_frontier = (
            self.build_block(stmt.orelse, body_frontier)
            if stmt.orelse
            else body_frontier
        )

        handler_frontiers: List[int] = []
        if dispatch is not None:
            # Handler bodies raise outward: to the finally if present,
            # else to the enclosing target.
            self._exc_stack.append(
                fin_entry if fin_entry is not None else self._exc_target()
            )
            for handler in stmt.handlers:
                handler_frontiers.extend(
                    self.build_block(handler.body, [dispatch])
                )
            self._exc_stack.pop()
            # The dispatch may match no handler: the exception continues
            # to the finally / enclosing target / function raise-exit.
            # A bare ``except:`` or ``except BaseException:`` catches
            # everything, so no exception escapes the dispatch.
            if not self._has_catch_all(stmt.handlers):
                self._propagate_exception(dispatch, fin_entry)

        normal_frontier = else_frontier + handler_frontiers
        if fin_entry is None:
            return normal_frontier

        self._cleanup_stack.pop()
        self._connect(normal_frontier, fin_entry)
        fin_frontier = self.build_block(stmt.finalbody, [fin_entry])
        self._finish_cleanup(fin_entry, fin_frontier)
        return fin_frontier

    @staticmethod
    def _has_catch_all(handlers: List[ast.ExceptHandler]) -> bool:
        for handler in handlers:
            if handler.type is None:
                return True
            if (
                isinstance(handler.type, ast.Name)
                and handler.type.id == "BaseException"
            ):
                return True
        return False

    def _propagate_exception(self, node: int, fin_entry: Optional[int]) -> None:
        """An uncaught exception at ``node`` continues outward."""
        if fin_entry is not None:
            self.cfg.add_edge(node, fin_entry, exc=True)
            self._cleanup_kinds.setdefault(fin_entry, set()).add("raise")
            return
        target = self._exc_target()
        if target is not None:
            self.cfg.add_edge(node, target, exc=True)
        else:
            self.cfg.add_edge(node, self.cfg.raise_exit, exc=True)

    def _finish_cleanup(self, entry: int, end_frontier: List[int]) -> None:
        """Continue a completed cleanup body to every continuation that
        can have entered it (conservative join of the routed kinds)."""
        kinds = self._cleanup_kinds.pop(entry, set())
        # Exceptions can always have routed in (the body's implicit exc
        # edges target the entry), so always propagate outward.  These
        # continuation edges are *normal* edges: the cleanup body itself
        # completed, so its effects hold when the original exception
        # resumes — a ``close()`` inside a ``finally`` must be visible at
        # the raise-exit.
        for src in end_frontier:
            target = self._exc_target()
            if target is not None:
                self.cfg.add_edge(src, target)
            elif self._cleanup_stack:
                outer = self._cleanup_stack[-1]
                self.cfg.add_edge(src, outer)
                self._cleanup_kinds.setdefault(outer, set()).add("raise")
            else:
                self.cfg.add_edge(src, self.cfg.raise_exit)
        for kind in kinds - {"raise"}:
            for src in end_frontier:
                if kind in (RETURN_VALUE, RETURN_NONE):
                    if self._cleanup_stack:
                        outer = self._cleanup_stack[-1]
                        self.cfg.add_edge(src, outer)
                        self._cleanup_kinds.setdefault(outer, set()).add(kind)
                    else:
                        self.cfg.add_edge(src, self.cfg.exit)
                        self._note_exit_kind(src, AMBIGUOUS)
                elif kind == "break" and self._loop_stack:
                    if self._cleanup_stack:
                        outer = self._cleanup_stack[-1]
                        self.cfg.add_edge(src, outer)
                        self._cleanup_kinds.setdefault(outer, set()).add(kind)
                    else:
                        self._loop_stack[-1][1].append(src)
                elif kind == "continue" and self._loop_stack:
                    if self._cleanup_stack:
                        outer = self._cleanup_stack[-1]
                        self.cfg.add_edge(src, outer)
                        self._cleanup_kinds.setdefault(outer, set()).add(kind)
                    else:
                        self.cfg.add_edge(src, self._loop_stack[-1][0])


def build_cfg(func: FunctionLike) -> CFG:
    """The CFG of ``func``'s body (a function/method def, or a module).

    Nested function and class definitions are opaque single statements —
    their bodies get their own CFGs when analyzed; control never flows
    *into* them at the definition site.
    """
    builder = _Builder()
    cfg = builder.cfg
    frontier = builder.build_block(func.body, [cfg.entry])
    for src in frontier:
        cfg.add_edge(src, cfg.exit)
        builder._note_exit_kind(src, IMPLICIT)
    return cfg
