"""Forward worklist dataflow solving over :mod:`repro.analysis.cfg`.

The solver is deliberately small: states are plain ``{key: value}``
mappings (a missing key is bottom), joined per key by a caller-supplied
value join, and transferred per CFG node by a caller-supplied transfer
function.  That is enough for every lattice the rule suite needs —

* the *resource* lattice of MP002 (``created -> closed -> unlinked``,
  joined towards "least progress" so a leak on any path survives);
* the boolean *phase* lattice of MP001 (``threads_started`` may-state,
  joined by ``or``);
* and, through :func:`fixpoint`, the flow-insensitive binding fixpoints
  the determinism rules iterate (DET003's set-taint chains).

Exception edges (:attr:`~repro.analysis.cfg.CFG.exc_edges`) propagate the
join of the source node's pre- and post-state: an exception in flight
means the statement's effect *may not* have happened — which is exactly
why a ``close()`` that is not in a ``finally`` does not count as
guaranteed cleanup on the exceptional path.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Tuple, TypeVar

from .cfg import CFG, CFGNode

__all__ = ["State", "solve_forward", "fixpoint"]

#: one dataflow state: abstract value per tracked key (missing = bottom)
State = Dict[str, object]

T = TypeVar("T")


def _join(
    a: State, b: State, join_values: Callable[[object, object], object]
) -> State:
    """Per-key join; a key present on one side only keeps its value."""
    out = dict(a)
    for key, value in b.items():
        out[key] = join_values(out[key], value) if key in out else value
    return out


def solve_forward(
    cfg: CFG,
    transfer: Callable[[CFGNode, State], State],
    initial: State,
    join_values: Callable[[object, object], object],
) -> Tuple[Dict[int, State], Dict[int, State]]:
    """Iterate ``transfer`` over ``cfg`` to a fixpoint.

    Returns ``(state_in, state_out)`` per node index.  ``transfer`` must
    be monotone over a finite-height value lattice for termination (every
    lattice in this suite is a finite chain or a boolean).  ``transfer``
    receives a private copy of the in-state and may mutate it.
    """
    state_in: Dict[int, State] = {cfg.entry: dict(initial)}
    state_out: Dict[int, State] = {}
    worklist = deque([cfg.entry])
    in_queue = {cfg.entry}
    while worklist:
        index = worklist.popleft()
        in_queue.discard(index)
        node = cfg.nodes[index]
        in_state = state_in.get(index, {})
        out_state = transfer(node, dict(in_state))
        state_out[index] = out_state
        for succ in cfg.succ[index]:
            # Exception edges carry the pre-state joined with the
            # post-state: the raising statement's effect may or may not
            # have taken place, and the same (src, dst) pair may also be
            # a normal edge (edges are deduplicated per pair).
            if (index, succ) in cfg.exc_edges:
                carried = _join(in_state, out_state, join_values)
            else:
                carried = out_state
            merged = (
                _join(state_in[succ], carried, join_values)
                if succ in state_in
                else dict(carried)
            )
            if succ not in state_in or merged != state_in[succ]:
                state_in[succ] = merged
                if succ not in in_queue:
                    worklist.append(succ)
                    in_queue.add(succ)
    return state_in, state_out


def fixpoint(step: Callable[[T], T], initial: T) -> T:
    """Iterate ``step`` from ``initial`` until the value stops changing.

    The flow-insensitive companion to :func:`solve_forward`: rules whose
    abstraction is a whole-module binding table (DET003's set-taint
    propagation through name chains) iterate it here instead of hand-
    rolling the loop.  ``step`` must be monotone on a finite domain.
    """
    current = initial
    while True:
        after = step(current)
        if after == current:
            return current
        current = after
