"""Determinism rules (DET001-DET003).

The serving layer promises bit-identical parity between the online and
offline pipelines (``docs/serving.md``), and every evaluation artifact is
regenerated from fixed seeds.  These rules mechanically enforce the three
properties that parity rests on, in the planning / simulation / serving
paths (:data:`~repro.analysis.findings.DETERMINISTIC_PATHS`):

* **DET001** — no wall-clock reads outside the stats module.  Results
  must be pure functions of the workload; wall-clock belongs only to
  service telemetry, which lives in ``serving/stats.py`` by design.
* **DET002** — no unseeded randomness.  ``np.random.default_rng()``
  without a seed, the legacy ``np.random.*`` global generator, and the
  stdlib ``random`` module's global functions all draw from process-level
  state that varies run to run.
* **DET003** — no order-sensitive accumulation over unordered iterables.
  Set iteration order depends on the per-process hash seed
  (``PYTHONHASHSEED``); folding floats, appending to lists, or joining
  strings in that order makes results differ across runs.  Dicts built
  *from* sets (``{k: ... for k in some_set}``, ``dict.fromkeys(s)``)
  inherit the problem through their insertion order, so iterating their
  ``.values()``/``.keys()``/``.items()`` is flagged too.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .astutil import ImportMap, dotted_name
from .dataflow import fixpoint
from .findings import DETERMINISTIC_PATHS, FileRule, Finding
from .source import SourceFile

__all__ = [
    "WallClockRule",
    "UnseededRandomRule",
    "UnorderedAccumulationRule",
    "DETERMINISM_RULES",
]

_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

_NP_GLOBAL_RNG = {
    "numpy.random." + name
    for name in (
        "rand", "randn", "randint", "random", "random_sample", "choice",
        "shuffle", "permutation", "uniform", "normal", "poisson", "seed",
    )
}

_STDLIB_RANDOM = {
    "random." + name
    for name in (
        "random", "randint", "randrange", "uniform", "choice", "choices",
        "sample", "shuffle", "gauss", "normalvariate", "betavariate",
        "expovariate", "seed", "getrandbits", "triangular",
    )
}


class WallClockRule(FileRule):
    """DET001: wall-clock reads in deterministic paths."""

    id = "DET001"
    name = "wall-clock read in a deterministic path"
    rationale = (
        "Served results must be pure functions of the workload; the only "
        "module allowed to observe wall-clock time is serving/stats.py "
        "(telemetry), which this scope excludes."
    )
    scope = DETERMINISTIC_PATHS

    def check(self, source: SourceFile) -> Iterator[Finding]:
        assert source.tree is not None
        imports = ImportMap(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = imports.resolve(node.func)
            if resolved in _WALL_CLOCK_CALLS:
                yield self.finding(
                    source,
                    node.lineno,
                    node.col_offset,
                    f"wall-clock read `{resolved}()` in a deterministic path; "
                    "route timing through repro.serving.stats",
                )


class UnseededRandomRule(FileRule):
    """DET002: unseeded random number generation."""

    id = "DET002"
    name = "unseeded random number generation"
    rationale = (
        "Planning and simulation must reproduce bit-identically from a "
        "seed; process-global RNG state breaks replay and the serving "
        "parity tests."
    )
    scope = DETERMINISTIC_PATHS

    def check(self, source: SourceFile) -> Iterator[Finding]:
        assert source.tree is not None
        imports = ImportMap(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = imports.resolve(node.func)
            if resolved is None:
                continue
            if resolved == "numpy.random.default_rng":
                if self._unseeded(node):
                    yield self.finding(
                        source,
                        node.lineno,
                        node.col_offset,
                        "np.random.default_rng() without a seed; pass an "
                        "explicit seed (or a seeded Generator) instead",
                    )
            elif resolved in _NP_GLOBAL_RNG:
                yield self.finding(
                    source,
                    node.lineno,
                    node.col_offset,
                    f"legacy global generator `{resolved}()`; use a seeded "
                    "np.random.default_rng(seed) Generator",
                )
            elif resolved in _STDLIB_RANDOM:
                yield self.finding(
                    source,
                    node.lineno,
                    node.col_offset,
                    f"stdlib `{resolved}()` draws from process-global state; "
                    "use a seeded np.random.default_rng(seed)",
                )

    @staticmethod
    def _unseeded(call: ast.Call) -> bool:
        if call.args:
            first = call.args[0]
            return isinstance(first, ast.Constant) and first.value is None
        for keyword in call.keywords:
            if keyword.arg == "seed":
                return (
                    isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is None
                )
        return True


class UnorderedAccumulationRule(FileRule):
    """DET003: order-sensitive accumulation over unordered iterables."""

    id = "DET003"
    name = "order-sensitive accumulation over an unordered iterable"
    rationale = (
        "Set iteration order follows the per-process hash seed; float "
        "sums, appends, and joins over it differ across runs, which the "
        "offline/online parity guarantee cannot tolerate.  Sort first "
        "(`sorted(...)`) to pin the fold order."
    )
    scope = DETERMINISTIC_PATHS

    _MUTATORS = {"append", "extend", "add", "insert", "appendleft"}
    _REDUCERS = {"sum"}  # math.fsum is exactly rounded -> order-independent

    def check(self, source: SourceFile) -> Iterator[Finding]:
        assert source.tree is not None
        imports = ImportMap(source.tree)
        setish_names, unordered_dict_names = self._collect_bindings(
            source.tree, imports
        )
        tracker = _UnorderedTracker(imports, setish_names, unordered_dict_names)
        for node in ast.walk(source.tree):
            if isinstance(node, ast.For) and tracker.is_unordered(node.iter):
                if self._accumulates(node):
                    yield self.finding(
                        source,
                        node.lineno,
                        node.col_offset,
                        "for-loop over an unordered iterable accumulates "
                        "order-sensitively; iterate `sorted(...)` instead",
                    )
            elif isinstance(node, ast.Call):
                reduced = self._reduced_iterable(node, imports)
                if reduced is not None and tracker.is_unordered(reduced):
                    yield self.finding(
                        source,
                        node.lineno,
                        node.col_offset,
                        "order-sensitive reduction over an unordered "
                        "iterable; reduce over `sorted(...)` instead",
                    )

    # ------------------------------------------------------------------
    # What counts as accumulation
    # ------------------------------------------------------------------
    def _accumulates(self, loop: ast.For) -> bool:
        for node in ast.walk(loop):
            if isinstance(node, ast.AugAssign):
                return True
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._MUTATORS
            ):
                return True
        return False

    def _reduced_iterable(
        self, call: ast.Call, imports: ImportMap
    ) -> Optional[ast.AST]:
        """The iterable argument if ``call`` is an order-sensitive reduce."""
        resolved = imports.resolve(call.func)
        is_join = (
            isinstance(call.func, ast.Attribute) and call.func.attr == "join"
        )
        is_reduce = resolved == "functools.reduce"
        if resolved in self._REDUCERS or is_join:
            arg_index = 0
        elif is_reduce:
            arg_index = 1
        else:
            return None
        if len(call.args) <= arg_index:
            return None
        arg = call.args[arg_index]
        if isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
            return arg.generators[0].iter
        return arg

    # ------------------------------------------------------------------
    # What counts as unordered
    # ------------------------------------------------------------------
    def _collect_bindings(
        self, tree: ast.AST, imports: ImportMap
    ) -> Tuple[Set[str], Set[str]]:
        """Names bound (only) to set-ish / set-derived-dict expressions.

        Tracked flow-insensitively over the whole module: a name counts
        as unordered only if *every* assignment to it is unordered, so a
        later ``xs = sorted(xs)`` rebinding clears it.  Iterated to a
        fixpoint (:func:`repro.analysis.dataflow.fixpoint`) so taint
        chains through names (``live = set(ks)`` then
        ``table = {k: 0 for k in live}``).
        """
        assigns: List[Tuple[str, ast.AST]] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            name = self._bind_name(node.targets[0])
            if name is not None:
                assigns.append((name, node.value))

        def step(
            current: Tuple[frozenset, frozenset]
        ) -> Tuple[frozenset, frozenset]:
            setish, dictish = current
            probe = _UnorderedTracker(imports, set(setish), set(dictish))
            set_flags: Dict[str, bool] = {}
            dict_flags: Dict[str, bool] = {}
            for name, value in assigns:
                is_set = probe.is_setish(value)
                is_udict = probe.is_unordered_dict(value)
                set_flags[name] = set_flags.get(name, True) and is_set
                dict_flags[name] = dict_flags.get(name, True) and is_udict
            return (
                frozenset(n for n, flag in set_flags.items() if flag),
                frozenset(n for n, flag in dict_flags.items() if flag),
            )

        setish, dictish = fixpoint(step, (frozenset(), frozenset()))
        return set(setish), set(dictish)

    @staticmethod
    def _bind_name(target: ast.AST) -> Optional[str]:
        """``x`` or ``self.x`` targets; anything fancier is ignored."""
        if isinstance(target, ast.Name):
            return target.id
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            return f"self.{target.attr}"
        return None


class _UnorderedTracker:
    """Classifies expressions as set-ish / set-derived-dict / unordered."""

    _SET_CALLS = {"set", "frozenset"}
    _SET_METHODS = {
        "union", "intersection", "difference", "symmetric_difference", "copy",
    }

    def __init__(
        self,
        imports: ImportMap,
        setish_names: Set[str],
        unordered_dict_names: Set[str],
    ):
        self.imports = imports
        self.setish_names = setish_names
        self.unordered_dict_names = unordered_dict_names

    def _name_of(self, node: ast.AST) -> Optional[str]:
        dotted = dotted_name(node)
        if dotted is None:
            return None
        return dotted if dotted.count(".") <= 1 else None

    def is_setish(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name) or isinstance(node, ast.Attribute):
            name = self._name_of(node)
            return name in self.setish_names
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self.is_setish(node.left) or self.is_setish(node.right)
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name):
                return node.func.id in self._SET_CALLS
            if isinstance(node.func, ast.Attribute):
                return (
                    node.func.attr in self._SET_METHODS
                    and self.is_setish(node.func.value)
                )
        return False

    def is_unordered_dict(self, node: ast.AST) -> bool:
        """A dict whose insertion order came from iterating a set."""
        if isinstance(node, ast.DictComp):
            return self.is_setish(node.generators[0].iter)
        if isinstance(node, ast.Call):
            resolved = self.imports.resolve(node.func)
            if resolved == "dict.fromkeys" and node.args:
                return self.is_setish(node.args[0])
        if isinstance(node, (ast.Name, ast.Attribute)):
            return self._name_of(node) in self.unordered_dict_names
        return False

    def is_unordered(self, node: ast.AST) -> bool:
        """Whether iterating ``node`` yields a hash-seed-dependent order."""
        if self.is_setish(node):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in {"values", "keys", "items"} and not node.args:
                return self.is_unordered_dict(node.func.value)
        return self.is_unordered_dict(node)


DETERMINISM_RULES = (
    WallClockRule(),
    UnseededRandomRule(),
    UnorderedAccumulationRule(),
)
