"""Durability rule (DUR001) for the write-ahead log / checkpoint layer.

The crash-consistency argument of :mod:`repro.durability`
(``docs/resilience.md``, "Durability & recovery") rests on one write
protocol: durable state is **never** written in place.  A checkpoint or
log-index file is written to a temporary path, flushed and ``fsync``\\ ed,
then published with ``os.replace`` (and the directory fsynced) so a
crash at any instruction leaves either the old complete file or the new
complete file — never a torn half of each.  DUR001 enforces the protocol
mechanically: any function in the durability layer that opens a file for
a create/truncate write must also rename it into place and fsync it.

Append-mode opens are exempt — the WAL's active segment is *designed* to
have a torn tail (recovery truncates it) — as are read and in-place
(``r+``) opens.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from .astutil import ImportMap
from .findings import FileRule, Finding, PathScope
from .source import SourceFile

__all__ = ["AtomicPublishRule", "DURABILITY_PATHS", "DURABILITY_RULES"]

#: Paths that own crash-consistent on-disk state: the WAL, checkpoint
#: store, recovery manager, and the kill/resume harness.
DURABILITY_PATHS = PathScope(include=("durability/",), exclude=("analysis/",))

#: rename-into-place calls that publish a completed file atomically
_RENAME_ATTRS = {"replace", "rename"}


def _own_statements(func: ast.AST) -> Iterator[ast.AST]:
    """Walk ``func``'s body without descending into nested functions."""
    body = getattr(func, "body", [])
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _own_calls(func: ast.AST) -> Iterator[ast.Call]:
    for node in _own_statements(func):
        if isinstance(node, ast.Call):
            yield node


def _write_mode(call: ast.Call, imports: ImportMap) -> Optional[str]:
    """The mode string if ``call`` opens a file for create/truncate write.

    Matches the builtin ``open(path, "wb")`` and the ``Path.open("wb")``
    method form.  ``os.open`` takes integer flags, and append/read/in-place
    modes are not publications, so neither matches.
    """
    mode: Optional[ast.AST] = None
    if isinstance(call.func, ast.Name):
        if imports.resolve(call.func) != "open":
            return None
        if len(call.args) >= 2:
            mode = call.args[1]
    elif isinstance(call.func, ast.Attribute) and call.func.attr == "open":
        if call.args:
            mode = call.args[0]
    else:
        return None
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if not (isinstance(mode, ast.Constant) and isinstance(mode.value, str)):
        return None
    value = mode.value
    if ("w" in value or "x" in value) and "r" not in value:
        return value
    return None


class AtomicPublishRule(FileRule):
    """DUR001: durable file written without fsync-then-rename."""

    id = "DUR001"
    name = "durable file written without the fsync-then-rename protocol"
    rationale = (
        "A file opened with a truncating write mode is visible half-"
        "written: a crash mid-write leaves a torn file that recovery "
        "must then treat as corruption.  Durable state is written to a "
        "temporary path, flushed and fsync()ed, and published with "
        "os.replace() so every crash point leaves a complete file."
    )
    scope = DURABILITY_PATHS
    example = (
        'def save(path, blob):\n'
        '    with open(path, "wb") as fh:   # DUR001: written in place\n'
        '        fh.write(blob)\n'
        '    # ok: open(tmp, "wb") + fsync(fh.fileno()) + os.replace(tmp, path)\n'
    )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        assert source.tree is not None
        imports = ImportMap(source.tree)
        functions: List[ast.AST] = [source.tree]
        functions.extend(
            node
            for node in ast.walk(source.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        for func in functions:
            yield from self._check_function(source, imports, func)

    def _check_function(
        self, source: SourceFile, imports: ImportMap, func: ast.AST
    ) -> Iterator[Finding]:
        opens: List[Tuple[ast.Call, str]] = []
        renamed = fsynced = False
        for call in _own_calls(func):
            mode = _write_mode(call, imports)
            if mode is not None:
                opens.append((call, mode))
                continue
            resolved = imports.resolve(call.func)
            if resolved in ("os.replace", "os.rename") or (
                isinstance(call.func, ast.Attribute)
                and call.func.attr in _RENAME_ATTRS
            ):
                renamed = True
            elif resolved == "os.fsync" or (
                isinstance(call.func, ast.Attribute)
                and call.func.attr == "fsync"
            ):
                fsynced = True
        for call, mode in opens:
            if not renamed:
                yield self.finding(
                    source,
                    call.lineno,
                    call.col_offset,
                    f"file opened for write (mode {mode!r}) is published in "
                    "place; write to a temporary path, fsync, then "
                    "os.replace() it into the final name",
                )
            elif not fsynced:
                yield self.finding(
                    source,
                    call.lineno,
                    call.col_offset,
                    f"file opened for write (mode {mode!r}) is renamed into "
                    "place but never fsync()ed; the rename can become "
                    "durable before the data it publishes",
                )


DURABILITY_RULES = (AtomicPublishRule(),)
