"""Finding/severity model and the rule registry of the lint suite.

A *rule* encodes one repo invariant (see ``docs/static-analysis.md``); a
*finding* is one concrete violation, anchored to a file position.  Rules
come in two shapes:

* :class:`FileRule` — checked one file at a time on that file's AST
  (determinism and unit-consistency rules);
* :class:`ProjectRule` — checked once over every in-scope file together
  (the thread-safety rule, which needs the cross-file call graph from
  the serving thread targets to the mutation sites).

Every rule carries a :class:`PathScope` restricting it to the paths whose
invariant it encodes — determinism rules only apply to planning /
simulation / serving code, unit rules to the accelerator cost models,
thread rules to the serving layer.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .source import SourceFile

__all__ = [
    "Severity",
    "Finding",
    "PathScope",
    "Rule",
    "FileRule",
    "ProjectRule",
    "RuleRegistry",
]


class Severity(enum.IntEnum):
    """How bad a finding is; ordering is meaningful (``ERROR`` > ``WARNING``)."""

    ADVICE = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source position."""

    rule: str
    message: str
    path: str
    line: int
    col: int = 0
    severity: Severity = Severity.ERROR

    def sort_key(self) -> Tuple[str, int, int, str]:
        """Stable report order: path, then position, then rule id."""
        return (self.path, self.line, self.col, self.rule)

    def as_dict(self) -> Dict[str, object]:
        """JSON-reporter representation (schema in docs/static-analysis.md)."""
        return {
            "rule": self.rule,
            "severity": str(self.severity),
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def format(self) -> str:
        """``path:line:col: RULE [severity] message`` (the text reporter line)."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity}] {self.message}"
        )


@dataclass(frozen=True)
class PathScope:
    """Which files a rule applies to.

    ``include`` patterns are matched against whole path *segments* of the
    file's POSIX path: ``"accel/"`` matches any file below a directory
    named exactly ``accel`` (but not ``accelerators/`` or a file named
    ``accel_utils.py``), ``"ditile.py"`` matches that name anywhere, and
    ``"serving/stats.py"`` matches that consecutive segment pair.
    ``exclude`` wins over ``include``.  An empty ``include`` means
    "everything".
    """

    include: Tuple[str, ...] = ()
    exclude: Tuple[str, ...] = ()

    @staticmethod
    def _matches(path: str, pattern: str) -> bool:
        parts = [p for p in path.split("/") if p]
        pattern_parts = [p for p in pattern.split("/") if p]
        if not pattern_parts:
            return False
        # A trailing slash means the pattern names directories only, so
        # the path's final segment (the file name) cannot participate.
        candidates = parts[:-1] if pattern.endswith("/") else parts
        width = len(pattern_parts)
        return any(
            candidates[i : i + width] == pattern_parts
            for i in range(len(candidates) - width + 1)
        )

    def contains(self, posix_path: str) -> bool:
        """Whether a file at ``posix_path`` is in scope for the rule."""
        if any(self._matches(posix_path, pat) for pat in self.exclude):
            return False
        if not self.include:
            return True
        return any(self._matches(posix_path, pat) for pat in self.include)


#: Paths whose results must be reproducible: the planning, simulation and
#: serving pipeline the offline/online parity guarantee covers.  The
#: serving stats module is the one place wall-clock reads are allowed by
#: design, and the lint suite itself is tooling, not a modeled path.
DETERMINISTIC_PATHS = PathScope(
    include=(
        "core/",
        "accel/",
        "serving/",
        "dist/",
        "durability/",
        "resilience/",
        "graphs/",
        "baselines/",
        "models/",
        "bench/",
        "obs/",
        "ditile.py",
        "caching.py",
    ),
    exclude=("serving/stats.py", "analysis/"),
)

#: Paths that carry physical units in identifier suffixes (the Horowitz
#: energy model, cycle/byte accounting).
UNIT_PATHS = PathScope(include=("accel/", "core/"), exclude=("analysis/",))

#: Paths that run under more than one thread (ingest thread + dispatch
#: loop + worker pool) or across processes (shard workers + coordinator).
#: ``obs/distributed.py`` is listed by file: it carries the shard-trace
#: payloads across the process boundary, while the rest of ``obs/`` is
#: single-threaded within each process.  ``durability/`` is in scope
#: because the WAL/checkpoint commit barrier runs on the pipeline's
#: collector thread while the ingest thread appends records.
THREADED_PATHS = PathScope(
    include=("serving/", "dist/", "durability/", "obs/distributed.py"),
    exclude=("analysis/",),
)


class Rule(ABC):
    """Base class: one identifiable, documented invariant check."""

    #: stable identifier used in reports and noqa suppressions
    id: str = ""
    #: one-line human name (the ``--list-rules`` output)
    name: str = ""
    #: why the invariant matters (surfaces in docs and ``--list-rules -v``)
    rationale: str = ""
    #: short illustrative snippet (the ``--explain RULE`` output)
    example: str = ""
    severity: Severity = Severity.ERROR
    scope: PathScope = PathScope()

    def applies_to(self, posix_path: str) -> bool:
        """Whether this rule is checked for the file at ``posix_path``."""
        return self.scope.contains(posix_path)

    def finding(
        self, source: "SourceFile", line: int, col: int, message: str
    ) -> Finding:
        """A finding of this rule at ``line:col`` of ``source``."""
        return Finding(
            rule=self.id,
            message=message,
            path=source.display_path,
            line=line,
            col=col,
            severity=self.severity,
        )


class FileRule(Rule):
    """A rule checked independently per file."""

    @abstractmethod
    def check(self, source: "SourceFile") -> Iterator[Finding]:
        """Yield findings for one parsed source file."""


class ProjectRule(Rule):
    """A rule checked once across all in-scope files."""

    @abstractmethod
    def check_project(self, sources: Sequence["SourceFile"]) -> Iterator[Finding]:
        """Yield findings for the whole in-scope file set."""


@dataclass
class RuleRegistry:
    """The rule set one lint run executes."""

    rules: List[Rule] = field(default_factory=list)

    def register(self, rule: Rule) -> Rule:
        if not rule.id:
            raise ValueError(f"rule {rule!r} has no id")
        if rule.id in self.ids():
            raise ValueError(f"duplicate rule id {rule.id}")
        self.rules.append(rule)
        return rule

    def ids(self) -> List[str]:
        return [rule.id for rule in self.rules]

    def get(self, rule_id: str) -> Rule:
        for rule in self.rules:
            if rule.id == rule_id:
                return rule
        raise KeyError(rule_id)

    def select(self, ids: Sequence[str]) -> "RuleRegistry":
        """A sub-registry of just ``ids`` (raises ``KeyError`` on unknown)."""
        return RuleRegistry([self.get(rule_id) for rule_id in ids])

    def file_rules(self) -> List[FileRule]:
        return [r for r in self.rules if isinstance(r, FileRule)]

    def project_rules(self) -> List[ProjectRule]:
        return [r for r in self.rules if isinstance(r, ProjectRule)]


def default_registry() -> RuleRegistry:
    """All built-in rules (imported lazily to avoid module cycles)."""
    from .determinism import DETERMINISM_RULES
    from .durable import DURABILITY_RULES
    from .processes import PROCESS_RULES
    from .threads import THREAD_RULES
    from .units import UNIT_RULES

    registry = RuleRegistry()
    for rule in (
        *DETERMINISM_RULES,
        *UNIT_RULES,
        *THREAD_RULES,
        *PROCESS_RULES,
        *DURABILITY_RULES,
    ):
        registry.register(rule)
    return registry
