"""Process-safety rules (MP001-MP005) for the distributed layer.

The ``repro.dist`` layer (``docs/distributed.md``) rests on four
inter-process invariants that a single-statement linter cannot see:

* **fork-before-threads ordering** — ``fork()`` in a process that already
  runs threads clones held locks and half-initialized state into the
  child (MP001);
* **exactly-once shared-memory cleanup** — a created segment must be
  closed on every exceptional path and either unlinked or handed off on
  every normal path (MP002);
* **bounded, timeout-guarded queue traffic** — an unbounded queue or a
  bare blocking ``get()`` turns a dead worker into a hung coordinator
  (MP003);
* **a picklable, ordering-safe, generation-tagged message protocol** —
  open handles and locks do not cross a spawn boundary, set iteration
  order is per-process, and untagged messages defeat the stale-delivery
  filter after a worker restart (MP004, MP005).

These rules run on the shared analysis engine: MP001 and MP002 solve
dataflow problems over per-function CFGs (:mod:`repro.analysis.cfg`,
:mod:`repro.analysis.dataflow`) — MP001 additionally consults the
project-wide call graph (:mod:`repro.analysis.callgraph`) to know which
calls may transitively fork — while MP003 and MP004 walk the same CFGs
statement-by-statement so each expression is inspected exactly once.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .astutil import terminal_name, walk_functions
from .callgraph import CallGraph
from .cfg import (
    AMBIGUOUS,
    CFG,
    CFGNode,
    RETURN_VALUE,
    build_cfg,
)
from .dataflow import State, solve_forward
from .findings import (
    FileRule,
    Finding,
    PathScope,
    ProjectRule,
    THREADED_PATHS,
)
from .source import SourceFile

__all__ = [
    "ForkAfterThreadsRule",
    "ShmemLifecycleRule",
    "QueueDisciplineRule",
    "MessagePicklabilityRule",
    "GenerationTagRule",
    "PROCESS_RULES",
]

#: Paths that cross process boundaries: the shard workers, coordinator,
#: shared-memory plumbing, the shard-trace payloads the workers flush
#: back over the result queues, and the durability layer (whose recovery
#: harness forks victim processes and whose WAL/checkpoint directories
#: are handed across coordinator restarts).
PROCESS_PATHS = PathScope(
    include=("dist/", "durability/", "obs/distributed.py"),
    exclude=("analysis/",),
)

#: Constructors that start (or wrap machinery that starts) threads.
_THREAD_FACTORIES = {"Thread", "ThreadPoolExecutor", "WindowExecutor", "Timer"}

#: Calls that create a child process (``multiprocessing`` contexts all
#: route through a ``Process`` constructor; ``os.fork`` is the raw form).
_FORK_CALLS = {"Process", "fork", "forkpty"}

#: Lock/synchronization constructors that must not cross a pickle boundary.
_SYNC_FACTORIES = {
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
    "Event", "Barrier",
}


def _calls_at(node: CFGNode) -> List[ast.Call]:
    """Every call expression evaluated *at* this CFG node."""
    calls: List[ast.Call] = []
    for expr in CFG.evaluated_exprs(node):
        calls.extend(c for c in ast.walk(expr) if isinstance(c, ast.Call))
    return calls


def _function_cfgs(
    tree: ast.AST,
) -> Iterator[Tuple[Optional[str], ast.AST, CFG]]:
    """``(name, function node, CFG)`` for the module and every function."""
    for func in walk_functions(tree):
        name = getattr(func, "name", None)
        yield name, func, build_cfg(func)  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# MP001 — fork after threads
# ----------------------------------------------------------------------
class ForkAfterThreadsRule(ProjectRule):
    """MP001: a fork-capable call reachable after thread creation."""

    id = "MP001"
    name = "process fork reachable after thread/executor creation"
    rationale = (
        "fork() clones only the calling thread: locks held by other "
        "threads stay locked forever in the child, and pool state is "
        "copied mid-mutation.  Workers must be forked before any thread "
        "or executor exists, or the fork must be justified (e.g. a "
        "spawn-context restart that shares no locked state)."
    )
    scope = THREADED_PATHS
    example = (
        "def serve(self):\n"
        "    pool = ThreadPoolExecutor(4)   # threads exist from here on\n"
        "    ...\n"
        "    self._restart_worker()         # MP001: may call Process()\n"
    )

    def check_project(self, sources: Sequence[SourceFile]) -> Iterator[Finding]:
        graph = CallGraph.build(sources)
        forky = _FORK_CALLS | graph.reaches_call(set(_FORK_CALLS))
        for source in sources:
            if source.tree is None:
                continue
            yield from self._check_file(source, forky)

    def _check_file(
        self, source: SourceFile, forky: Set[str]
    ) -> Iterator[Finding]:
        assert source.tree is not None
        for func_name, _func, cfg in _function_cfgs(source.tree):
            if func_name is None:  # module level: no thread state machine
                continue

            def transfer(node: CFGNode, state: State) -> State:
                for call in _calls_at(node):
                    if terminal_name(call.func) in _THREAD_FACTORIES:
                        state["threads"] = True
                return state

            state_in, _ = solve_forward(
                cfg, transfer, {}, lambda a, b: bool(a) or bool(b)
            )
            for node in cfg.statement_nodes():
                if not state_in.get(node.index, {}).get("threads"):
                    continue
                for call in _calls_at(node):
                    callee = terminal_name(call.func)
                    if callee in forky:
                        yield self.finding(
                            source,
                            call.lineno,
                            call.col_offset,
                            f"`{callee}()` may fork a process, but "
                            f"`{func_name}` has already started threads "
                            "on this path; fork workers before creating "
                            "threads or executors",
                        )


# ----------------------------------------------------------------------
# MP002 — shared-memory segment lifecycle
# ----------------------------------------------------------------------
#: resource lattice, joined towards *least* progress so a leak on any
#: path survives the merge
_SHM_ORDER = {"created": 0, "closed": 1, "unlinked": 2, "escaped": 3}


def _shm_join(a: object, b: object) -> object:
    return a if _SHM_ORDER.get(str(a), 0) <= _SHM_ORDER.get(str(b), 0) else b


def _is_shm_create(call: ast.Call) -> bool:
    if terminal_name(call.func) != "SharedMemory":
        return False
    for keyword in call.keywords:
        if keyword.arg == "create":
            value = keyword.value
            return isinstance(value, ast.Constant) and value.value is True
    return False


class ShmemLifecycleRule(FileRule):
    """MP002: segment created without guaranteed close/unlink."""

    id = "MP002"
    name = "shared-memory segment without guaranteed cleanup"
    rationale = (
        "A SharedMemory segment created with create=True outlives the "
        "process: it must be close()d on every exceptional path (put the "
        "close in a finally/with) and, on normal paths, either unlink()ed "
        "or handed off to the consumer (returned as part of a spec).  "
        "Anything less leaks kernel objects on worker crashes — silently, "
        "run after run."
    )
    scope = PROCESS_PATHS
    example = (
        "def write(name, data):\n"
        "    shm = SharedMemory(create=True, size=len(data), name=name)\n"
        "    shm.buf[: len(data)] = data   # may raise -> segment leaks\n"
        "    shm.close()                   # MP002: not in a finally\n"
    )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        assert source.tree is not None
        for _name, func, cfg in _function_cfgs(source.tree):
            creations = self._creation_sites(func, cfg)
            if not creations:
                continue
            yield from self._check_function(source, cfg, creations)

    @staticmethod
    def _creation_sites(
        func: ast.AST, cfg: CFG
    ) -> Dict[str, Tuple[int, int]]:
        """``var -> (line, col)`` of ``var = SharedMemory(create=True)``."""
        sites: Dict[str, Tuple[int, int]] = {}
        for node in cfg.statement_nodes():
            stmt = node.stmt
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Call)
                and _is_shm_create(stmt.value)
            ):
                sites[stmt.targets[0].id] = (stmt.lineno, stmt.col_offset)
        return sites

    def _check_function(
        self,
        source: SourceFile,
        cfg: CFG,
        creations: Dict[str, Tuple[int, int]],
    ) -> Iterator[Finding]:
        tracked = set(creations)

        def transfer(node: CFGNode, state: State) -> State:
            stmt = node.stmt
            if node.kind == "stmt" and isinstance(stmt, ast.Assign):
                target = stmt.targets[0] if len(stmt.targets) == 1 else None
                if isinstance(target, ast.Name) and target.id in tracked:
                    if isinstance(stmt.value, ast.Call) and _is_shm_create(
                        stmt.value
                    ):
                        state[target.id] = "created"
                    else:  # rebound to something else: obligation dropped
                        state.pop(target.id, None)
                    return state
            for call in _calls_at(node):
                # var.close() / var.unlink() progress the lifecycle ...
                func = call.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id in state
                    and func.attr in ("close", "unlink")
                ):
                    var = func.value.id
                    if func.attr == "close" and state[var] == "created":
                        state[var] = "closed"
                    elif func.attr == "unlink":
                        state[var] = "unlinked"
                    continue
                # ... and passing the handle itself to another callable
                # hands ownership off (attribute reads like shm.name or
                # shm.buf do not -- they pass derived values, not the
                # handle).
                for arg in list(call.args) + [kw.value for kw in call.keywords]:
                    if isinstance(arg, ast.Name) and arg.id in state:
                        state[arg.id] = "escaped"
            return state

        state_in, state_out = solve_forward(cfg, transfer, {}, _shm_join)

        reported: Set[Tuple[str, str]] = set()

        def report(var: str, key: str, message: str) -> Iterator[Finding]:
            if (var, key) in reported:
                return
            reported.add((var, key))
            line, col = creations[var]
            yield self.finding(source, line, col, message)

        # Normal exits: a value-bearing return may hand the segment off;
        # any other exit must have unlinked it.
        for pred in sorted(cfg.pred[cfg.exit]):
            kind = cfg.exit_kinds.get(pred, AMBIGUOUS)
            if kind in (RETURN_VALUE, AMBIGUOUS):
                continue
            out = state_out.get(pred, {})
            for var in creations:
                if out.get(var) in ("created", "closed"):
                    yield from report(
                        var,
                        "leak",
                        f"segment `{var}` is neither unlink()ed nor handed "
                        "off (returned) on a normal exit path; the kernel "
                        "object leaks",
                    )

        # Exceptional exit: close() must have been guaranteed (finally /
        # with) before the exception leaves the function.
        raise_state = state_in.get(cfg.raise_exit, {})
        for var in creations:
            if raise_state.get(var) == "created":
                yield from report(
                    var,
                    "exc",
                    f"segment `{var}` is not close()d on an exceptional "
                    "path; wrap the post-create work in try/finally with "
                    "`close()` in the finally block",
                )


# ----------------------------------------------------------------------
# MP003 — queue discipline
# ----------------------------------------------------------------------
class QueueDisciplineRule(FileRule):
    """MP003: unbounded queues / blocking gets without timeout."""

    id = "MP003"
    name = "unbounded queue or blocking get() without timeout"
    rationale = (
        "Coordinator paths must bound every queue (an unbounded queue "
        "turns a slow consumer into unbounded memory growth) and put a "
        "timeout on every blocking get() (a crashed worker otherwise "
        "hangs the coordinator forever instead of tripping the "
        "heartbeat/restart path)."
    )
    scope = PROCESS_PATHS
    example = (
        "q = ctx.Queue()          # MP003: no maxsize -> unbounded\n"
        "msg = q.get()            # MP003: no timeout -> hangs on crash\n"
        "msg = q.get(timeout=hb)  # ok\n"
    )

    _QUEUE_FACTORIES = {"Queue", "JoinableQueue"}

    def check(self, source: SourceFile) -> Iterator[Finding]:
        assert source.tree is not None
        for _name, _func, cfg in _function_cfgs(source.tree):
            for node in cfg.statement_nodes():
                for call in _calls_at(node):
                    yield from self._check_call(source, call)

    def _check_call(
        self, source: SourceFile, call: ast.Call
    ) -> Iterator[Finding]:
        callee = terminal_name(call.func)
        if callee in self._QUEUE_FACTORIES:
            if not self._bounded(call):
                yield self.finding(
                    source,
                    call.lineno,
                    call.col_offset,
                    f"`{callee}()` without a positive maxsize is unbounded; "
                    "pass a capacity (backpressure is the only thing that "
                    "keeps a slow coordinator from buffering every window)",
                )
        elif callee == "SimpleQueue":
            yield self.finding(
                source,
                call.lineno,
                call.col_offset,
                "`SimpleQueue()` cannot be bounded; use `Queue(maxsize=...)`",
            )
        elif (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "get"
            and not call.args
            and not self._has_timeout(call)
        ):
            yield self.finding(
                source,
                call.lineno,
                call.col_offset,
                "blocking `get()` without a timeout hangs forever if the "
                "producer died; pass `timeout=` (or use `get_nowait()`)",
            )

    @staticmethod
    def _bounded(call: ast.Call) -> bool:
        size: Optional[ast.AST] = call.args[0] if call.args else None
        for keyword in call.keywords:
            if keyword.arg == "maxsize":
                size = keyword.value
        if size is None:
            return False
        if isinstance(size, ast.Constant):
            return isinstance(size.value, int) and size.value > 0
        return True  # non-constant capacity: assume configured

    @staticmethod
    def _has_timeout(call: ast.Call) -> bool:
        for keyword in call.keywords:
            if keyword.arg == "timeout":
                return True
            if keyword.arg == "block" and (
                isinstance(keyword.value, ast.Constant)
                and keyword.value.value is False
            ):
                return True  # non-blocking get never hangs
        return False


# ----------------------------------------------------------------------
# MP004 — message picklability / ordering safety
# ----------------------------------------------------------------------
def _unsafe_kind(expr: ast.AST) -> Optional[str]:
    """Why ``expr`` must not cross a process boundary, if it must not."""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return "set (iteration order is per-process)"
    if isinstance(expr, ast.Call):
        callee = terminal_name(expr.func)
        if callee in ("set", "frozenset"):
            return "set (iteration order is per-process)"
        if callee == "open":
            return "open file handle (not picklable)"
        if callee in _SYNC_FACTORIES:
            return f"{callee} (synchronization primitives do not pickle)"
    return None


class MessagePicklabilityRule(FileRule):
    """MP004: unsafe values flowing into worker-bound messages."""

    id = "MP004"
    name = "unpicklable or ordering-unsafe value in a cross-process message"
    rationale = (
        "Queue payloads are pickled at the boundary: open handles and "
        "locks fail (or worse, half-work under fork), and a set's "
        "iteration order differs per process, so any consumer that "
        "iterates it breaks the determinism guarantee.  Convert to "
        "sorted tuples/arrays before enqueueing."
    )
    scope = PROCESS_PATHS
    example = (
        "pending = {3, 1, 2}\n"
        "queue.put(pending)            # MP004: set crosses the boundary\n"
        "queue.put(sorted(pending))    # ok: ordered and picklable\n"
    )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        assert source.tree is not None
        for _name, _func, cfg in _function_cfgs(source.tree):
            yield from self._check_function(source, cfg)

    def _check_function(
        self, source: SourceFile, cfg: CFG
    ) -> Iterator[Finding]:
        def transfer(node: CFGNode, state: State) -> State:
            stmt = node.stmt
            if node.kind == "stmt" and isinstance(stmt, ast.Assign):
                if len(stmt.targets) == 1 and isinstance(
                    stmt.targets[0], ast.Name
                ):
                    kind = _unsafe_kind(stmt.value)
                    if kind is not None:
                        state[stmt.targets[0].id] = kind
                    else:
                        state.pop(stmt.targets[0].id, None)
            return state

        state_in, _ = solve_forward(
            cfg, transfer, {}, lambda a, b: a if str(a) <= str(b) else b
        )

        for node in cfg.statement_nodes():
            state = state_in.get(node.index, {})
            for call in _calls_at(node):
                if not self._is_message_bound(call):
                    continue
                args = list(call.args) + [kw.value for kw in call.keywords]
                for arg in args:
                    kind = _unsafe_kind(arg)
                    if kind is None and isinstance(arg, ast.Name):
                        kind_obj = state.get(arg.id)
                        kind = str(kind_obj) if kind_obj is not None else None
                    if kind is not None:
                        yield self.finding(
                            source,
                            arg.lineno,
                            arg.col_offset,
                            f"{kind} flows into a worker-bound message; "
                            "convert to an ordered, picklable form first",
                        )

    @staticmethod
    def _is_message_bound(call: ast.Call) -> bool:
        """``queue.put(...)`` or a ``*Message(...)`` construction."""
        if isinstance(call.func, ast.Attribute) and call.func.attr in (
            "put",
            "put_nowait",
        ):
            return True
        callee = terminal_name(call.func)
        return callee is not None and callee.endswith("Message")


# ----------------------------------------------------------------------
# MP005 — generation tags
# ----------------------------------------------------------------------
class GenerationTagRule(FileRule):
    """MP005: message class without a generation field."""

    id = "MP005"
    name = "cross-process message class lacks a generation tag"
    rationale = (
        "After a worker restart, messages from the previous incarnation "
        "may still sit in the queue; the coordinator drops them by "
        "comparing a per-worker generation counter.  A message class "
        "without a `generation` field silently defeats that filter and "
        "double-counts windows."
    )
    scope = PROCESS_PATHS
    example = (
        "@dataclass(frozen=True)\n"
        "class ShardDoneMessage:   # MP005: no `generation` field\n"
        "    shard: int\n"
    )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        assert source.tree is not None
        classes = {
            node.name: node
            for node in ast.walk(source.tree)
            if isinstance(node, ast.ClassDef)
        }
        for name, node in sorted(classes.items()):
            if not name.endswith("Message"):
                continue
            if "generation" not in self._fields(node, classes):
                yield self.finding(
                    source,
                    node.lineno,
                    node.col_offset,
                    f"message class `{name}` has no `generation` field; "
                    "the coordinator cannot drop stale deliveries from a "
                    "restarted worker without one",
                )

    def _fields(
        self,
        node: ast.ClassDef,
        classes: Dict[str, ast.ClassDef],
        seen: Optional[Set[str]] = None,
    ) -> Set[str]:
        """Declared field names, including same-module base classes."""
        seen = set() if seen is None else seen
        if node.name in seen:
            return set()
        seen.add(node.name)
        fields: Set[str] = set()
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                fields.add(stmt.target.id)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        fields.add(target.id)
        for base in node.bases:
            base_name = terminal_name(base)
            if base_name in classes:
                fields |= self._fields(classes[base_name], classes, seen)
        return fields


PROCESS_RULES = (
    ForkAfterThreadsRule(),
    ShmemLifecycleRule(),
    QueueDisciplineRule(),
    MessagePicklabilityRule(),
    GenerationTagRule(),
)
