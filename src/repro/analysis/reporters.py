"""Text and JSON reporters for lint results.

The JSON schema (stable, versioned — consumed by CI tooling and the
reporter tests)::

    {
      "version": 1,
      "files_checked": 12,
      "findings": [
        {"rule": "UNIT001", "severity": "error", "path": "...",
         "line": 10, "col": 4, "message": "..."},
        ...
      ],
      "summary": {"total": 2, "by_rule": {"UNIT001": 2},
                  "by_severity": {"error": 2}}
    }
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from .findings import Finding

__all__ = ["JSON_SCHEMA_VERSION", "render_text", "render_json"]

JSON_SCHEMA_VERSION = 1


def render_text(findings: Sequence[Finding], files_checked: int) -> str:
    """One line per finding plus a one-line summary (the CLI default)."""
    lines: List[str] = [finding.format() for finding in findings]
    if findings:
        by_rule: Dict[str, int] = {}
        for finding in findings:
            by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
        breakdown = ", ".join(
            f"{rule} x{count}" for rule, count in sorted(by_rule.items())
        )
        lines.append(
            f"{len(findings)} finding{'s' if len(findings) != 1 else ''} "
            f"in {files_checked} file{'s' if files_checked != 1 else ''} "
            f"({breakdown})"
        )
    else:
        lines.append(f"clean: {files_checked} files, 0 findings")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], files_checked: int) -> str:
    """The machine-readable report (schema above)."""
    by_rule: Dict[str, int] = {}
    by_severity: Dict[str, int] = {}
    for finding in findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
        key = str(finding.severity)
        by_severity[key] = by_severity.get(key, 0) + 1
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "files_checked": files_checked,
        "findings": [finding.as_dict() for finding in findings],
        "summary": {
            "total": len(findings),
            "by_rule": dict(sorted(by_rule.items())),
            "by_severity": dict(sorted(by_severity.items())),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=False)
