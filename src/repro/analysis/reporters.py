"""Text and JSON reporters for lint results.

The JSON schema (stable, versioned — consumed by CI tooling and the
reporter tests)::

    {
      "version": 1,
      "files_checked": 12,
      "findings": [
        {"rule": "UNIT001", "severity": "error", "path": "...",
         "line": 10, "col": 4, "message": "..."},
        ...
      ],
      "summary": {"total": 2, "by_rule": {"UNIT001": 2},
                  "by_severity": {"error": 2}}
    }
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from .findings import Finding, Rule, Severity

__all__ = [
    "JSON_SCHEMA_VERSION",
    "SARIF_VERSION",
    "render_text",
    "render_json",
    "render_sarif",
]

JSON_SCHEMA_VERSION = 1
SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

#: SARIF ``level`` per severity (SARIF has no distinct "advice")
_SARIF_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.ADVICE: "note",
}


def render_text(findings: Sequence[Finding], files_checked: int) -> str:
    """One line per finding plus a one-line summary (the CLI default)."""
    lines: List[str] = [finding.format() for finding in findings]
    if findings:
        by_rule: Dict[str, int] = {}
        for finding in findings:
            by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
        breakdown = ", ".join(
            f"{rule} x{count}" for rule, count in sorted(by_rule.items())
        )
        lines.append(
            f"{len(findings)} finding{'s' if len(findings) != 1 else ''} "
            f"in {files_checked} file{'s' if files_checked != 1 else ''} "
            f"({breakdown})"
        )
    else:
        lines.append(f"clean: {files_checked} files, 0 findings")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], files_checked: int) -> str:
    """The machine-readable report (schema above)."""
    by_rule: Dict[str, int] = {}
    by_severity: Dict[str, int] = {}
    for finding in findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
        key = str(finding.severity)
        by_severity[key] = by_severity.get(key, 0) + 1
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "files_checked": files_checked,
        "findings": [finding.as_dict() for finding in findings],
        "summary": {
            "total": len(findings),
            "by_rule": dict(sorted(by_rule.items())),
            "by_severity": dict(sorted(by_severity.items())),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def render_sarif(
    findings: Sequence[Finding],
    files_checked: int,
    rules: Optional[Sequence[Rule]] = None,
) -> str:
    """A SARIF 2.1.0 report (what CI uploads so findings render inline).

    ``rules`` seeds the tool's rule metadata; rule ids that only appear
    in findings (parse errors, noqa hygiene) get minimal entries so every
    result's ``ruleIndex`` resolves.
    """
    rule_entries: List[Dict[str, object]] = []
    rule_index: Dict[str, int] = {}
    for rule in rules or ():
        rule_index[rule.id] = len(rule_entries)
        rule_entries.append(
            {
                "id": rule.id,
                "name": rule.name,
                "shortDescription": {"text": rule.name},
                "fullDescription": {"text": rule.rationale},
                "defaultConfiguration": {
                    "level": _SARIF_LEVELS[rule.severity]
                },
            }
        )
    for finding in findings:
        if finding.rule not in rule_index:
            rule_index[finding.rule] = len(rule_entries)
            rule_entries.append(
                {
                    "id": finding.rule,
                    "shortDescription": {"text": finding.rule},
                    "defaultConfiguration": {
                        "level": _SARIF_LEVELS[finding.severity]
                    },
                }
            )

    results = [
        {
            "ruleId": finding.rule,
            "ruleIndex": rule_index[finding.rule],
            "level": _SARIF_LEVELS[finding.severity],
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {
                            "startLine": max(finding.line, 1),
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        for finding in findings
    ]
    payload = {
        "$schema": _SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "docs/static-analysis.md",
                        "rules": rule_entries,
                    }
                },
                "properties": {"filesChecked": files_checked},
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=False)
