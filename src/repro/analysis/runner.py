"""Lint orchestration: file discovery, rule execution, suppression filtering.

Exit-code contract (asserted by the CLI tests):

* ``0`` — every checked file is clean (or explicitly suppressed);
* ``1`` — at least one finding survived suppression filtering;
* ``2`` — usage error (unknown path, unknown rule id, bad arguments).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set

from .findings import Finding, RuleRegistry, default_registry
from .source import SourceFile, iter_python_files

__all__ = ["EXIT_CLEAN", "EXIT_FINDINGS", "EXIT_USAGE", "UsageError",
           "LintReport", "LintRunner", "run_lint"]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


class UsageError(ValueError):
    """Bad invocation (maps to exit code 2)."""


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def exit_code(self) -> int:
        return EXIT_FINDINGS if self.findings else EXIT_CLEAN

    def rules_fired(self) -> Set[str]:
        return {finding.rule for finding in self.findings}


class LintRunner:
    """Runs a rule registry over a set of files/directories."""

    def __init__(
        self,
        registry: Optional[RuleRegistry] = None,
        select: Optional[Sequence[str]] = None,
        report_unused_suppressions: bool = True,
    ):
        registry = registry if registry is not None else default_registry()
        if select:
            try:
                registry = registry.select([s.upper() for s in select])
            except KeyError as exc:
                known = ", ".join(default_registry().ids())
                raise UsageError(
                    f"unknown rule id {exc.args[0]!r} (known: {known})"
                ) from exc
        self.registry = registry
        self.report_unused_suppressions = report_unused_suppressions

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, paths: Sequence[Path]) -> LintReport:
        """Lint ``paths`` (files or directories) and return the report."""
        if not paths:
            raise UsageError("no paths given")
        for path in paths:
            if not path.exists():
                raise UsageError(f"no such file or directory: {path}")
        sources = [
            SourceFile.load(candidate, display_path=self._display(candidate))
            for candidate in iter_python_files(list(paths))
        ]
        return self.run_sources(sources)

    def run_sources(self, sources: Sequence[SourceFile]) -> LintReport:
        """Lint already-loaded sources (the in-memory/fixture entry point)."""
        raw: List[Finding] = []
        for source in sources:
            raw.extend(source.load_findings)
            if source.tree is None:
                continue
            scope_path = self._scope_path(source)
            for rule in self.registry.file_rules():
                if rule.applies_to(scope_path):
                    raw.extend(rule.check(source))
        for rule in self.registry.project_rules():
            in_scope = [
                s
                for s in sources
                if s.tree is not None and rule.applies_to(self._scope_path(s))
            ]
            if in_scope:
                raw.extend(rule.check_project(in_scope))

        by_source: Dict[str, SourceFile] = {s.display_path: s for s in sources}
        kept: List[Finding] = []
        fired_by_file: Dict[str, Dict[int, set]] = {
            s.display_path: {} for s in sources
        }
        for finding in raw:
            lines = fired_by_file.setdefault(finding.path, {})
            lines.setdefault(finding.line, set()).add(finding.rule)
            source = by_source.get(finding.path)
            if source is not None and source.suppresses(finding):
                continue
            kept.append(finding)
        if self.report_unused_suppressions:
            for source in sources:
                kept.extend(
                    source.unused_suppressions(
                        fired_by_file.get(source.display_path, {})
                    )
                )
        kept.sort(key=Finding.sort_key)
        return LintReport(findings=kept, files_checked=len(sources))

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    @staticmethod
    def _display(path: Path) -> str:
        try:
            return path.resolve().relative_to(Path.cwd()).as_posix()
        except ValueError:
            return path.as_posix()

    @staticmethod
    def _scope_path(source: SourceFile) -> str:
        """The path rules match their :class:`PathScope` against."""
        try:
            return source.path.resolve().as_posix()
        except OSError:  # pragma: no cover - synthetic sources
            return source.display_path


def run_lint(
    paths: Sequence[Path],
    select: Optional[Sequence[str]] = None,
) -> LintReport:
    """One-call convenience wrapper used by tests and the CLI."""
    return LintRunner(select=select).run(paths)
