"""Source loading, AST parsing, and ``# repro: noqa[RULE]`` suppressions.

Suppression syntax (one per line, suppresses findings on that line only)::

    value = other_pj  # repro: noqa[UNIT002] raw pJ kept for the report table

The bracket lists one or more rule ids (comma-separated); everything after
the bracket is the mandatory one-line justification.  A suppression
without a justification, or a bare ``# repro: noqa`` that names no rules,
is itself a finding (``NOQA001`` / ``NOQA002``) — the suite forces every
suppression in the tree to say *why*.  A suppression whose rules never
fire on its line is reported as unused (``NOQA003``).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence

from .findings import Finding, Severity

__all__ = [
    "NOQA_NO_JUSTIFICATION",
    "NOQA_BARE",
    "NOQA_UNUSED",
    "PARSE_ERROR",
    "Suppression",
    "SourceFile",
    "iter_python_files",
]

#: suppression carries no justification text
NOQA_NO_JUSTIFICATION = "NOQA001"
#: a noqa suppression without a ``[RULE]`` list
NOQA_BARE = "NOQA002"
#: suppression whose rules produced no finding on its line
NOQA_UNUSED = "NOQA003"
#: file does not parse
PARSE_ERROR = "PARSE001"

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?P<bracket>\[(?P<rules>[^\]]*)\])?(?P<rest>.*)",
    re.IGNORECASE,
)


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro: noqa[...]`` comment."""

    line: int
    col: int
    rules: frozenset
    justification: str

    def covers(self, rule_id: str) -> bool:
        """Whether this suppression silences ``rule_id`` on its line."""
        return rule_id in self.rules


@dataclass
class SourceFile:
    """One file under lint: text, AST, and its suppression table."""

    path: Path
    display_path: str
    text: str
    tree: Optional[ast.Module] = None
    #: findings produced while loading (syntax errors, malformed noqa)
    load_findings: List[Finding] = field(default_factory=list)
    suppressions: Dict[int, Suppression] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path, display_path: Optional[str] = None) -> "SourceFile":
        """Read, parse, and scan ``path`` for suppression comments."""
        display = display_path if display_path is not None else path.as_posix()
        text = path.read_text(encoding="utf-8")
        return cls.from_text(text, path=path, display_path=display)

    @classmethod
    def from_text(
        cls,
        text: str,
        path: Optional[Path] = None,
        display_path: str = "<string>",
    ) -> "SourceFile":
        """Build a source file from in-memory text (the fixture/test path)."""
        source = cls(
            path=path if path is not None else Path(display_path),
            display_path=display_path,
            text=text,
        )
        try:
            source.tree = ast.parse(text, filename=display_path)
        except SyntaxError as exc:
            source.load_findings.append(
                Finding(
                    rule=PARSE_ERROR,
                    message=f"file does not parse: {exc.msg}",
                    path=display_path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    severity=Severity.ERROR,
                )
            )
            return source
        source._scan_suppressions()
        return source

    # ------------------------------------------------------------------
    # Suppressions
    # ------------------------------------------------------------------
    def _comments(self) -> Iterator[tokenize.TokenInfo]:
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.text).readline)
            for token in tokens:
                if token.type == tokenize.COMMENT:
                    yield token
        except (tokenize.TokenError, IndentationError):  # pragma: no cover
            return

    def _scan_suppressions(self) -> None:
        for token in self._comments():
            match = _NOQA_RE.search(token.string)
            if match is None:
                continue
            line, col = token.start
            if match.group("bracket") is None:
                self.load_findings.append(
                    Finding(
                        rule=NOQA_BARE,
                        message="suppression must name rules: "
                        "use `# repro: noqa[RULE] justification`",
                        path=self.display_path,
                        line=line,
                        col=col,
                        severity=Severity.ERROR,
                    )
                )
                continue
            rules = frozenset(
                part.strip().upper()
                for part in match.group("rules").split(",")
                if part.strip()
            )
            justification = match.group("rest").strip().lstrip("-—:").strip()
            if not rules:
                self.load_findings.append(
                    Finding(
                        rule=NOQA_BARE,
                        message="suppression lists no rules",
                        path=self.display_path,
                        line=line,
                        col=col,
                        severity=Severity.ERROR,
                    )
                )
                continue
            if not justification:
                self.load_findings.append(
                    Finding(
                        rule=NOQA_NO_JUSTIFICATION,
                        message=f"suppression of {', '.join(sorted(rules))} "
                        "carries no justification",
                        path=self.display_path,
                        line=line,
                        col=col,
                        severity=Severity.ERROR,
                    )
                )
            self.suppressions[line] = Suppression(
                line=line, col=col, rules=rules, justification=justification
            )

    def suppresses(self, finding: Finding) -> bool:
        """Whether a line suppression covers ``finding``."""
        suppression = self.suppressions.get(finding.line)
        return suppression is not None and suppression.covers(finding.rule)

    def unused_suppressions(
        self, fired_rules_by_line: Dict[int, set]
    ) -> Iterator[Finding]:
        """``NOQA003`` findings for suppressions that silenced nothing."""
        for line, suppression in sorted(self.suppressions.items()):
            fired = fired_rules_by_line.get(line, set())
            if not (suppression.rules & fired):
                yield Finding(
                    rule=NOQA_UNUSED,
                    message="unused suppression: "
                    f"{', '.join(sorted(suppression.rules))} did not fire here",
                    path=self.display_path,
                    line=line,
                    col=suppression.col,
                    severity=Severity.WARNING,
                )


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    seen = []
    for path in paths:
        if path.is_dir():
            candidates: Iterator[Path] = iter(sorted(path.rglob("*.py")))
        else:
            candidates = iter([path])
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.append(resolved)
                yield candidate
