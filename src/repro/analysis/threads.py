"""Thread-safety rule (THR001) for the serving layer.

The streaming service runs three kinds of threads (ingest thread,
dispatch loop, worker pool — ``docs/serving.md``).  Its determinism
argument rests on worker threads never touching shared mutable state.
This rule rebuilds that argument mechanically:

1. collect every thread entry point in the in-scope files — functions
   passed as ``threading.Thread(target=...)`` or submitted to an
   executor via ``.submit(fn, ...)`` (lambdas submitted inline count via
   the calls inside their bodies);
2. grow the shared project call graph (:mod:`repro.analysis.callgraph`)
   from those roots across all in-scope files (conservative: a call
   resolves to every same-named function);
3. flag any instance attribute that is mutated in **more than one
   method** of its class when at least one mutation site is reachable
   from a thread root and not wrapped in a ``with <lock>:`` block
   (anything whose name contains ``lock`` or ``mutex`` counts as a
   lock).

Single-method mutators stay exempt: confining all writes to one method
(called from one thread) is the pattern the serving layer uses on
purpose, and flagging it would bury the real hazards.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .astutil import terminal_name
from .callgraph import CallGraph
from .findings import Finding, ProjectRule, THREADED_PATHS
from .source import SourceFile

__all__ = ["UnlockedSharedMutationRule", "THREAD_RULES"]

_MUTATOR_METHODS = {
    "append", "extend", "insert", "add", "update", "discard", "remove",
    "pop", "popitem", "clear", "appendleft", "popleft", "put",
    "difference_update", "intersection_update", "symmetric_difference_update",
    "setdefault", "move_to_end",
}

_CONSTRUCTORS = {"__init__", "__post_init__", "__new__"}


def _is_lock_like(node: ast.AST) -> bool:
    """``with self._lock:`` / ``with lock:`` / ``with pool.get_lock():``."""
    if isinstance(node, ast.Call):
        return _is_lock_like(node.func)
    name = terminal_name(node)
    if name is None:
        return False
    lowered = name.lower()
    return "lock" in lowered or "mutex" in lowered


@dataclass
class _MutationSite:
    """One write to ``self.<attr>`` inside a method."""

    attr: str
    method: str
    cls: str
    path: str
    line: int
    col: int
    locked: bool


@dataclass
class _Frame:
    """One function on the visitor stack (name + method-of-class)."""

    name: str
    cls: Optional[str]


class _Collector(ast.NodeVisitor):
    """Per-file pass: thread roots and mutation sites.

    Call edges are no longer gathered here — the shared
    :class:`~repro.analysis.callgraph.CallGraph` owns them.
    """

    def __init__(self, source: SourceFile):
        self.source = source
        self.thread_roots: Set[str] = set()
        self.mutations: List[_MutationSite] = []
        self._class_stack: List[str] = []
        self._func_stack: List[_Frame] = []
        self._lock_depth = 0

    # -- structure ------------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _visit_function(self, node: ast.AST, name: str) -> None:
        enclosing_class = self._class_stack[-1] if self._class_stack else None
        # A nested function is not a method of the enclosing class.
        if self._func_stack:
            enclosing_class = None
        self._func_stack.append(_Frame(name=name, cls=enclosing_class))
        outer_lock_depth, self._lock_depth = self._lock_depth, 0
        self.generic_visit(node)
        self._lock_depth = outer_lock_depth
        self._func_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node, node.name)

    def visit_With(self, node: ast.With) -> None:
        locked = any(_is_lock_like(item.context_expr) for item in node.items)
        self._lock_depth += 1 if locked else 0
        self.generic_visit(node)
        self._lock_depth -= 1 if locked else 0

    # -- roots ----------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        callee = terminal_name(node.func)
        if callee == "Thread":
            for keyword in node.keywords:
                if keyword.arg == "target":
                    self._add_root(keyword.value)
        elif callee == "submit" and node.args:
            self._add_root(node.args[0])
        self.generic_visit(node)

    def _add_root(self, node: ast.AST) -> None:
        if isinstance(node, ast.Lambda):
            for child in ast.walk(node.body):
                if isinstance(child, ast.Call):
                    name = terminal_name(child.func)
                    if name is not None:
                        self.thread_roots.add(name)
            return
        name = terminal_name(node)
        if name is not None:
            self.thread_roots.add(name)

    # -- mutations ------------------------------------------------------
    def _self_attr(self, node: ast.AST) -> Optional[str]:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        return None

    def _record(self, attr: Optional[str], node: ast.AST) -> None:
        if attr is None or not self._func_stack or not self._class_stack:
            return
        info = self._func_stack[-1]
        if info.cls is None:  # nested function, not a method body
            return
        self.mutations.append(
            _MutationSite(
                attr=attr,
                method=info.name,
                cls=info.cls,
                path=self.source.display_path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                locked=self._lock_depth > 0,
            )
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record(self._self_attr(target), node)
            if isinstance(target, ast.Subscript):
                self._record(self._self_attr(target.value), node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record(self._self_attr(node.target), node)
        if isinstance(node.target, ast.Subscript):
            self._record(self._self_attr(node.target.value), node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record(self._self_attr(node.target), node)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._record(self._self_attr(target), node)
        self.generic_visit(node)

    def _visit_mutating_call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _MUTATOR_METHODS:
            self._record(self._self_attr(func.value), node)

    def generic_visit(self, node: ast.AST) -> None:
        if isinstance(node, ast.Call):
            self._visit_mutating_call(node)
        super().generic_visit(node)


class UnlockedSharedMutationRule(ProjectRule):
    """THR001: cross-thread attribute mutation without a lock."""

    id = "THR001"
    name = "unlocked attribute mutation reachable from a thread target"
    rationale = (
        "The serving layer's determinism proof assumes worker and ingest "
        "threads never write state another method also writes; any such "
        "attribute needs a `with <lock>:` around the thread-side write "
        "or a single-writer redesign."
    )
    scope = THREADED_PATHS
    example = (
        "def _worker(self):          # submitted to the pool\n"
        "    self.windows += 1       # THR001: also written in flush()\n"
        "def flush(self):\n"
        "    self.windows = 0\n"
    )

    def check_project(self, sources: Sequence[SourceFile]) -> Iterator[Finding]:
        collectors = []
        for source in sources:
            if source.tree is None:
                continue
            collector = _Collector(source)
            collector.visit(source.tree)
            collectors.append(collector)

        roots: Set[str] = set()
        for collector in collectors:
            roots |= collector.thread_roots
        reachable = CallGraph.build(sources).reachable(roots)

        mutations: Dict[Tuple[str, str, str], List[_MutationSite]] = {}
        for collector in collectors:
            for site in collector.mutations:
                mutations.setdefault((site.path, site.cls, site.attr), []).append(
                    site
                )

        for (path, cls, attr), sites in sorted(mutations.items()):
            methods = {
                s.method for s in sites if s.method not in _CONSTRUCTORS
            }
            if len(methods) < 2:
                continue
            flagged = [
                s
                for s in sites
                if s.method in reachable
                and s.method not in _CONSTRUCTORS
                and not s.locked
            ]
            reported: Set[str] = set()
            for site in flagged:
                if site.method in reported:
                    continue
                reported.add(site.method)
                others = ", ".join(sorted(methods - {site.method})) or "-"
                yield Finding(
                    rule=self.id,
                    message=(
                        f"`{cls}.{attr}` is mutated here in `{site.method}` "
                        "(reachable from a thread target) and also in "
                        f"`{others}`, with no enclosing `with <lock>:` block"
                    ),
                    path=site.path,
                    line=site.line,
                    col=site.col,
                    severity=self.severity,
                )


THREAD_RULES = (UnlockedSharedMutationRule(),)
