"""Unit-consistency rules (UNIT001-UNIT003).

The accelerator cost models (``accel/``, ``core/``) encode physical units
purely in identifier suffixes — ``_pj``, ``_joules``, ``_cycles``,
``_bytes``, ``_hz``, ``_seconds`` — and in the ``_PJ`` conversion
constant (joules per picojoule).  Nothing in the type system checks that
a picojoule quantity is never added to a joule quantity or assigned to a
``*_joules`` name without the ``* _PJ`` conversion; these rules do.

The inference is deliberately conservative: an expression only gets a
unit when its name carries a recognized suffix, and products of two
*different* units are treated as unknown (compound units are legal in the
cost models — ``bytes * pj_per_byte`` — and never flagged).  Ratio names
(``bandwidth_bytes_per_cycle``) divide through, ``hz`` is normalized to
``cycles/seconds`` so ``cycles / hz`` comes out as ``seconds``, and
multiplying a ``pj`` quantity by ``_PJ`` converts it to ``joules``.

* **UNIT001** — addition/subtraction/comparison of incompatible units
  (``x_pj + y_joules``).
* **UNIT002** — assignment that drops a conversion factor
  (``x_joules = y_pj`` without ``* _PJ``).
* **UNIT003** — a function whose name carries a unit suffix returns a
  value inferred to a different unit.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from .astutil import terminal_name
from .findings import FileRule, Finding, UNIT_PATHS
from .source import SourceFile

__all__ = [
    "Unit",
    "infer_unit",
    "unit_of_name",
    "MixedUnitOperationRule",
    "DroppedConversionRule",
    "ReturnUnitMismatchRule",
    "UNIT_RULES",
]

#: identifier suffix token -> canonical base unit
_BASE_UNITS: Dict[str, str] = {
    "pj": "pj",
    "j": "joules",
    "joule": "joules",
    "joules": "joules",
    "cycle": "cycles",
    "cycles": "cycles",
    "byte": "bytes",
    "bytes": "bytes",
    "s": "seconds",
    "sec": "seconds",
    "secs": "seconds",
    "second": "seconds",
    "seconds": "seconds",
    "mm2": "mm2",
    # countable events — included so per-op/per-event energies cancel
    # against their counts (`ops * energy_pj_per_op -> pj`)
    "op": "ops",
    "ops": "ops",
    "event": "events",
    "events": "events",
    "mac": "macs",
    "macs": "macs",
    "edge": "edges",
    "edges": "edges",
    "vertex": "vertices",
    "vertices": "vertices",
    "hop": "hops",
    "hops": "hops",
}

#: reductions that preserve the unit of their (first) argument
_UNIT_PRESERVING_CALLS = {"sum", "min", "max", "abs", "round", "float"}


@dataclass(frozen=True)
class Unit:
    """A base unit or a simple ratio (``num`` per ``den``)."""

    num: str
    den: Optional[str] = None

    def __str__(self) -> str:
        return self.num if self.den is None else f"{self.num}/{self.den}"


#: ``hz`` normalizes to a rate so frequency algebra falls out of the
#: ratio rules: ``cycles / hz -> seconds``, ``seconds * hz -> cycles``.
_HZ = Unit("cycles", "seconds")

#: the ``_PJ`` module constant: joules per picojoule
_PJ_CONVERSION = Unit("joules", "pj")


def unit_of_name(identifier: Optional[str]) -> Optional[Unit]:
    """The unit a (terminal) identifier's suffix declares, if any."""
    if not identifier:
        return None
    if identifier.strip("_").upper() == "PJ" and identifier.upper() == identifier:
        return _PJ_CONVERSION
    tokens = identifier.lower().split("_")
    if "per" in tokens:
        split = tokens.index("per")
        num = _suffix_unit(tokens[:split])
        if num is None:
            return None
        den_tokens = tokens[split + 1:]
        if not den_tokens or num.den is not None:
            return None  # rates-of-rates are outside the tracked algebra
        den_unit = _suffix_unit(den_tokens)
        den = den_unit.num if den_unit is not None else "_".join(den_tokens)
        return Unit(num.num, den)
    if tokens and tokens[-1] == "hz":
        return _HZ
    return _suffix_unit(tokens)


def _suffix_unit(tokens: list) -> Optional[Unit]:
    if not tokens:
        return None
    last = tokens[-1]
    if last == "hz":
        return _HZ
    base = _BASE_UNITS.get(last)
    if base is None:
        return None
    # A trailing pair of two base units (`byte_hops`) names a *product*
    # quantity; those live outside the tracked algebra.
    if len(tokens) >= 2 and tokens[-2] in _BASE_UNITS:
        return None
    return Unit(base)


def _invert(unit: Unit) -> Unit:
    if unit.den is None:
        return Unit("1", unit.num)
    return Unit(unit.den, unit.num)


class _Inference:
    """Expression-level unit inference over one file's AST."""

    def infer(self, node: ast.AST) -> Optional[Unit]:
        if isinstance(node, (ast.Name, ast.Attribute)):
            return unit_of_name(terminal_name(node))
        if isinstance(node, ast.Subscript):
            return self.infer(node.value)
        if isinstance(node, ast.UnaryOp):
            return self.infer(node.operand)
        if isinstance(node, ast.Call):
            return self._infer_call(node)
        if isinstance(node, ast.BinOp):
            return self._infer_binop(node)
        if isinstance(node, ast.IfExp):
            body, orelse = self.infer(node.body), self.infer(node.orelse)
            return body if body == orelse else None
        if isinstance(node, (ast.GeneratorExp, ast.ListComp)):
            return self.infer(node.elt)  # so sum(x.n_bytes for ...) -> bytes
        return None

    def _infer_call(self, node: ast.Call) -> Optional[Unit]:
        name = terminal_name(node.func)
        if name in _UNIT_PRESERVING_CALLS and node.args:
            return self.infer(node.args[0])
        return unit_of_name(name)

    def _infer_binop(self, node: ast.BinOp) -> Optional[Unit]:
        left, right = self.infer(node.left), self.infer(node.right)
        if isinstance(node.op, ast.Mult):
            return self._mul(left, right)
        if isinstance(node.op, ast.Div):
            if left is None:
                return None
            if right is None:
                return left
            return self._mul(left, _invert(right))
        if isinstance(node.op, (ast.Add, ast.Sub)):
            if left is not None and right is not None:
                return left if left == right else None
            return left if left is not None else right
        return None

    @staticmethod
    def _mul(left: Optional[Unit], right: Optional[Unit]) -> Optional[Unit]:
        if left is None:
            return right
        if right is None:
            return left
        # fraction multiply with cancellation over (num, den) pairs
        nums = [left.num, right.num]
        dens = [d for d in (left.den, right.den) if d is not None]
        for den in list(dens):
            if den in nums:
                nums.remove(den)
                dens.remove(den)
        nums = [n for n in nums if n != "1"]
        if len(nums) == 1 and len(dens) == 0:
            return Unit(nums[0])
        if len(nums) == 1 and len(dens) == 1:
            return Unit(nums[0], dens[0])
        if len(nums) == 0 and len(dens) == 1:
            return Unit("1", dens[0])
        return None


def infer_unit(node: ast.AST) -> Optional[Unit]:
    """The unit of ``node``, or ``None`` when it cannot be pinned down."""
    return _Inference().infer(node)


class MixedUnitOperationRule(FileRule):
    """UNIT001: adding/subtracting/comparing incompatible units."""

    id = "UNIT001"
    name = "arithmetic mixes incompatible units"
    rationale = (
        "The Horowitz energy model and the cycle accounting only compare "
        "across engines when every sum stays within one unit; pJ + J "
        "(or cycles + seconds) silently corrupts the evaluation figures."
    )
    scope = UNIT_PATHS

    def check(self, source: SourceFile) -> Iterator[Finding]:
        assert source.tree is not None
        inference = _Inference()
        for node in ast.walk(source.tree):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                yield from self._check_pair(
                    source, inference, node, node.left, node.right, "operation"
                )
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                yield from self._check_pair(
                    source, inference, node, node.target, node.value, "update"
                )
            elif isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
                for left, right in zip(operands, operands[1:]):
                    yield from self._check_pair(
                        source, inference, node, left, right, "comparison"
                    )

    def _check_pair(
        self,
        source: SourceFile,
        inference: _Inference,
        node: ast.AST,
        left: ast.AST,
        right: ast.AST,
        kind: str,
    ) -> Iterator[Finding]:
        left_unit, right_unit = inference.infer(left), inference.infer(right)
        if left_unit is None or right_unit is None or left_unit == right_unit:
            return
        yield self.finding(
            source,
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0),
            f"{kind} mixes incompatible units `{left_unit}` and "
            f"`{right_unit}`; insert the missing conversion factor",
        )


class DroppedConversionRule(FileRule):
    """UNIT002: assignment whose value disagrees with the target's unit."""

    id = "UNIT002"
    name = "assignment drops a unit conversion"
    rationale = (
        "`x_joules = y_pj` type-checks and runs, but every downstream "
        "figure is then off by 1e12; the `* _PJ` conversion (or a "
        "renamed target) must make the unit change explicit."
    )
    scope = UNIT_PATHS

    def check(self, source: SourceFile) -> Iterator[Finding]:
        assert source.tree is not None
        inference = _Inference()
        for node in ast.walk(source.tree):
            targets: list
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            else:
                continue
            value_unit = inference.infer(value)
            if value_unit is None:
                continue
            for target in targets:
                if not isinstance(target, (ast.Name, ast.Attribute)):
                    continue
                target_unit = unit_of_name(terminal_name(target))
                if target_unit is None or target_unit == value_unit:
                    continue
                yield self.finding(
                    source,
                    node.lineno,
                    node.col_offset,
                    f"`{terminal_name(target)}` declares `{target_unit}` but "
                    f"is assigned a `{value_unit}` value; apply the "
                    "conversion or rename the target",
                )


class ReturnUnitMismatchRule(FileRule):
    """UNIT003: function's unit suffix disagrees with what it returns."""

    id = "UNIT003"
    name = "return value contradicts the function's unit suffix"
    rationale = (
        "Callers trust the suffix (`transfer_cycles`, `sram_word_pj`); a "
        "return in a different unit propagates silently through every "
        "call site."
    )
    scope = UNIT_PATHS

    def check(self, source: SourceFile) -> Iterator[Finding]:
        assert source.tree is not None
        inference = _Inference()
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            declared = unit_of_name(node.name)
            if declared is None:
                continue
            for child in ast.walk(node):
                if not isinstance(child, ast.Return) or child.value is None:
                    continue
                returned = infer_unit(child.value)
                if returned is None or returned == declared:
                    continue
                yield self.finding(
                    source,
                    child.lineno,
                    child.col_offset,
                    f"`{node.name}` declares `{declared}` but returns a "
                    f"`{returned}` value",
                )


UNIT_RULES = (
    MixedUnitOperationRule(),
    DroppedConversionRule(),
    ReturnUnitMismatchRule(),
)
