"""Baseline accelerator models: ReaDy, DGNN-Booster, RACE, MEGA."""

from .algorithms import (
    ALGORITHMS,
    AlgorithmParams,
    Placement,
    SnapshotQuantities,
    build_costs,
    measure_quantities,
)
from .base import AcceleratorModel
from .ready import ReaDyAccelerator
from .booster import DGNNBoosterAccelerator
from .race import RACEAccelerator
from .mega import MEGAAccelerator

__all__ = [
    "ALGORITHMS",
    "AlgorithmParams",
    "Placement",
    "SnapshotQuantities",
    "build_costs",
    "measure_quantities",
    "AcceleratorModel",
    "ReaDyAccelerator",
    "DGNNBoosterAccelerator",
    "RACEAccelerator",
    "MEGAAccelerator",
]
