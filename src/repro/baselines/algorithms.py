"""The four DGNN execution algorithms compared in the paper (§7.1-§7.3).

* **Re-Alg** (ReaDy, DGNN-Booster): "fully recomputes all graph data
  whenever edges or vertices change over time."
* **Race-Alg** (RACE): "a redundancy-aware incremental algorithm, which
  eliminates overlapping graph components ... between snapshots", reusing
  identical output *and* intermediate features — but paying a premium for
  expensive deletion operations.
* **Mega-Alg** (MEGA): "transforms costly deletion operations into addition
  operations" via the mutually-inclusive core, "but does not address
  redundancies related to intermediate features": an invalidated vertex
  recomputes its whole layer chain over its full receptive field.
* **DiTile-Alg**: per-layer incremental reuse + the deletion-to-addition
  transform + selective RNN processing of "a limited set of output
  features" (§7.2).

**Invalidation expansion.**  A change at a vertex invalidates the layer-l
outputs of vertices up to ``l`` hops downstream, so the fraction of
invalidated rows grows with depth.  The models capture this with
``f_l = min(Dis * expansion_rate**l, 1)``: ``Dis`` is the measured
changed-vertex fraction and ``expansion_rate`` the effective per-hop growth
(real updates are spatially clustered, so growth is far below the average
degree; the default is calibrated against the paper's Fig. 7 ratios and
recorded in EXPERIMENTS.md).

Each builder converts a dynamic graph + model spec + placement into the
per-snapshot monitored event counts (:class:`repro.accel.metrics.CostSummary`)
the simulator consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..accel.dram import DRAMTraffic
from ..accel.metrics import CostSummary, SnapshotCosts
from ..accel.noc import NoCTraffic
from ..core.plan import DGNNSpec
from ..graphs.delta import delta_counts, snapshot_edge_keys
from ..graphs.dynamic import DynamicGraph
from ..models.workload import gcn_ops, rnn_ops

__all__ = [
    "ALGORITHMS",
    "AlgorithmParams",
    "Placement",
    "SnapshotQuantities",
    "measure_quantities",
    "layer_fractions",
    "rnn_fraction",
    "build_costs",
]

ALGORITHMS = ("re", "race", "mega", "ditile")

_BYTES = 4  # FP32
_EDGE_BYTES = 8


@dataclass(frozen=True)
class AlgorithmParams:
    """Calibration constants of the cost models (see DESIGN.md §6).

    ``expansion_rate`` — per-hop growth of the invalidated-vertex set;
    ``race_deletion_penalty`` — extra recompute share RACE pays per
    deletion-affected change; ``mega_chain_factor`` — Mega-Alg's overhead
    for recomputing full layer chains without intermediate reuse.
    """

    expansion_rate: float = 1.75
    race_deletion_penalty: float = 1.6
    mega_chain_factor: float = 1.4
    onchip_bytes: float = 4 * 1024 * 1024  # residency capacity for spills
    naive_tiling: bool = True  # baselines refetch boundaries naively
    dis_floor: float = 0.01  # minimum processed fraction per snapshot
    # Transport granularity: row fetches quantize to DRAM burst lines and
    # on-chip packets carry one header flit.  The analytic planning models
    # (Eqs. 6-16) ignore both — the gap is what Fig. 10 measures.  Set to
    # None / 0 to reproduce the idealized analytic accounting.
    dram_line_bytes: Optional[int] = 64
    noc_flit_bytes: Optional[int] = 64
    noc_header_flits: int = 1
    # Staging-capacity contention between concurrent snapshot groups:
    # 0 = fully hidden by double buffering (default), 1 = linear division.
    group_capacity_sharing: float = 0.0

    def row_dram_bytes(self, rows: float, width_elems: float) -> float:
        """DRAM bytes to move ``rows`` feature rows of ``width_elems``."""
        raw = width_elems * _BYTES
        if not self.dram_line_bytes:
            return rows * raw
        lines = -(-raw // self.dram_line_bytes)
        return rows * lines * self.dram_line_bytes

    def row_noc_bytes(self, rows: float, width_elems: float) -> float:
        """NoC bytes to move ``rows`` feature rows of ``width_elems``."""
        raw = width_elems * _BYTES
        if not self.noc_flit_bytes:
            return rows * raw
        flits = -(-raw // self.noc_flit_bytes) + self.noc_header_flits
        return rows * flits * self.noc_flit_bytes


@dataclass(frozen=True)
class Placement:
    """How an accelerator spreads the workload over its tile array."""

    snapshot_groups: int
    vertex_groups: int
    load_utilization: float = 1.0
    reuse_capable: bool = False  # ships reused intermediates between tiles
    reconfigurable: bool = False  # pays per-phase reconfiguration events
    engine_split: bool = False  # RACE-style separate GNN/RNN engines
    # In-network partial aggregation: the column rings reduce partial sums
    # so a tile ships at most one row per (vertex, remote tile) pair
    # instead of one per edge (DiTile's RDTA, §6.1.1).
    partial_aggregation: bool = False

    def __post_init__(self) -> None:
        if self.snapshot_groups < 1 or self.vertex_groups < 1:
            raise ValueError("placement group counts must be >= 1")
        if not 0 < self.load_utilization <= 1:
            raise ValueError("load_utilization must be in (0, 1]")


@dataclass(frozen=True)
class SnapshotQuantities:
    """Measured per-snapshot quantities the cost formulas consume."""

    timestamp: int
    vertices: int
    edges: int
    dissimilarity: float  # changed-vertex fraction (1.0 at t=0)
    added_edges: int
    removed_edges: int

    @property
    def delta_edges(self) -> int:
        """Edge insertions plus deletions since the previous snapshot."""
        return self.added_edges + self.removed_edges

    @property
    def deletion_share(self) -> float:
        """Deletions as a fraction of all edge changes."""
        if self.delta_edges == 0:
            return 0.0
        return self.removed_edges / self.delta_edges


def measure_quantities(graph: DynamicGraph) -> List[SnapshotQuantities]:
    """Extract the per-snapshot quantities from a dynamic graph.

    Only delta *sizes* are needed here, so the scan encodes each
    snapshot's edges once against a shared id space and counts key
    differences (:func:`~repro.graphs.delta.delta_counts`) instead of
    materializing a full :func:`~repro.graphs.delta.snapshot_delta` per
    transition — the measured hot path of every cost-model build.
    """
    quantities = []
    id_space = max(int(graph.max_vertices), 1)
    prev_keys = None
    for t, snapshot in enumerate(graph):
        keys = snapshot_edge_keys(snapshot, id_space)
        if t == 0:
            added, removed, dis = snapshot.num_edges, 0, 1.0
        else:
            added, removed = delta_counts(prev_keys, keys)
            dis = graph.dissimilarity(t)
        prev_keys = keys
        quantities.append(
            SnapshotQuantities(
                timestamp=t,
                vertices=snapshot.num_vertices,
                edges=snapshot.num_edges,
                dissimilarity=dis,
                added_edges=added,
                removed_edges=removed,
            )
        )
    return quantities


# ---------------------------------------------------------------------------
# Work fractions
# ---------------------------------------------------------------------------
def layer_fractions(
    algorithm: str,
    q: SnapshotQuantities,
    num_layers: int,
    params: AlgorithmParams,
) -> List[float]:
    """Per-GCN-layer fraction of a full pass the algorithm executes.

    Index ``l`` is the fraction of layer ``l+1`` rows recomputed at
    snapshot ``q``.
    """
    if q.timestamp == 0 or algorithm == "re":
        return [1.0] * num_layers
    dis = max(q.dissimilarity, params.dis_floor)
    base = [
        min(dis * params.expansion_rate ** (l + 1), 1.0) for l in range(num_layers)
    ]
    if algorithm == "ditile":
        return base
    if algorithm == "race":
        # Deletion handling inflates every layer's recompute share.
        penalty = 1.0 + params.race_deletion_penalty * q.deletion_share
        return [min(f * penalty, 1.0) for f in base]
    if algorithm == "mega":
        # No intermediate reuse: every invalidated chain recomputes all
        # layers over its full receptive field.
        deepest = min(base[-1] * params.mega_chain_factor, 1.0)
        return [deepest] * num_layers
    raise ValueError(f"unknown algorithm {algorithm!r}")


def rnn_fraction(
    algorithm: str, q: SnapshotQuantities, num_layers: int, params: AlgorithmParams
) -> float:
    """Fraction of vertices whose RNN step the algorithm executes.

    Re-Alg steps every vertex.  The incremental designs step only vertices
    whose GNN output changed (the final-layer invalidated fraction) —
    RACE's and MEGA's identical-output reuse and DiTile's selective RNN
    processing are the same mechanism with different invalidation sets.
    """
    fractions = layer_fractions(algorithm, q, num_layers, params)
    return fractions[-1]


def gnn_macs_for(
    algorithm: str,
    q: SnapshotQuantities,
    full_aggregation: float,
    full_combination: float,
    num_layers: int,
    params: AlgorithmParams,
) -> tuple:
    """(aggregation, combination) MACs at snapshot ``q``.

    The full per-layer costs are approximated as evenly split across
    layers, which is exact for the paper's equal-width 2-layer GCN.
    """
    fractions = layer_fractions(algorithm, q, num_layers, params)
    mean_fraction = sum(fractions) / num_layers
    return full_aggregation * mean_fraction, full_combination * mean_fraction


def rnn_macs_for(
    algorithm: str, q: SnapshotQuantities, spec: DGNNSpec, params: AlgorithmParams
) -> float:
    """RNN MACs at snapshot ``q`` under the algorithm's reuse policy."""
    full = rnn_ops(
        q.vertices, spec.embedding_dim, spec.rnn_hidden_dim, spec.rnn_matmuls
    ).total
    fraction = rnn_fraction(algorithm, q, spec.num_gnn_layers, params)
    return float(full) * fraction


# ---------------------------------------------------------------------------
# Memory traffic
# ---------------------------------------------------------------------------
def _spill_bytes(resident_bytes: float, capacity: float) -> float:
    """Bytes written+read back when a working set exceeds on-chip capacity."""
    overflow = max(resident_bytes - capacity, 0.0)
    return 2.0 * overflow


def _boundary_refetch_rows(q: SnapshotQuantities, alpha: int) -> float:
    """Cross-subgraph neighbour refetch, in feature rows.

    Eq. 6 charges one row per boundary edge; a real gather deduplicates
    repeated neighbours within a subgraph, so the measured traffic uses the
    expected number of *distinct* external sources per subgraph (a
    balls-in-bins estimate), summed over the ``alpha`` subgraphs.
    """
    if q.vertices == 0 or alpha <= 1:
        return 0.0
    import math

    sv = q.vertices / alpha
    external = q.vertices - sv
    boundary_edges = (q.edges / alpha) * external / q.vertices
    if external <= 0 or boundary_edges <= 0:
        return 0.0
    distinct = external * (1.0 - math.exp(-boundary_edges / external))
    return alpha * distinct


def _naive_alpha(q: SnapshotQuantities, spec: DGNNSpec, capacity: float) -> int:
    """Capacity-only tiling: the smallest split that fits, ignoring traffic."""
    working = q.vertices * (spec.feature_dim + spec.embedding_dim) * _BYTES
    working += q.edges * _EDGE_BYTES
    return max(int(-(-working // max(capacity, 1.0))), 1)


def dram_traffic_for(
    algorithm: str,
    q: SnapshotQuantities,
    spec: DGNNSpec,
    params: AlgorithmParams,
    tiling_alpha: int = 1,
    placement: Optional[Placement] = None,
) -> DRAMTraffic:
    """Off-chip traffic at snapshot ``q``.

    Incremental algorithms read only invalidated features and the edge
    delta, but their scattered accesses are charged at random-access
    efficiency by the DRAM model.  Snapshot-parallel placements keep one
    snapshot's state resident *per snapshot group*, so their aggregate
    resident set grows with ``snapshot_groups`` and spills once it exceeds
    the distributed buffer — the §3.1.1 storage cost of temporal
    parallelism.
    """
    v, e = q.vertices, q.edges
    f, z, h = spec.feature_dim, spec.embedding_dim, spec.rnn_hidden_dim
    traffic = DRAMTraffic()
    # Snapshot-parallel placements split the distributed buffer among
    # their concurrent snapshot groups (§3.1.1's storage cost of temporal
    # parallelism): each group tiles against its share.
    capacity = params.onchip_bytes
    if (
        placement is not None
        and placement.snapshot_groups > 1
        and params.group_capacity_sharing > 0.0
    ):
        # Optional: concurrent snapshot groups contend for staging space
        # (§3.1.1's storage cost of temporal parallelism).  Off by default
        # because double-buffered pipelining largely hides it; exposed for
        # sensitivity studies.
        divisor = 1.0 + params.group_capacity_sharing * (
            placement.snapshot_groups - 1
        )
        capacity = params.onchip_bytes / divisor
    if algorithm == "re" or q.timestamp == 0:
        traffic.streaming_read += params.row_dram_bytes(v, f) + e * _EDGE_BYTES
        traffic.streaming_write += params.row_dram_bytes(v, z + h)
        alpha = (
            _naive_alpha(q, spec, capacity)
            if params.naive_tiling and algorithm != "ditile"
            else max(tiling_alpha, _naive_alpha(q, spec, capacity))
        )
        traffic.random_read += params.row_dram_bytes(
            _boundary_refetch_rows(q, alpha), f
        )
        intermediates = v * sum(spec.gcn_dims[1:-1]) * _BYTES
        traffic.random_read += _spill_bytes(intermediates, capacity)
        return traffic

    # Incremental algorithms (t >= 1): touch only invalidated state.
    layers = layer_fractions(algorithm, q, spec.num_gnn_layers, params)
    read_fraction = layers[0]  # input features of layer-1 invalidated rows
    out_fraction = layers[-1]
    # Delta updates read both the previous and the new values of the
    # invalidated rows (subtract-old / add-new aggregation).
    traffic.random_read += params.row_dram_bytes(2.0 * read_fraction * v, f)
    traffic.streaming_read += q.delta_edges * _EDGE_BYTES
    traffic.random_write += params.row_dram_bytes(out_fraction * v, z)
    # Persist the updated reuse caches: intermediate-layer rows and the
    # advanced hidden states of processed vertices.
    intermediate_widths = spec.gcn_dims[1:-1]
    for frac, width in zip(layers[:-1], intermediate_widths):
        traffic.random_write += params.row_dram_bytes(frac * v, width)
    traffic.random_write += params.row_dram_bytes(out_fraction * v, h)
    if algorithm == "race":
        # Redundancy search compares full adjacency structures between
        # snapshots, and the reuse cache spills past on-chip capacity.
        traffic.streaming_read += e * _EDGE_BYTES
        cache_bytes = (1.0 - q.dissimilarity) * v * z * _BYTES
        traffic.random_read += max(cache_bytes - params.onchip_bytes, 0.0)
    if algorithm == "mega":
        # No intermediate reuse: affected chains re-read the input features
        # of their full receptive fields.
        traffic.random_read += params.row_dram_bytes(
            (out_fraction - read_fraction) * v, f
        )
    alpha = (
        max(tiling_alpha, _naive_alpha(q, spec, capacity))
        if algorithm == "ditile"
        else _naive_alpha(q, spec, capacity)
    )
    traffic.random_read += params.row_dram_bytes(
        _boundary_refetch_rows(q, alpha) * out_fraction, f
    )
    # Hidden state residency: spill only what exceeds on-chip capacity.
    traffic.streaming_write += _spill_bytes(v * h * _BYTES, capacity) / 2.0
    return traffic


# ---------------------------------------------------------------------------
# On-chip traffic
# ---------------------------------------------------------------------------
def noc_traffic_for(
    algorithm: str,
    q: SnapshotQuantities,
    spec: DGNNSpec,
    params: AlgorithmParams,
    placement: Placement,
    num_snapshots: int,
) -> NoCTraffic:
    """Inter-tile traffic at snapshot ``q`` under ``placement``.

    Temporal traffic appears at snapshot-group boundaries; spatial traffic
    follows the cross-partition edge fraction ``1 - 1/vertex_groups``
    scaled by the executed aggregation fraction; reuse traffic ships
    reusable embeddings across group boundaries for reuse-capable designs.
    """
    v = q.vertices
    z, h = spec.embedding_dim, spec.rnn_hidden_dim
    traffic = NoCTraffic()

    groups = placement.snapshot_groups
    group_size = max(-(-num_snapshots // groups), 1)
    at_boundary = q.timestamp > 0 and q.timestamp % group_size == 0
    if at_boundary:
        traffic.temporal_bytes += params.row_noc_bytes(v, h)
        if placement.reuse_capable:
            traffic.reuse_bytes += params.row_noc_bytes(
                (1.0 - q.dissimilarity) * v, z
            )

    if placement.vertex_groups > 1:
        cut_fraction = 1.0 - 1.0 / placement.vertex_groups
        fractions = layer_fractions(algorithm, q, spec.num_gnn_layers, params)
        for frac, width in zip(fractions, spec.gcn_dims[:-1]):
            edge_rows = frac * q.edges * cut_fraction
            if placement.partial_aggregation:
                partial_rows = frac * v * (placement.vertex_groups - 1)
                edge_rows = min(edge_rows, partial_rows)
            traffic.spatial_bytes += params.row_noc_bytes(edge_rows, width)
    return traffic


# ---------------------------------------------------------------------------
# Top-level builder
# ---------------------------------------------------------------------------
def build_costs(
    graph: DynamicGraph,
    spec: DGNNSpec,
    algorithm: str,
    placement: Placement,
    params: AlgorithmParams = AlgorithmParams(),
    tiling_alpha: int = 1,
    quantities: Optional[List[SnapshotQuantities]] = None,
    warm_start: bool = False,
) -> CostSummary:
    """Monitored event counts for one algorithm on one workload.

    ``warm_start`` models steady-state streaming inference: the engine
    already holds the state of the snapshot preceding ``graph[0]``, so the
    first snapshot is processed incrementally (at the run's average
    dissimilarity) instead of as a cold start.  Re-Alg is unaffected — it
    recomputes everything regardless.
    """
    if algorithm not in ALGORITHMS:
        raise ValueError(f"unknown algorithm {algorithm!r}; known: {ALGORITHMS}")
    quantities = quantities if quantities is not None else measure_quantities(graph)
    if warm_start and len(quantities) > 1:
        tail = quantities[1:]
        first = quantities[0]
        quantities = [
            SnapshotQuantities(
                timestamp=1,  # nonzero: take the incremental path
                vertices=first.vertices,
                edges=first.edges,
                dissimilarity=float(
                    sum(q.dissimilarity for q in tail) / len(tail)
                ),
                added_edges=int(sum(q.added_edges for q in tail) / len(tail)),
                removed_edges=int(
                    sum(q.removed_edges for q in tail) / len(tail)
                ),
            ),
            *tail,
        ]
    snapshots: List[SnapshotCosts] = []
    for q, snapshot in zip(quantities, graph):
        full = gcn_ops(snapshot, spec.gcn_dims)
        agg, comb = gnn_macs_for(
            algorithm,
            q,
            full.aggregation,
            full.combination,
            spec.num_gnn_layers,
            params,
        )
        rnn = rnn_macs_for(algorithm, q, spec, params)
        noc = noc_traffic_for(algorithm, q, spec, params, placement, len(graph))
        dram = dram_traffic_for(
            algorithm, q, spec, params, tiling_alpha, placement=placement
        )
        sync_events = 1.0 if noc.temporal_bytes > 0 else 0.0
        config_events = 0.0
        if placement.reconfigurable and (q.timestamp == 0 or noc.temporal_bytes > 0):
            config_events = 1.0
        snapshots.append(
            SnapshotCosts(
                timestamp=q.timestamp,
                gnn_aggregation_macs=agg,
                gnn_combination_macs=comb,
                rnn_macs=rnn,
                dram=dram,
                noc=noc,
                config_events=config_events,
                sync_events=sync_events,
            )
        )
    utilization = placement.load_utilization
    if placement.engine_split:
        gnn_total = sum(s.gnn_macs for s in snapshots)
        rnn_total = sum(s.rnn_macs for s in snapshots)
        peak_bound = 2.0 * max(gnn_total, rnn_total)
        if peak_bound > 0:
            utilization *= (gnn_total + rnn_total) / peak_bound
    return CostSummary(
        algorithm=algorithm, snapshots=snapshots, load_utilization=utilization
    )
