"""Common accelerator-model machinery for DiTile-DGNN and the baselines.

Per the paper's protocol (§7.1), every baseline "is scaled to be equipped
with the same number of multipliers and off-chip/on-chip bandwidth" and
"the same on-chip storage capacity and frequency" — so a model differs from
the others only in its execution algorithm, its workload placement, its
interconnect topology, and its secondary timing parameters.
"""

from __future__ import annotations

import abc
from typing import Optional, TYPE_CHECKING

from ..accel.config import HardwareConfig
from ..accel.energy import EnergyParams
from ..accel.metrics import CostSummary, SimulationResult
from ..accel.simulator import AcceleratorSimulator, SimulatorParams
from ..core.balance import natural_workload
from ..core.comm_model import ParallelFactors
from ..core.plan import DGNNSpec
from ..graphs.dynamic import DynamicGraph
from .algorithms import AlgorithmParams, Placement, build_costs

if TYPE_CHECKING:  # pragma: no cover - type-only; avoids an import cycle
    from ..resilience.faults import FaultModel

__all__ = ["AcceleratorModel"]


class AcceleratorModel(abc.ABC):
    """One accelerator design point: algorithm + placement + interconnect."""

    #: display name (subclasses override)
    name: str = "accelerator"
    #: execution algorithm key from :data:`repro.baselines.algorithms.ALGORITHMS`
    algorithm: str = "re"
    #: interconnect topology key understood by :class:`repro.accel.noc.NoCModel`
    topology: str = "mesh"
    #: achieved DRAM efficiency on scattered gathers; designs that batch
    #: or coalesce their irregular accesses override this upward
    dram_random_efficiency: Optional[float] = None

    def __init__(
        self,
        hardware: Optional[HardwareConfig] = None,
        params: Optional[AlgorithmParams] = None,
    ):
        from dataclasses import replace

        base = hardware if hardware is not None else HardwareConfig.small()
        self.hardware = base.normalized(self.topology)
        if self.dram_random_efficiency is not None:
            self.hardware = replace(
                self.hardware,
                dram=replace(
                    self.hardware.dram,
                    random_efficiency=self.dram_random_efficiency,
                ),
            )
        # Graph state resides in the distributed buffer (C_DB): the same
        # capacity Algorithm 1's tiling search is constrained by, so every
        # design tiles against identical storage (the §7.1 normalization).
        self.params = params if params is not None else AlgorithmParams(
            onchip_bytes=float(base.distributed_buffer_bytes)
        )

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def placement(self, graph: DynamicGraph, spec: DGNNSpec) -> Placement:
        """The design's workload-to-tile mapping for this workload."""

    def tiling_alpha(self, graph: DynamicGraph, spec: DGNNSpec) -> int:
        """Subgraph tiling factor; baselines tile naively (capacity-only)."""
        return 1

    def simulator_params(self) -> SimulatorParams:
        """Secondary timing constants (subclasses may specialize)."""
        return SimulatorParams()

    def energy_params(self) -> EnergyParams:
        """Per-event energies; subclasses adjust for their technology
        (ReRAM PIM arrays, FPGA fabric, crossbar operand delivery)."""
        return EnergyParams()

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _utilization(
        self, graph: DynamicGraph, spec: DGNNSpec, snapshot_groups: int,
        vertex_groups: int,
    ) -> float:
        """Load balance of an unoptimized (natural-order) placement, folded
        with the array-occupancy penalty when the mapping cannot fill the
        tile array."""
        factors = ParallelFactors.from_groups(
            graph.num_snapshots, graph.stats().avg_vertices,
            snapshot_groups, vertex_groups,
        )
        balance = natural_workload(graph, spec.num_gnn_layers, factors)
        occupancy = factors.tiles_used / self.hardware.total_tiles
        return max(min(balance.utilization * occupancy, 1.0), 1e-6)

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def build_costs(self, graph: DynamicGraph, spec: DGNNSpec) -> CostSummary:
        """Monitored event counts for this design on ``graph``."""
        return build_costs(
            graph,
            spec,
            self.algorithm,
            self.placement(graph, spec),
            self.params,
            tiling_alpha=self.tiling_alpha(graph, spec),
        )

    def simulate(
        self,
        graph: DynamicGraph,
        spec: DGNNSpec,
        faults: Optional["FaultModel"] = None,
    ) -> SimulationResult:
        """Full timing/energy simulation of this design on ``graph``.

        With ``faults`` the simulator models the degraded array (see
        :mod:`repro.resilience`); ``faults=None`` is the bit-identical
        fault-free path.
        """
        simulator = AcceleratorSimulator(
            self.hardware,
            self.simulator_params(),
            name=self.name,
            energy_params=self.energy_params(),
            faults=faults,
        )
        return simulator.run(self.build_costs(graph, spec))

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(algorithm={self.algorithm!r}, "
            f"topology={self.topology!r}, tiles={self.hardware.total_tiles})"
        )
