"""DGNN-Booster baseline (Chen & Hao, FCCM 2023) — paper §7.1.

An FPGA accelerator framework running the same full-recompute algorithm as
ReaDy (Re-Alg).  Its streaming dataflow processes the GNN and RNN kernels
of a snapshot as separate passes with limited cross-kernel overlap, which
the model captures through a reduced pipeline-overlap factor and a
ring-style streaming interconnect.
"""

from __future__ import annotations

from dataclasses import replace

from ..accel.energy import EnergyParams
from ..accel.pe import KernelEfficiency
from ..accel.simulator import SimulatorParams
from ..core.plan import DGNNSpec
from ..graphs.dynamic import DynamicGraph
from .algorithms import Placement
from .base import AcceleratorModel

__all__ = ["DGNNBoosterAccelerator"]


class DGNNBoosterAccelerator(AcceleratorModel):
    """Streaming FPGA-style design, Re-Alg, temporal parallelism."""

    name = "DGNN-Booster"
    algorithm = "re"
    topology = "ring"

    def placement(self, graph: DynamicGraph, spec: DGNNSpec) -> Placement:
        # Pure temporal mapping: one snapshot pipeline per tile group, no
        # vertex splitting (the FCCM design streams a whole snapshot
        # through one dataflow instance).  Snapshot counts below the tile
        # budget leave part of the fabric idle.
        tiles = self.hardware.total_tiles
        snapshot_groups = min(graph.num_snapshots, tiles)
        return Placement(
            snapshot_groups=snapshot_groups,
            vertex_groups=1,
            load_utilization=self._utilization(graph, spec, snapshot_groups, 1),
        )

    def simulator_params(self) -> SimulatorParams:
        # Phase-by-phase streaming: GNN and RNN barely overlap, and the
        # FPGA fabric sustains a lower fraction of peak than an ASIC array.
        return replace(
            SimulatorParams(),
            pipeline_overlap=0.4,
            efficiency=KernelEfficiency(dense=0.5, sparse=0.25, elementwise=0.35),
        )

    def energy_params(self) -> EnergyParams:
        # FPGA fabric: LUT/routing overhead multiplies dynamic arithmetic
        # energy several-fold over an ASIC datapath.
        return replace(EnergyParams(), fp32_mult_pj=30.0, fp32_add_pj=7.5)
