"""MEGA baseline (Gao et al., MICRO 2023) — paper §7.1.

MEGA "partitions all the snapshots among computing tiles to avoid the
synchronization issue during the RNN phase" (spatial parallelism, §3.1.2)
and runs Mega-Alg: the deletion-to-addition transform over the mutually
inclusive graph core, but without intermediate-feature reuse.  The
distributed graph components incur irregular aggregation communication at
the GNN phase, carried here by a conventional mesh.
"""

from __future__ import annotations

from dataclasses import replace

from ..accel.simulator import SimulatorParams
from ..core.plan import DGNNSpec
from ..graphs.dynamic import DynamicGraph
from .algorithms import Placement
from .base import AcceleratorModel

__all__ = ["MEGAAccelerator"]


class MEGAAccelerator(AcceleratorModel):
    """Mesh-based, Mega-Alg, spatial parallelism."""

    name = "MEGA"
    algorithm = "mega"
    topology = "mesh"
    # MEGA's evolve-batch engine scans vertex partitions sequentially, so
    # its gathers coalesce nearly as well as DiTile's batched reservoir.
    dram_random_efficiency = 0.45

    def placement(self, graph: DynamicGraph, spec: DGNNSpec) -> Placement:
        tiles = self.hardware.total_tiles
        return Placement(
            snapshot_groups=1,
            vertex_groups=tiles,
            load_utilization=self._utilization(graph, spec, 1, tiles),
            reuse_capable=False,
        )

    def simulator_params(self) -> SimulatorParams:
        # No reuse FIFO: intermediate features shuttle over the mesh
        # between aggregation and combination engines.
        return replace(SimulatorParams(), operand_noc_bytes_per_mac=1.5)
