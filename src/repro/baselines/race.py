"""RACE baseline (Yu et al., TACO 2023) — paper §7.1.

"RACE uses an engine-based architecture consisting of a GNN engine for the
GNN kernel and an RNN engine for the RNN kernel.  The PEs are connected by
a crossbar in each engine ... computation resources are divided into two
groups with the same number of PEs."  RACE runs the redundancy-aware
incremental algorithm (Race-Alg) that reuses identical output *and*
intermediate features across snapshots but pays for expensive deletion
operations.  The fixed 50/50 engine split is the imbalance the paper calls
out on vertex-heavy datasets like PubMed (§7.4).
"""

from __future__ import annotations

from dataclasses import replace

from ..accel.simulator import SimulatorParams
from ..core.plan import DGNNSpec
from ..graphs.dynamic import DynamicGraph
from .algorithms import Placement
from .base import AcceleratorModel

__all__ = ["RACEAccelerator"]


class RACEAccelerator(AcceleratorModel):
    """Dual-engine crossbar design, Race-Alg, temporal parallelism."""

    name = "RACE"
    algorithm = "race"
    topology = "crossbar"
    # RACE's redundancy-aware engine batches its incremental gathers, so
    # its scattered DRAM accesses coalesce almost as well as DiTile's.
    dram_random_efficiency = 0.45

    def placement(self, graph: DynamicGraph, spec: DGNNSpec) -> Placement:
        tiles = self.hardware.total_tiles
        snapshot_groups = min(graph.num_snapshots, tiles)
        vertex_groups = max(tiles // snapshot_groups, 1)
        return Placement(
            snapshot_groups=snapshot_groups,
            vertex_groups=vertex_groups,
            load_utilization=self._utilization(
                graph, spec, snapshot_groups, vertex_groups
            ),
            reuse_capable=True,  # ships reused features between engines/tiles
            engine_split=True,  # fixed 50/50 GNN/RNN resource partition
        )

    def simulator_params(self) -> SimulatorParams:
        # Crossbar-fed PEs stream operands through the exchange instead of
        # reading tile-local buffers.
        return replace(SimulatorParams(), operand_noc_bytes_per_mac=4.0)
