"""ReaDy baseline (Huang et al., TCAD 2022) — paper §7.1.

"ReaDy uses a hierarchical architecture consisting of a mesh-based PE array
for both the GNN kernel and RNN kernel and its computation resources are
partitioned according to the workloads of the kernels."  ReaDy employs the
recomputation algorithm (Re-Alg) that fully recomputes all graph data
whenever edges or vertices change, and follows the conventional temporal
parallelization of §3.1.1: each snapshot goes to its own tile group.
"""

from __future__ import annotations

from dataclasses import replace

from ..accel.energy import EnergyParams
from ..core.plan import DGNNSpec
from ..graphs.dynamic import DynamicGraph
from .algorithms import Placement
from .base import AcceleratorModel

__all__ = ["ReaDyAccelerator"]


class ReaDyAccelerator(AcceleratorModel):
    """Mesh-based, Re-Alg, temporal parallelism."""

    name = "ReaDy"
    algorithm = "re"
    topology = "mesh"

    def placement(self, graph: DynamicGraph, spec: DGNNSpec) -> Placement:
        tiles = self.hardware.total_tiles
        snapshot_groups = min(graph.num_snapshots, tiles)
        vertex_groups = max(tiles // snapshot_groups, 1)
        return Placement(
            snapshot_groups=snapshot_groups,
            vertex_groups=vertex_groups,
            load_utilization=self._utilization(
                graph, spec, snapshot_groups, vertex_groups
            ),
        )

    def energy_params(self) -> EnergyParams:
        # ReaDy is a ReRAM processing-in-memory design: array accesses
        # (especially writes of recomputed state) cost far more than SRAM.
        return replace(EnergyParams(), sram_8kb_word_pj=120.0)
