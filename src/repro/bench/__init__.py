"""Deterministic benchmark subsystem (``repro bench``).

A registry of named, parameterized benchmark cases wrapping the repo's
planner, simulator, baseline, and serving scenarios; a runner with a
warmup/repeat/median timing protocol and a cross-repeat determinism
check; and a baseline comparator that gates **deterministic counters**
(cycles, DRAM bytes, NoC byte-hops, MACs, plan-cache behaviour) at
exact equality while holding **timings** to a configurable tolerance
band.  See ``docs/benchmarks.md`` for the suite catalog and the
baseline-update workflow.
"""

from .compare import (
    EXIT_CLEAN,
    EXIT_REGRESSIONS,
    EXIT_USAGE,
    ComparisonReport,
    MetricDelta,
    compare_records,
)
from .record import (
    SCHEMA_VERSION,
    BenchRecord,
    CaseRecord,
    RecordError,
    environment_metadata,
    git_revision,
)
from .registry import (
    SUITES,
    BenchCase,
    BenchRegistry,
    CaseOutput,
    UnknownCaseError,
    default_registry,
)
from .runner import BenchRunner, NondeterministicCaseError

__all__ = [
    "SCHEMA_VERSION",
    "SUITES",
    "EXIT_CLEAN",
    "EXIT_REGRESSIONS",
    "EXIT_USAGE",
    "BenchCase",
    "BenchRecord",
    "BenchRegistry",
    "BenchRunner",
    "CaseOutput",
    "CaseRecord",
    "ComparisonReport",
    "MetricDelta",
    "NondeterministicCaseError",
    "RecordError",
    "UnknownCaseError",
    "compare_records",
    "default_registry",
    "environment_metadata",
    "git_revision",
]
