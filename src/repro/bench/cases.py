"""The standard benchmark case catalog.

Wraps the repo's existing scenarios as registered cases:

* ``planner/*`` — the DiTile scheduler stages (Algorithm 1 tiling,
  ``Ps``/``Pv`` parallelism search, Algorithm 2 balance placement);
* ``models/*`` / ``graphs/*`` — the planner's two measured hot paths
  (Eq. 17 vertex-workload estimation, snapshot edge-delta measurement);
* ``simulator/*`` — the Fig. 7-9 cost models: all five accelerators
  simulated on one Table 1 dataset (cycles, DRAM bytes, NoC byte-hops,
  MACs, energy);
* ``serving/*`` — the online streaming service (window counts,
  plan-cache hit/miss/replan/eviction counters, modeled cycles, plus
  throughput/latency timings).

Every case fixes its seeds and scales, so its counters are pure
functions of the code — which is what lets CI gate them at exact
equality.  Dataset synthesis is cached process-wide by the experiment
runner, so the first (warmup) execution pays it and timed repeats
measure only the scenario itself.
"""

from __future__ import annotations

from typing import Dict

from ..accel.metrics import SimulationResult
from ..baselines.algorithms import measure_quantities
from ..core.comm_model import WorkloadProfile
from ..core.parallelism import ParallelismOptimizer
from ..core.plan import DGNNSpec
from ..core.tiling import subgraph_tiling
from ..experiments.runner import ExperimentConfig, ExperimentRunner
from ..models.workload import dynamic_vertex_workload
from .registry import BenchRegistry, CaseOutput

__all__ = ["register_all"]

#: the smallest Table 1 graph — the smoke suite's standard workload
SMOKE_DATASET = "pubmed"
#: datasets the nightly ``full`` suite sweeps the simulator over
FULL_DATASETS = ("pubmed", "wikipedia", "twitter", "reddit", "mobile", "flicker")

_ABBREV = {
    "pubmed": "pm",
    "wikipedia": "wd",
    "twitter": "tw",
    "reddit": "rd",
    "mobile": "mb",
    "flicker": "fk",
}


def _runner() -> ExperimentRunner:
    """A fresh experiment runner on the default reproduction config."""
    return ExperimentRunner(ExperimentConfig())


def _result_counters(name: str, result: SimulationResult) -> Dict[str, float]:
    """The deterministic per-accelerator metrics of one simulation."""
    return {
        f"{name}.execution_cycles": result.execution_cycles,
        f"{name}.dram_bytes": result.dram_bytes,
        f"{name}.noc_byte_hops": result.noc_byte_hops,
        f"{name}.total_macs": result.total_macs,
        f"{name}.energy_joules": result.energy_joules,
    }


# ---------------------------------------------------------------------------
# Planner cases
# ---------------------------------------------------------------------------
def planner_tiling(dataset: str) -> CaseOutput:
    """Algorithm 1's subgraph-tiling search on one dataset."""
    runner = _runner()
    graph = runner.graph(dataset)
    spec = runner.spec(dataset)
    tiling = subgraph_tiling(
        graph.stats(),
        float(runner.hardware.distributed_buffer_bytes),
        feature_dim=spec.feature_dim,
        output_dim=spec.embedding_dim,
    )
    return CaseOutput(
        counters={
            "alpha": float(tiling.alpha),
            "dram_access_rows": tiling.dram_access,
            "data_volume_bytes": tiling.data_volume_bytes,
        }
    )


def planner_parallelism(dataset: str) -> CaseOutput:
    """Algorithm 1's ``Ps``/``Pv`` grid search (Eq. 7 communication)."""
    runner = _runner()
    graph = runner.graph(dataset)
    spec = runner.spec(dataset)
    tiling = subgraph_tiling(
        graph.stats(),
        float(runner.hardware.distributed_buffer_bytes),
        feature_dim=spec.feature_dim,
        output_dim=spec.embedding_dim,
    )
    profile = WorkloadProfile.from_graph(
        graph, spec.num_gnn_layers, alpha=tiling.alpha
    )
    strategy = ParallelismOptimizer(profile, runner.hardware.total_tiles).optimize()
    return CaseOutput(
        counters={
            "snapshot_groups": float(strategy.factors.snapshot_groups),
            "vertex_groups": float(strategy.factors.vertex_groups),
            "temporal_comm_rows": strategy.breakdown.temporal,
            "rf_spatial_comm_rows": strategy.breakdown.rf_spatial,
            "reuse_comm_rows": strategy.breakdown.reuse,
            "total_comm_rows": strategy.total_comm,
        }
    )


def planner_placement(dataset: str) -> CaseOutput:
    """The full scheduler pipeline: tiling + parallelism + Algorithm 2."""
    runner = _runner()
    graph = runner.graph(dataset)
    spec = runner.spec(dataset)
    plan = runner.ditile().plan(graph, spec)
    return CaseOutput(
        counters={
            "alpha": float(plan.tiling.alpha),
            "snapshot_groups": float(plan.factors.snapshot_groups),
            "vertex_groups": float(plan.factors.vertex_groups),
            "utilization": plan.workload.utilization,
            "imbalance": plan.workload.imbalance,
            "total_comm_rows": plan.comm.total,
        }
    )


# ---------------------------------------------------------------------------
# Hot-path cases
# ---------------------------------------------------------------------------
def workload_estimation(dataset: str) -> CaseOutput:
    """Eq. 17 per-vertex workload estimation over every snapshot."""
    runner = _runner()
    graph = runner.graph(dataset)
    spec = runner.spec(dataset)
    vload = dynamic_vertex_workload(graph, spec.num_gnn_layers)
    return CaseOutput(
        counters={
            "vertices": float(len(vload)),
            "vload_total": float(vload.sum()),
            "vload_max": float(vload.max()),
        }
    )


def snapshot_delta_measurement(dataset: str) -> CaseOutput:
    """Exact edge-delta measurement across all snapshot transitions."""
    runner = _runner()
    graph = runner.graph(dataset)
    quantities = measure_quantities(graph)
    added = float(sum(q.added_edges for q in quantities[1:]))
    removed = float(sum(q.removed_edges for q in quantities[1:]))
    dis_sum = sum(q.dissimilarity for q in quantities[1:])
    transitions = max(len(quantities) - 1, 1)
    return CaseOutput(
        counters={
            "snapshots": float(len(quantities)),
            "added_edges": added,
            "removed_edges": removed,
            "mean_dissimilarity": dis_sum / transitions,
        }
    )


# ---------------------------------------------------------------------------
# Simulator cases
# ---------------------------------------------------------------------------
def simulator_compare(dataset: str) -> CaseOutput:
    """All five accelerators (four baselines + DiTile) on one dataset.

    Covers the Fig. 7 (MACs), Fig. 8 (DRAM), and Fig. 9 (cycles)
    deterministic metrics in one pass.
    """
    runner = _runner()
    results = runner.compare(dataset)
    counters: Dict[str, float] = {}
    for name in sorted(results):
        counters.update(_result_counters(name, results[name]))
    return CaseOutput(counters=counters)


# ---------------------------------------------------------------------------
# Serving case
# ---------------------------------------------------------------------------
def serving_throughput(
    num_events: int, num_vertices: int, num_windows: int, workers: int
) -> CaseOutput:
    """The online streaming service over a synthetic power-law stream.

    Deterministic counters cover the served-window accounting and the
    plan cache (resolution is sequential in window order by design, so
    hit/miss/replan/eviction counts do not depend on worker timing);
    throughput and latency land in the timing class.
    """
    from ..ditile import DiTileAccelerator
    from ..serving import ServiceConfig, StreamingService, synthetic_event_stream

    stream = synthetic_event_stream(
        num_vertices=num_vertices, num_events=num_events, seed=7
    )
    first, last = stream.time_span
    config = ServiceConfig(
        window=(last - first) / num_windows,
        workers=workers,
        max_batch_windows=4,
        queue_capacity=8,
    )
    spec = DGNNSpec.classic(64)
    report = StreamingService(DiTileAccelerator(), config).serve(stream, spec)
    stats = report.stats
    return CaseOutput(
        counters={
            "windows": float(stats.windows),
            "events": float(stats.events),
            "late_events": float(stats.late_events),
            "plan_hits": float(stats.plan_hits),
            "plan_misses": float(stats.plan_misses),
            "plan_replans": float(stats.plan_replans),
            "plan_evictions": float(stats.plan_evictions),
            "plan_cache_size": float(stats.plan_cache_size),
            "total_cycles": report.total_cycles,
        },
        timings={
            "elapsed_s": stats.elapsed_s,
            "events_per_sec": stats.events_per_sec,
            "p50_latency_s": stats.p50_latency_s,
            "p95_latency_s": stats.p95_latency_s,
        },
    )


def serving_pipeline(
    num_events: int,
    num_vertices: int,
    num_windows: int,
    workers: int,
    pipeline_depth: int,
) -> CaseOutput:
    """The overlapped window pipeline at an explicit depth.

    Counters must equal the ``serving/throughput`` analogue on the same
    stream parameters at any depth — the bench gate is a standing
    replay of the pipeline-parity guarantee (``profile_reuses`` is also
    deterministic: it counts empty-delta windows, a property of the
    stream discretization, not of timing).  The pipeline-specific
    timings expose how much execution the overlap hides:
    ``collect_stall_s`` (execution time left on the critical path)
    should sit well below ``execute_s`` (the serialized stage time),
    i.e. ``overlap_ratio`` near 1.
    """
    from ..ditile import DiTileAccelerator
    from ..serving import ServiceConfig, StreamingService, synthetic_event_stream

    stream = synthetic_event_stream(
        num_vertices=num_vertices, num_events=num_events, seed=7
    )
    first, last = stream.time_span
    config = ServiceConfig(
        window=(last - first) / num_windows,
        workers=workers,
        max_batch_windows=4,
        pipeline_depth=pipeline_depth,
        queue_capacity=8,
    )
    spec = DGNNSpec.classic(64)
    report = StreamingService(DiTileAccelerator(), config).serve(stream, spec)
    stats = report.stats
    return CaseOutput(
        counters={
            "windows": float(stats.windows),
            "events": float(stats.events),
            "late_events": float(stats.late_events),
            "plan_hits": float(stats.plan_hits),
            "plan_misses": float(stats.plan_misses),
            "plan_replans": float(stats.plan_replans),
            "plan_evictions": float(stats.plan_evictions),
            "plan_cache_size": float(stats.plan_cache_size),
            "total_cycles": report.total_cycles,
            "pipeline_depth": float(stats.pipeline_depth),
            "profile_reuses": float(stats.profile_reuses),
        },
        timings={
            "elapsed_s": stats.elapsed_s,
            "events_per_sec": stats.events_per_sec,
            "p50_latency_s": stats.p50_latency_s,
            "p95_latency_s": stats.p95_latency_s,
            "execute_s": stats.execute_s,
            "prefetch_stall_s": stats.prefetch_stall_s,
            "collect_stall_s": stats.collect_stall_s,
            "overlap_ratio": stats.overlap_ratio,
        },
    )


def serving_sharded(
    num_events: int, num_vertices: int, num_windows: int, shards: int
) -> CaseOutput:
    """The sharded multi-process service over the same synthetic stream.

    Every counter here must equal its ``serving/throughput`` analogue on
    the same stream parameters — the bench gate doubles as a standing
    parity check — plus the dist-only invariants: shard subgraph edges
    sum to the global edge count (``cut_edges_final`` tracks the split)
    and a healthy run performs zero restarts.
    """
    from ..dist import ShardedConfig, ShardedService
    from ..ditile import DiTileAccelerator
    from ..serving import ServiceConfig, synthetic_event_stream

    stream = synthetic_event_stream(
        num_vertices=num_vertices, num_events=num_events, seed=7
    )
    first, last = stream.time_span
    config = ShardedConfig(
        shards=shards,
        service=ServiceConfig(
            window=(last - first) / num_windows,
            workers=2,
            max_batch_windows=4,
            queue_capacity=8,
        ),
    )
    spec = DGNNSpec.classic(64)
    service = ShardedService(DiTileAccelerator(), config)
    report = service.serve(stream, spec)
    stats = report.stats
    return CaseOutput(
        counters={
            "windows": float(stats.windows),
            "events": float(stats.events),
            "late_events": float(stats.late_events),
            "plan_hits": float(stats.plan_hits),
            "plan_misses": float(stats.plan_misses),
            "plan_replans": float(stats.plan_replans),
            "plan_evictions": float(stats.plan_evictions),
            "plan_cache_size": float(stats.plan_cache_size),
            "total_cycles": report.total_cycles,
            "shards": float(stats.shards),
            "restarts": float(stats.restarts),
            "cut_edges_final": float(stats.cut_edges_final),
        },
        timings={
            "elapsed_s": stats.elapsed_s,
            "events_per_sec": stats.events_per_sec,
            "p50_latency_s": stats.p50_latency_s,
            "p95_latency_s": stats.p95_latency_s,
        },
    )


def serving_traced(
    num_events: int, num_vertices: int, num_windows: int, shards: int
) -> CaseOutput:
    """The sharded service under the tracer — the tracer-overhead gate.

    Counters replay the ``serving/sharded`` parity set (tracing must not
    perturb served results) plus the telemetry reconciliation: the
    ``shard.events`` / ``shard.windows`` counters folded across every
    shard's flushed registry must equal the served totals exactly, and
    the canonical merged shard-span log has a deterministic line count.
    Wall-clock timings land in the banded class, so a tracer hot-path
    regression shows up as an elapsed-time drift against the baseline.
    """
    from ..dist import ShardedConfig, ShardedService
    from ..ditile import DiTileAccelerator
    from ..obs import TraceSession, aggregate_shard_counters, shard_span_lines
    from ..serving import ServiceConfig, synthetic_event_stream

    stream = synthetic_event_stream(
        num_vertices=num_vertices, num_events=num_events, seed=7
    )
    first, last = stream.time_span
    config = ShardedConfig(
        shards=shards,
        service=ServiceConfig(
            window=(last - first) / num_windows,
            workers=2,
            max_batch_windows=4,
            queue_capacity=8,
        ),
    )
    spec = DGNNSpec.classic(64)
    with TraceSession() as session:
        report = ShardedService(DiTileAccelerator(), config).serve(stream, spec)
    stats = report.stats
    folded = aggregate_shard_counters(session.tracer)
    return CaseOutput(
        counters={
            "windows": float(stats.windows),
            "events": float(stats.events),
            "total_cycles": report.total_cycles,
            "restarts": float(stats.restarts),
            "shard_batches": float(len(session.tracer.shard_batches)),
            "shard_span_lines": float(len(shard_span_lines(session.tracer))),
            "telemetry_events": folded.get("shard.events", {}).get("total", 0.0),
            "telemetry_windows": folded.get("shard.windows", {}).get(
                "total", 0.0
            ),
        },
        timings={
            "elapsed_s": stats.elapsed_s,
            "events_per_sec": stats.events_per_sec,
            "p50_latency_s": stats.p50_latency_s,
            "p95_latency_s": stats.p95_latency_s,
        },
    )


# ---------------------------------------------------------------------------
# Registration
# ---------------------------------------------------------------------------
def register_all(registry: BenchRegistry) -> None:
    """Install the standard catalog into ``registry``."""

    def per_dataset(area_name, fn, datasets, smoke_dataset, description):
        for dataset in datasets:
            tag = _ABBREV[dataset]
            suites = ("smoke", "full") if dataset == smoke_dataset else ("full",)
            registry.register(
                f"{area_name}[{tag}]",
                (lambda d=dataset: fn(d)),
                suites=suites,
                params={"dataset": dataset},
                description=description,
            )

    per_dataset(
        "planner/tiling", planner_tiling, (SMOKE_DATASET, "wikipedia"),
        SMOKE_DATASET, "Algorithm 1 subgraph-tiling search",
    )
    per_dataset(
        "planner/parallelism", planner_parallelism, (SMOKE_DATASET, "wikipedia"),
        SMOKE_DATASET, "Ps/Pv parallelization grid search (Eq. 7)",
    )
    per_dataset(
        "planner/placement", planner_placement, (SMOKE_DATASET, "wikipedia"),
        SMOKE_DATASET, "full scheduler pipeline incl. Algorithm 2 balance",
    )
    per_dataset(
        "models/vertex-workload", workload_estimation, (SMOKE_DATASET, "reddit"),
        SMOKE_DATASET, "Eq. 17 label-aggregation workload estimation",
    )
    per_dataset(
        "graphs/snapshot-delta", snapshot_delta_measurement,
        (SMOKE_DATASET, "wikipedia"),
        SMOKE_DATASET, "exact edge deltas across snapshot transitions",
    )
    per_dataset(
        "simulator/compare", simulator_compare, FULL_DATASETS,
        SMOKE_DATASET, "five-accelerator simulation (Figs. 7-9 metrics)",
    )

    registry.register(
        "serving/throughput[smoke]",
        lambda: serving_throughput(
            num_events=3_000, num_vertices=128, num_windows=16, workers=2
        ),
        suites=("smoke", "full"),
        params={
            "num_events": 3_000, "num_vertices": 128,
            "num_windows": 16, "workers": 2,
        },
        description="online streaming service, CI-sized stream",
    )
    registry.register(
        "serving/throughput[standard]",
        lambda: serving_throughput(
            num_events=12_000, num_vertices=256, num_windows=48, workers=2
        ),
        suites=("full",),
        params={
            "num_events": 12_000, "num_vertices": 256,
            "num_windows": 48, "workers": 2,
        },
        description="online streaming service, BENCH_serving.json stream",
    )
    registry.register(
        "serving/pipeline[smoke]",
        lambda: serving_pipeline(
            num_events=3_000, num_vertices=128, num_windows=16,
            workers=2, pipeline_depth=4,
        ),
        suites=("smoke", "full"),
        params={
            "num_events": 3_000, "num_vertices": 128, "num_windows": 16,
            "workers": 2, "pipeline_depth": 4,
        },
        description="overlapped window pipeline, depth 4 (parity + stall gate)",
    )
    registry.register(
        "serving/pipeline[standard]",
        lambda: serving_pipeline(
            num_events=12_000, num_vertices=256, num_windows=48,
            workers=2, pipeline_depth=4,
        ),
        suites=("full",),
        params={
            "num_events": 12_000, "num_vertices": 256, "num_windows": 48,
            "workers": 2, "pipeline_depth": 4,
        },
        description="overlapped window pipeline on the standard stream",
    )
    registry.register(
        "serving/sharded[smoke]",
        lambda: serving_sharded(
            num_events=1_500, num_vertices=64, num_windows=10, shards=2
        ),
        suites=("smoke", "full"),
        params={
            "num_events": 1_500, "num_vertices": 64,
            "num_windows": 10, "shards": 2,
        },
        description="sharded multi-process service, CI-sized stream",
    )
    registry.register(
        "serving/traced[smoke]",
        lambda: serving_traced(
            num_events=1_500, num_vertices=64, num_windows=10, shards=2
        ),
        suites=("smoke", "full"),
        params={
            "num_events": 1_500, "num_vertices": 64,
            "num_windows": 10, "shards": 2,
        },
        description="sharded service under the tracer (overhead gate)",
    )
    registry.register(
        "serving/sharded[standard]",
        lambda: serving_sharded(
            num_events=6_000, num_vertices=128, num_windows=24, shards=4
        ),
        suites=("full",),
        params={
            "num_events": 6_000, "num_vertices": 128,
            "num_windows": 24, "shards": 4,
        },
        description="sharded multi-process service, 4-shard stream",
    )
