"""Baseline comparison with per-metric-class tolerances.

Comparison semantics mirror the two metric classes of
:mod:`repro.bench.record`:

* **counters** are gated at exact equality — they are deterministic
  analytic quantities, so *any* drift is a real behaviour change and the
  compare fails (exit 1).  Missing or extra cases/counters also fail:
  they mean the catalog changed and the committed baselines must be
  regenerated deliberately (``repro bench run --update-baselines``).
* **timings** are compared against a relative tolerance band.
  Slowdowns beyond the band are reported as violations but only affect
  the exit code when ``gate_timings`` is set — shared CI runners are too
  noisy to gate wall-clock by default.

Exit-code contract (mirrors ``repro lint``): 0 clean, 1 regressions,
2 usage error (unreadable/invalid record files — raised as
:class:`~repro.bench.record.RecordError` by the loaders and mapped by
the CLI).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .record import BenchRecord

__all__ = [
    "EXIT_CLEAN",
    "EXIT_REGRESSIONS",
    "EXIT_USAGE",
    "MetricDelta",
    "ComparisonReport",
    "compare_records",
]

EXIT_CLEAN = 0
EXIT_REGRESSIONS = 1
EXIT_USAGE = 2

#: statuses that gate the exit code unconditionally
_COUNTER_FAILURES = {"regressed", "missing", "extra"}


@dataclass(frozen=True)
class MetricDelta:
    """One compared metric (or case-presence check) and its verdict."""

    case: str
    metric: str  # "" for case-presence deltas
    kind: str  # "case" | "counter" | "timing"
    status: str  # ok | regressed | missing | extra | slower | faster | new
    baseline: Optional[float] = None
    current: Optional[float] = None

    @property
    def relative_change(self) -> Optional[float]:
        """``current / baseline - 1`` where well-defined."""
        if self.baseline is None or self.current is None or self.baseline == 0:
            return None
        return self.current / self.baseline - 1.0

    def describe(self) -> str:
        """One formatted report line."""
        label = f"{self.case}" + (f" :: {self.metric}" if self.metric else "")
        rel = self.relative_change
        change = f" ({rel:+.2%})" if rel is not None else ""
        values = ""
        if self.baseline is not None or self.current is not None:
            values = f": {self.baseline!r} -> {self.current!r}{change}"
        return f"[{self.kind}] {self.status:<9} {label}{values}"


@dataclass
class ComparisonReport:
    """Outcome of one baseline/current comparison."""

    deltas: List[MetricDelta] = field(default_factory=list)
    timing_tolerance: float = 0.25
    gate_timings: bool = False
    cases_compared: int = 0
    counters_compared: int = 0
    timings_compared: int = 0

    @property
    def counter_failures(self) -> List[MetricDelta]:
        """Deterministic-counter and case-presence failures (always gate)."""
        return [
            d
            for d in self.deltas
            if d.kind in ("counter", "case") and d.status in _COUNTER_FAILURES
        ]

    @property
    def timing_violations(self) -> List[MetricDelta]:
        """Timings slower than the tolerance band (gate only if asked)."""
        return [d for d in self.deltas if d.kind == "timing" and d.status == "slower"]

    @property
    def exit_code(self) -> int:
        """The 0/1 verdict (2 is reserved for usage errors in the CLI)."""
        if self.counter_failures:
            return EXIT_REGRESSIONS
        if self.gate_timings and self.timing_violations:
            return EXIT_REGRESSIONS
        return EXIT_CLEAN

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render_text(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"bench compare: {self.cases_compared} cases, "
            f"{self.counters_compared} counters exact-checked, "
            f"{self.timings_compared} timings "
            f"(tolerance {self.timing_tolerance:.0%}, "
            f"{'gated' if self.gate_timings else 'not gated'})"
        ]
        notable = [d for d in self.deltas if d.status != "ok"]
        for delta in notable:
            lines.append("  " + delta.describe())
        if self.counter_failures:
            lines.append(
                f"FAIL: {len(self.counter_failures)} deterministic-counter "
                "regression(s); if the change is intended, regenerate with "
                "`repro bench run --update-baselines`"
            )
        elif self.gate_timings and self.timing_violations:
            lines.append(
                f"FAIL: {len(self.timing_violations)} timing regression(s) "
                f"beyond the {self.timing_tolerance:.0%} band"
            )
        else:
            suffix = ""
            if self.timing_violations:
                suffix = (
                    f" ({len(self.timing_violations)} timing slowdown(s) "
                    "reported, not gated)"
                )
            lines.append("OK: deterministic counters match the baseline" + suffix)
        return "\n".join(lines)

    def render_json(self) -> str:
        """Machine-readable report (stable key order)."""
        payload = {
            "cases_compared": self.cases_compared,
            "counters_compared": self.counters_compared,
            "timings_compared": self.timings_compared,
            "timing_tolerance": self.timing_tolerance,
            "gate_timings": self.gate_timings,
            "exit_code": self.exit_code,
            "deltas": [
                {
                    "case": d.case,
                    "metric": d.metric,
                    "kind": d.kind,
                    "status": d.status,
                    "baseline": d.baseline,
                    "current": d.current,
                }
                for d in self.deltas
                if d.status != "ok"
            ],
        }
        return json.dumps(payload, indent=2, sort_keys=True)


def _compare_counters(
    case: str,
    baseline: Dict[str, float],
    current: Dict[str, float],
    report: ComparisonReport,
) -> None:
    for metric in sorted(set(baseline) | set(current)):
        base, cur = baseline.get(metric), current.get(metric)
        if base is None:
            status = "extra"
        elif cur is None:
            status = "missing"
        elif base == cur:
            status = "ok"
            report.counters_compared += 1
        else:
            status = "regressed"
            report.counters_compared += 1
        report.deltas.append(
            MetricDelta(case, metric, "counter", status, base, cur)
        )


def _compare_timings(
    case: str,
    baseline: Dict[str, float],
    current: Dict[str, float],
    tolerance: float,
    report: ComparisonReport,
) -> None:
    for metric in sorted(set(baseline) | set(current)):
        base, cur = baseline.get(metric), current.get(metric)
        if base is None or cur is None:
            # The timing metric set changed with the code; informational.
            report.deltas.append(
                MetricDelta(case, metric, "timing", "new", base, cur)
            )
            continue
        report.timings_compared += 1
        if base <= 0:
            status = "ok"
        elif cur > base * (1.0 + tolerance):
            status = "slower"
        elif cur < base * (1.0 - tolerance):
            status = "faster"
        else:
            status = "ok"
        report.deltas.append(MetricDelta(case, metric, "timing", status, base, cur))


def compare_records(
    baseline: BenchRecord,
    current: BenchRecord,
    *,
    timing_tolerance: float = 0.25,
    gate_timings: bool = False,
) -> ComparisonReport:
    """Compare ``current`` against ``baseline`` per the class semantics."""
    if timing_tolerance < 0:
        raise ValueError("timing_tolerance must be >= 0")
    report = ComparisonReport(
        timing_tolerance=timing_tolerance, gate_timings=gate_timings
    )
    base_names = set(baseline.case_names)
    cur_names = set(current.case_names)
    for name in sorted(base_names | cur_names):
        base_case = baseline.case(name)
        cur_case = current.case(name)
        if cur_case is None:
            report.deltas.append(MetricDelta(name, "", "case", "missing"))
            continue
        if base_case is None:
            report.deltas.append(MetricDelta(name, "", "case", "extra"))
            continue
        report.cases_compared += 1
        _compare_counters(name, base_case.counters, cur_case.counters, report)
        _compare_timings(
            name, base_case.timings, cur_case.timings, timing_tolerance, report
        )
    return report
