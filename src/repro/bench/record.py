"""Structured benchmark records: metrics, environment metadata, JSON I/O.

A bench run produces one :class:`BenchRecord` holding one
:class:`CaseRecord` per executed case.  Every case separates its metrics
into two classes with different comparison semantics
(:mod:`repro.bench.compare`):

* **counters** — deterministic analytic quantities (cycles, DRAM bytes,
  NoC byte-hops, MACs, plan-cache hits/misses/evictions).  Pure functions
  of the workload, so baselines gate them at exact equality.
* **timings** — wall-clock measurements (medians over the run's repeats).
  Machine-dependent; compared against a configurable tolerance band and
  never exact-gated.

Records serialize to stable JSON (sorted keys, fixed indent) so committed
baselines diff cleanly and two runs differ only in their timings.
"""

from __future__ import annotations

import json
import platform
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

__all__ = [
    "SCHEMA_VERSION",
    "RecordError",
    "git_revision",
    "environment_metadata",
    "CaseRecord",
    "BenchRecord",
]

#: bump when the record layout changes incompatibly
SCHEMA_VERSION = 1


class RecordError(ValueError):
    """A record file could not be read or does not follow the schema."""


def git_revision(cwd: Optional[Path] = None) -> Optional[str]:
    """The current git commit sha, or ``None`` outside a checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    sha = proc.stdout.strip()
    return sha or None


def environment_metadata() -> Dict[str, Optional[str]]:
    """Provenance of a bench run: interpreter, numpy, platform, commit."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "git_sha": git_revision(Path(__file__).resolve().parent),
    }


def _require(mapping: Mapping[str, Any], key: str, context: str) -> Any:
    if key not in mapping:
        raise RecordError(f"{context} is missing required key {key!r}")
    return mapping[key]


def _metric_map(raw: Any, context: str) -> Dict[str, float]:
    if not isinstance(raw, Mapping):
        raise RecordError(f"{context} must be an object of name -> number")
    metrics: Dict[str, float] = {}
    for name, value in raw.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise RecordError(
                f"{context}[{name!r}] must be a number, got {type(value).__name__}"
            )
        metrics[str(name)] = float(value)
    return metrics


@dataclass(frozen=True)
class CaseRecord:
    """One benchmark case's measured metrics plus its run parameters."""

    name: str
    suites: Tuple[str, ...]
    params: Dict[str, Any] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)
    repeats: int = 1
    warmup: int = 0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready mapping (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "suites": sorted(self.suites),
            "params": dict(self.params),
            "counters": dict(self.counters),
            "timings": dict(self.timings),
            "repeats": self.repeats,
            "warmup": self.warmup,
        }

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "CaseRecord":
        """Validate and rebuild a case record from parsed JSON."""
        name = str(_require(raw, "name", "case record"))
        context = f"case {name!r}"
        return cls(
            name=name,
            suites=tuple(raw.get("suites", ())),
            params=dict(raw.get("params", {})),
            counters=_metric_map(_require(raw, "counters", context), f"{context} counters"),
            timings=_metric_map(raw.get("timings", {}), f"{context} timings"),
            repeats=int(raw.get("repeats", 1)),
            warmup=int(raw.get("warmup", 0)),
        )


@dataclass
class BenchRecord:
    """Everything one ``repro bench run`` invocation measured."""

    cases: List[CaseRecord]
    suite: Optional[str] = None
    environment: Dict[str, Optional[str]] = field(default_factory=environment_metadata)
    schema: int = SCHEMA_VERSION

    @property
    def case_names(self) -> List[str]:
        """Case names, in record order."""
        return [case.name for case in self.cases]

    def case(self, name: str) -> Optional[CaseRecord]:
        """Look one case up by name (``None`` when absent)."""
        for case in self.cases:
            if case.name == name:
                return case
        return None

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready mapping (inverse of :meth:`from_dict`)."""
        return {
            "schema": self.schema,
            "suite": self.suite,
            "environment": dict(self.environment),
            "cases": [case.to_dict() for case in self.cases],
        }

    def to_json(self) -> str:
        """Stable JSON text: sorted keys, two-space indent, trailing newline."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def save(self, path: "Path | str") -> Path:
        """Write the record to ``path`` and return it."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json())
        return path

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "BenchRecord":
        """Validate and rebuild a record from parsed JSON."""
        if not isinstance(raw, Mapping):
            raise RecordError("bench record must be a JSON object")
        schema = raw.get("schema")
        if schema != SCHEMA_VERSION:
            raise RecordError(
                f"unsupported bench record schema {schema!r} "
                f"(this toolkit reads schema {SCHEMA_VERSION})"
            )
        raw_cases = _require(raw, "cases", "bench record")
        if not isinstance(raw_cases, list):
            raise RecordError("bench record 'cases' must be a list")
        cases = [CaseRecord.from_dict(entry) for entry in raw_cases]
        seen = set()
        for case in cases:
            if case.name in seen:
                raise RecordError(f"duplicate case {case.name!r} in record")
            seen.add(case.name)
        suite = raw.get("suite")
        environment = raw.get("environment", {})
        if not isinstance(environment, Mapping):
            raise RecordError("bench record 'environment' must be an object")
        return cls(
            cases=cases,
            suite=None if suite is None else str(suite),
            environment={str(k): v for k, v in environment.items()},
            schema=int(schema),
        )

    @classmethod
    def load(cls, path: "Path | str") -> "BenchRecord":
        """Read a record file, raising :class:`RecordError` on any problem."""
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise RecordError(f"cannot read bench record {path}: {exc}") from exc
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise RecordError(f"{path} is not valid JSON: {exc}") from exc
        return cls.from_dict(raw)
