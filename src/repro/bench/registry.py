"""Benchmark case registry: named, parameterized, suite-tagged cases.

A case is a zero-argument callable returning a :class:`CaseOutput` —
deterministic counters plus optional extra per-run timing metrics.  The
runner (:mod:`repro.bench.runner`) handles warmup, repetition, timing,
and the cross-repeat determinism check, so case bodies contain only the
workload itself.

Cases are tagged with the suites they belong to (``smoke`` is the fast
CI subset, ``full`` the nightly superset) and registered under stable
``area/name[variant]`` names; the registry returns them sorted by name
so records and baselines keep a stable order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "SUITES",
    "CaseOutput",
    "BenchCase",
    "BenchRegistry",
    "UnknownCaseError",
    "default_registry",
]

#: the suite catalog; ``smoke`` must stay fast enough to gate every PR
SUITES = ("smoke", "full")


class UnknownCaseError(LookupError):
    """A requested case or suite does not exist in the registry."""


@dataclass
class CaseOutput:
    """What one execution of a case body produced.

    ``counters`` are deterministic metrics (exact-gated against
    baselines); ``timings`` are optional wall-clock-derived metrics the
    case measured itself (e.g. a service's events/sec), medianed across
    repeats alongside the runner's own ``run_s``.
    """

    counters: Dict[str, float]
    timings: Dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class BenchCase:
    """One registered benchmark case."""

    name: str
    fn: Callable[[], CaseOutput]
    suites: Tuple[str, ...]
    params: Mapping[str, object]
    description: str = ""

    def __post_init__(self) -> None:
        unknown = [s for s in self.suites if s not in SUITES]
        if unknown:
            raise ValueError(
                f"case {self.name!r} names unknown suites {unknown}; "
                f"known: {SUITES}"
            )


class BenchRegistry:
    """Holds the case catalog and resolves suite/name selections."""

    def __init__(self) -> None:
        self._cases: Dict[str, BenchCase] = {}

    def register(
        self,
        name: str,
        fn: Callable[[], CaseOutput],
        *,
        suites: Iterable[str] = ("full",),
        params: Optional[Mapping[str, object]] = None,
        description: str = "",
    ) -> BenchCase:
        """Add one case; names must be unique."""
        if name in self._cases:
            raise ValueError(f"benchmark case {name!r} is already registered")
        case = BenchCase(
            name=name,
            fn=fn,
            suites=tuple(suites),
            params=dict(params or {}),
            description=description,
        )
        self._cases[name] = case
        return case

    @property
    def names(self) -> List[str]:
        """All registered case names, sorted."""
        return sorted(self._cases)

    def get(self, name: str) -> BenchCase:
        """Look one case up, raising :class:`UnknownCaseError` if absent."""
        try:
            return self._cases[name]
        except KeyError:
            raise UnknownCaseError(
                f"unknown benchmark case {name!r}; known: {', '.join(self.names)}"
            ) from None

    def select(
        self,
        suite: Optional[str] = None,
        names: Optional[Iterable[str]] = None,
    ) -> List[BenchCase]:
        """Cases for a suite and/or an explicit name list, sorted by name.

        With ``names`` given, the suite filter is ignored — explicit
        selection wins.  With neither, every registered case is returned.
        """
        if names is not None:
            return sorted((self.get(n) for n in names), key=lambda c: c.name)
        if suite is not None:
            if suite not in SUITES:
                raise UnknownCaseError(
                    f"unknown suite {suite!r}; known: {', '.join(SUITES)}"
                )
            selected = [c for c in self._cases.values() if suite in c.suites]
        else:
            selected = list(self._cases.values())
        return sorted(selected, key=lambda c: c.name)


_DEFAULT: Optional[BenchRegistry] = None


def default_registry() -> BenchRegistry:
    """The process-wide registry with the repo's standard cases loaded."""
    global _DEFAULT
    if _DEFAULT is None:
        from . import cases

        registry = BenchRegistry()
        cases.register_all(registry)
        _DEFAULT = registry
    return _DEFAULT
