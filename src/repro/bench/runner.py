"""The benchmark runner: warmup / repeat / median, determinism-checked.

Execution protocol per case:

1. ``warmup`` untimed executions (the first one pays dataset synthesis,
   which the experiment runner caches process-wide);
2. ``repeats`` timed executions via
   :func:`repro.serving.stats.timed_call` — the serving layer's
   sanctioned wall-clock read;
3. the counters of every execution (warmup included) are compared for
   exact equality — a case whose "deterministic" counters drift within
   one process is broken, and the run fails loudly with
   :class:`NondeterministicCaseError` rather than recording garbage;
4. ``run_s`` is the nearest-rank median of the timed executions, and any
   case-provided timing metrics are medianed the same way.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Union

from ..obs import TraceSession
from ..serving.stats import median, timed_call
from .record import BenchRecord, CaseRecord, environment_metadata
from .registry import BenchCase, BenchRegistry, CaseOutput, default_registry

__all__ = ["NondeterministicCaseError", "BenchRunner", "case_stem"]


def case_stem(name: str) -> str:
    """A filesystem-safe stem for a case name (``planner/tiling[pm]`` ...)."""
    return re.sub(r"[^A-Za-z0-9._-]+", "_", name).strip("_")


class NondeterministicCaseError(RuntimeError):
    """A case produced different deterministic counters across executions."""

    def __init__(self, case: str, metric: str, first: float, other: float):
        super().__init__(
            f"case {case!r} is not deterministic: counter {metric!r} "
            f"changed between executions ({first!r} != {other!r})"
        )
        self.case = case
        self.metric = metric


def _check_counters(case: str, first: Dict[str, float], other: Dict[str, float]) -> None:
    """Exact cross-execution equality of the deterministic counters."""
    for metric in sorted(set(first) | set(other)):
        a, b = first.get(metric), other.get(metric)
        if a is None or b is None or a != b:
            raise NondeterministicCaseError(
                case, metric, float("nan") if a is None else a,
                float("nan") if b is None else b,
            )


class BenchRunner:
    """Runs a case selection and assembles a :class:`BenchRecord`."""

    def __init__(
        self,
        registry: Optional[BenchRegistry] = None,
        *,
        repeats: int = 3,
        warmup: int = 1,
        progress: Optional[Callable[[str], None]] = None,
        trace_dir: Optional[Union[str, Path]] = None,
    ):
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        if warmup < 0:
            raise ValueError("warmup must be >= 0")
        self.registry = registry if registry is not None else default_registry()
        self.repeats = repeats
        self.warmup = warmup
        self._progress = progress
        self.trace_dir = Path(trace_dir) if trace_dir is not None else None

    def _note(self, message: str) -> None:
        if self._progress is not None:
            self._progress(message)

    def run_case(self, case: BenchCase) -> CaseRecord:
        """Execute one case under the warmup/repeat/median protocol.

        With ``trace_dir`` set the whole case (warmup included) runs under
        a :class:`~repro.obs.TraceSession`, leaving a per-case Chrome
        trace, span log, and phase report behind.  Tracing never feeds the
        record: the deterministic counters are bit-identical either way
        (asserted by ``tests/test_obs_integration.py``).
        """
        if self.trace_dir is None:
            return self._run_case(case)
        with TraceSession(
            self.trace_dir, name=case.name, stem=case_stem(case.name)
        ) as session:
            record = self._run_case(case)
        self._note(f"    trace: {session.written['trace']}")
        return record

    def _run_case(self, case: BenchCase) -> CaseRecord:
        reference: Optional[CaseOutput] = None
        for _ in range(self.warmup):
            output = case.fn()
            if reference is None:
                reference = output
            else:
                _check_counters(case.name, reference.counters, output.counters)
        samples: List[float] = []
        timing_series: Dict[str, List[float]] = {}
        for _ in range(self.repeats):
            output, seconds = timed_call(case.fn)
            if reference is None:
                reference = output
            else:
                _check_counters(case.name, reference.counters, output.counters)
            samples.append(seconds)
            for metric, value in output.timings.items():
                timing_series.setdefault(metric, []).append(value)
        assert reference is not None  # repeats >= 1
        timings = {"run_s": median(samples)}
        for metric, series in sorted(timing_series.items()):
            timings[metric] = median(series)
        return CaseRecord(
            name=case.name,
            suites=case.suites,
            params=dict(case.params),
            counters=dict(reference.counters),
            timings=timings,
            repeats=self.repeats,
            warmup=self.warmup,
        )

    def run(
        self,
        suite: Optional[str] = None,
        names: Optional[Iterable[str]] = None,
    ) -> BenchRecord:
        """Execute a selection and return the structured record."""
        cases = self.registry.select(suite=suite, names=names)
        if not cases:
            raise ValueError(
                f"no benchmark cases selected (suite={suite!r}, names={names!r})"
            )
        records: List[CaseRecord] = []
        for i, case in enumerate(cases, 1):
            self._note(f"[{i}/{len(cases)}] {case.name} ...")
            record = self.run_case(case)
            self._note(
                f"[{i}/{len(cases)}] {case.name}: "
                f"{len(record.counters)} counters, "
                f"run_s={record.timings['run_s']:.4f}"
            )
            records.append(record)
        return BenchRecord(
            cases=records,
            suite=suite,
            environment=environment_metadata(),
        )
