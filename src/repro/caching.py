"""Bounded caches shared across the library.

Long-running workloads — above all the streaming-inference service
(:mod:`repro.serving`) — keep producing new cache keys forever: every
served window has a fresh workload signature, every transition graph a
fresh identity.  Unbounded ``dict`` memoization therefore leaks.  This
module provides the one bounded policy the library standardizes on: a
plain LRU with hit/miss accounting, used by the DiTile plan cache, the
dynamic-graph changed-vertex cache, and the serving plan manager.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Generic, Iterator, Optional, Tuple, TypeVar

__all__ = ["CacheStats", "LRUCache"]

K = TypeVar("K")
V = TypeVar("V")

_MISSING = object()


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """``hits / lookups`` (0.0 before the first lookup)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


class LRUCache(Generic[K, V]):
    """A least-recently-used mapping bounded at ``capacity`` entries.

    ``get`` refreshes recency; ``put`` evicts the stalest entry once the
    bound is exceeded.  ``capacity=None`` disables eviction (an explicit
    opt-out, for call sites whose key space is provably small).
    """

    def __init__(self, capacity: Optional[int] = 128):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.capacity = capacity
        self.stats = CacheStats()
        self._data: "OrderedDict[K, V]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: K) -> bool:
        return key in self._data

    def __iter__(self) -> Iterator[K]:
        return iter(self._data)

    def get(self, key: K, default: Optional[V] = None) -> Optional[V]:
        """The cached value (refreshing recency), or ``default``."""
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.stats.misses += 1
            return default
        self._data.move_to_end(key)
        self.stats.hits += 1
        return value

    def peek(self, key: K, default: Optional[V] = None) -> Optional[V]:
        """Like :meth:`get` but without touching recency or counters."""
        return self._data.get(key, default)

    def put(self, key: K, value: V) -> None:
        """Insert/overwrite ``key``, evicting the LRU entry if over bound."""
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        if self.capacity is not None and len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self.stats.evictions += 1

    def pop(self, key: K, default: Optional[V] = None) -> Optional[V]:
        """Remove and return ``key`` (no counter updates)."""
        return self._data.pop(key, default)

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        self._data.clear()

    def items(self) -> Iterator[Tuple[K, V]]:
        """Iterate ``(key, value)`` pairs, stalest first."""
        return iter(self._data.items())

    def __repr__(self) -> str:
        cap = "inf" if self.capacity is None else str(self.capacity)
        return (
            f"LRUCache(size={len(self._data)}/{cap}, hits={self.stats.hits}, "
            f"misses={self.stats.misses}, evictions={self.stats.evictions})"
        )
