"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``datasets``
    Print the Table 1 dataset registry.
``plan DATASET``
    Run the DiTile scheduler on a dataset and print its decisions.
``compare DATASET``
    Simulate DiTile plus all four baselines and print the comparison.
``reproduce [FIGURE ...]``
    Regenerate evaluation artifacts (default: all of Table 1 / Figs 7-14).
``serve [DATASET]``
    Run the online streaming-inference service over a dataset replay or a
    synthetic event stream and print the service statistics.  ``--wal
    DIR`` makes the run durable (write-ahead event log + checkpoints);
    ``--resume`` recovers a crashed run byte-identically.
``chaos {serve,sweep,recover}``
    Resilience tooling (see ``docs/resilience.md``): ``serve`` replays a
    stream under seeded fault injection (worker crashes, latency, poison
    events, real shard-worker SIGKILLs via ``--sigkill``) and prints the
    deterministic chaos report; ``sweep`` produces the
    slowdown-vs-fault-rate curve comparing the reconfigurable ring+Re-Link
    NoC against a static mesh; ``recover`` SIGKILLs the serving process at
    window boundaries, resumes from the WAL, and byte-compares the results
    against an uninterrupted reference.  ``compare`` and ``serve``
    accept ``--faults SPEC`` to simulate a degraded array.
``trace {plan,compare,serve}``
    Run a workload under the tracer (see ``docs/observability.md``) and
    print the phase breakdown; ``--out DIR`` exports a Perfetto-loadable
    Chrome trace, the raw span log, and the phase report.  ``plan``,
    ``compare``, ``serve``, and ``bench run`` take the same exports via
    their ``--trace DIR`` flag.
``lint [PATH ...]``
    Run the repo's static-analysis suite (determinism, unit-safety,
    thread-safety — see ``docs/static-analysis.md``) over source paths.
``bench {run,compare,list}``
    The deterministic benchmark subsystem (see ``docs/benchmarks.md``):
    run a suite, compare a record against a committed baseline, or list
    the case catalog.
``area``
    Print the Fig. 14 area breakdown.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from .accel.config import HardwareConfig
from .experiments.figures import ALL_FIGURES, figure14
from .experiments.report import format_table
from .experiments.runner import BASELINE_ORDER, ExperimentConfig, ExperimentRunner
from .graphs.datasets import TABLE1_DATASETS

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DiTile-DGNN (ISCA 2025) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list the Table 1 dataset registry")

    plan = sub.add_parser("plan", help="show the DiTile scheduler's plan")
    _add_workload_args(plan)
    _add_trace_arg(plan)
    plan.add_argument(
        "--explain", action="store_true",
        help="print the full decision trace (every grid shape's cost)",
    )

    compare = sub.add_parser("compare", help="simulate all five accelerators")
    _add_workload_args(compare)
    _add_trace_arg(compare)
    _add_faults_arg(compare)

    reproduce = sub.add_parser(
        "reproduce", help="regenerate evaluation tables/figures"
    )
    reproduce.add_argument(
        "figures",
        nargs="*",
        choices=[[], *ALL_FIGURES.keys()],
        help="artifacts to regenerate (default: all)",
    )
    reproduce.add_argument("--scale", type=float, default=0.0625)
    reproduce.add_argument("--snapshots", type=int, default=None)
    reproduce.add_argument("--seed", type=int, default=7)
    reproduce.add_argument(
        "--out", default=None, metavar="DIR",
        help="also export results to DIR (CSV per figure + REPORT.md)",
    )

    serve = sub.add_parser(
        "serve", help="run the online streaming-inference service"
    )
    _add_serve_args(serve)
    _add_slo_args(serve)
    _add_trace_arg(serve)
    _add_faults_arg(serve)
    serve.add_argument(
        "--results-json", default=None, metavar="OUT",
        help="write the deterministic per-window results (JSON) to OUT — "
        "byte-comparable across pipeline depths and shard counts (the CI "
        "pipeline-parity gate)",
    )

    chaos = sub.add_parser(
        "chaos", help="resilience tooling: chaos harness and fault sweeps"
    )
    chaos_sub = chaos.add_subparsers(dest="chaos_command", required=True)
    chaos_serve = chaos_sub.add_parser(
        "serve", help="serve a stream under seeded fault injection"
    )
    _add_serve_args(chaos_serve)
    _add_slo_args(chaos_serve)
    chaos_serve.add_argument(
        "--chaos-seed", type=int, default=11,
        help="chaos schedule seed (same seed -> byte-identical report)",
    )
    chaos_serve.add_argument(
        "--crash-rate", type=float, default=0.2,
        help="per-attempt worker-crash probability",
    )
    chaos_serve.add_argument(
        "--latency-rate", type=float, default=0.1,
        help="per-attempt injected-latency probability",
    )
    chaos_serve.add_argument(
        "--latency-s", type=float, default=0.002,
        help="injected latency duration in seconds",
    )
    chaos_serve.add_argument(
        "--poison-rate", type=float, default=0.02,
        help="per-event malformed-event injection probability",
    )
    chaos_serve.add_argument(
        "--max-attempts", type=int, default=4,
        help="retry budget per window (attempts, including the first)",
    )
    chaos_serve.add_argument(
        "--sigkill", type=int, default=0, metavar="N",
        help="schedule N real SIGKILLs of shard workers (requires "
        "--shards >= 1; kills are seeded and deterministic)",
    )
    chaos_serve.add_argument(
        "--json", default=None, metavar="OUT",
        help="write the deterministic chaos report (JSON) to OUT",
    )
    chaos_recover = chaos_sub.add_parser(
        "recover",
        help="kill-and-resume sweep: SIGKILL the serving process at "
        "window boundaries, resume from the WAL, byte-compare results",
    )
    _add_serve_args(chaos_recover)
    chaos_recover.add_argument(
        "--kill-points", default=None, metavar="K,K,...",
        help="comma-separated window boundaries to kill at "
        "(default: every boundary)",
    )
    chaos_recover.add_argument(
        "--artifacts", default=None, metavar="DIR",
        help="keep WAL/checkpoint artifacts of every kill point in DIR "
        "(failures always keep theirs)",
    )
    chaos_recover.add_argument(
        "--json", default=None, metavar="OUT",
        help="write the deterministic recovery report (JSON) to OUT",
    )
    chaos_sweep = chaos_sub.add_parser(
        "sweep", help="slowdown-vs-fault-rate curve: ring+Re-Link vs mesh"
    )
    _add_workload_args(chaos_sweep)
    chaos_sweep.add_argument(
        "--rates", default="0,0.02,0.05,0.1,0.2", metavar="R,R,...",
        help="comma-separated fault rates (default: 0,0.02,0.05,0.1,0.2)",
    )
    chaos_sweep.add_argument(
        "--fault-seed", type=int, default=11,
        help="fault-sampling seed (fault sets nest across rates)",
    )

    trace = sub.add_parser(
        "trace",
        help="run a workload under the tracer and print its phase breakdown",
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_plan = trace_sub.add_parser(
        "plan", help="trace the DiTile scheduler (Alg. 1/2 phases)"
    )
    _add_workload_args(trace_plan)
    trace_plan.add_argument("--explain", action="store_true",
                            help=argparse.SUPPRESS)
    trace_compare = trace_sub.add_parser(
        "compare", help="trace the five-accelerator comparison"
    )
    _add_workload_args(trace_compare)
    trace_serve = trace_sub.add_parser(
        "serve", help="trace the streaming-inference service"
    )
    _add_serve_args(trace_serve)
    _add_slo_args(trace_serve)
    for p in (trace_plan, trace_compare, trace_serve):
        p.add_argument(
            "--out", default=None, metavar="DIR",
            help="also write trace.json / spans.jsonl / phases.json / "
            "flame.folded (+ shard_spans.jsonl on sharded runs) to DIR",
        )
        p.add_argument(
            "--format", choices=["text", "json"], default="text",
            help="phase-report format (default: text); json rows are "
            "name-sorted, a stable order across runs",
        )
        p.add_argument(
            "--sort", choices=["time", "name"], default="time",
            help="phase-row order for --format text (default: time; "
            "name is stable across runs)",
        )

    slo = sub.add_parser(
        "slo",
        help="serve a stream and evaluate declarative SLO targets "
        "(exit 1 on any violated objective)",
    )
    _add_serve_args(slo)
    _add_slo_args(slo)
    slo.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="report format (default: text)",
    )

    lint = sub.add_parser(
        "lint", help="run the static-analysis suite over source paths"
    )
    lint.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    lint.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text",
        help="report format (default: text)",
    )
    lint.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule ids to run (default: all rules)",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    lint.add_argument(
        "--explain", default=None, metavar="RULE",
        help="print one rule's documentation and example, then exit",
    )
    lint.add_argument(
        "--no-unused-suppressions", action="store_true",
        help="do not report suppressions whose rules never fired (NOQA003)",
    )
    lint.add_argument(
        "--sarif-out", default=None, metavar="FILE",
        help="also write a SARIF 2.1.0 report to FILE (lets CI gate and "
        "upload findings from a single lint run)",
    )

    bench = sub.add_parser(
        "bench", help="deterministic benchmark suite (run/compare/list)"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)

    bench_run = bench_sub.add_parser(
        "run", help="run a benchmark suite and record the results"
    )
    bench_run.add_argument(
        "--suite", choices=["smoke", "full"], default="smoke",
        help="case selection (default: smoke, the CI gate)",
    )
    bench_run.add_argument(
        "--case", action="append", default=None, metavar="NAME", dest="cases",
        help="run only this case (repeatable; overrides --suite)",
    )
    bench_run.add_argument(
        "--json", default=None, metavar="OUT",
        help="write the structured record to OUT",
    )
    bench_run.add_argument(
        "--repeats", type=int, default=3,
        help="timed executions per case (median is recorded; default: 3)",
    )
    bench_run.add_argument(
        "--warmup", type=int, default=1,
        help="untimed executions per case before timing (default: 1)",
    )
    bench_run.add_argument(
        "--trace", default=None, metavar="DIR", dest="trace",
        help="trace every case; writes <case>.trace.json / .spans.jsonl / "
        ".phases.json into DIR",
    )
    bench_run.add_argument(
        "--update-baselines", action="store_true",
        help="also write the record as the suite's committed baseline",
    )
    bench_run.add_argument(
        "--baseline-dir", default="benchmarks/baselines", metavar="DIR",
        help="baseline directory for --update-baselines "
        "(default: benchmarks/baselines)",
    )

    bench_compare = bench_sub.add_parser(
        "compare", help="compare a bench record against a baseline"
    )
    bench_compare.add_argument("baseline", help="baseline record JSON path")
    bench_compare.add_argument("current", help="current record JSON path")
    bench_compare.add_argument(
        "--timing-tolerance", type=float, default=0.25, metavar="FRAC",
        help="relative timing band (default: 0.25 = 25%%)",
    )
    bench_compare.add_argument(
        "--gate-timings", action="store_true",
        help="fail (exit 1) on timing regressions too, not only counters",
    )
    bench_compare.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="report format (default: text)",
    )

    bench_sub.add_parser("list", help="print the benchmark case catalog")

    sub.add_parser("area", help="print the Fig. 14 area breakdown")
    return parser


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("dataset", help="Table 1 name or abbreviation")
    parser.add_argument("--scale", type=float, default=0.0625)
    parser.add_argument("--snapshots", type=int, default=None)
    parser.add_argument("--seed", type=int, default=7)


def _add_faults_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="simulate a degraded array: 'rate=0.1,seed=11' (sampled) or "
        "'tiles=3|7,links=0-1|4-8,relinks=2' (explicit) — "
        "see docs/resilience.md",
    )


def _add_trace_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", default=None, metavar="DIR",
        help="run under the tracer: print the phase breakdown and write "
        "trace.json / spans.jsonl / phases.json to DIR",
    )


def _add_serve_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "dataset", nargs="?", default=None,
        help="Table 1 dataset to replay as an event stream "
        "(omit to serve a synthetic stream)",
    )
    parser.add_argument("--scale", type=float, default=0.0625,
                        help="dataset synthesis scale (dataset mode)")
    parser.add_argument("--snapshots", type=int, default=None,
                        help="dataset snapshot count (dataset mode)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--vertices", type=int, default=256,
                        help="synthetic stream vertex count")
    parser.add_argument("--events", type=int, default=10_000,
                        help="synthetic stream event count")
    parser.add_argument("--remove-fraction", type=float, default=0.15,
                        help="synthetic stream edge-removal share")
    parser.add_argument("--window", type=float, default=None,
                        help="window width in stream time (default: 1.0 for "
                        "dataset replays, span/32 for synthetic streams)")
    parser.add_argument("--drift-threshold", type=float, default=0.25,
                        help="relative workload change that forces a re-plan")
    parser.add_argument("--workers", type=int, default=2,
                        help="simulation worker threads (0 = inline)")
    parser.add_argument("--batch", type=int, default=4,
                        help="max windows grouped per executor batch")
    parser.add_argument("--pipeline-depth", type=int, default=2,
                        help="window batches in flight at once (1 = "
                        "serialized dispatch; results are bit-identical "
                        "at every depth — see docs/serving.md)")
    parser.add_argument("--queue-capacity", type=int, default=8,
                        help="ingest queue bound (backpressure)")
    parser.add_argument("--plan-cache-capacity", type=int, default=32,
                        help="LRU bound of the execution-plan cache")
    parser.add_argument("--hidden-dim", type=int, default=64,
                        help="DGNN hidden width (synthetic mode)")
    parser.add_argument("--shards", type=int, default=0,
                        help="shard the stream over N worker processes "
                        "(0 = single-process; results are bit-identical "
                        "either way — see docs/distributed.md)")
    parser.add_argument("--partition-seed", type=int, default=0,
                        help="consistent-hash partition seed (sharded mode)")
    parser.add_argument("--wal", default=None, metavar="DIR",
                        help="durable ingest: write-ahead-log every event "
                        "and checkpoint every committed window under DIR "
                        "(see docs/resilience.md 'Durability & recovery')")
    parser.add_argument("--resume", action="store_true",
                        help="resume from the newest valid checkpoint in "
                        "--wal DIR, replaying the WAL suffix (results are "
                        "byte-identical to the uninterrupted run)")
    parser.add_argument("--checkpoint-interval", type=int, default=1,
                        help="windows between checkpoints (durable mode)")
    parser.add_argument("--wal-retain", type=int, default=3,
                        help="checkpoints retained on disk (durable mode)")
    parser.add_argument("--kill-after-commit", type=int, default=None,
                        metavar="K",
                        help="chaos hook: SIGKILL this process right after "
                        "window K's commit is durable (durable mode; the "
                        "CI chaos-recovery job)")


def _add_slo_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--p95-latency", type=float, default=0.5, metavar="S",
        help="SLO target: p95 window latency ceiling in seconds "
        "(default: 0.5)",
    )
    parser.add_argument(
        "--max-shed-rate", type=float, default=0.0, metavar="F",
        help="SLO target: shed-window share ceiling (default: 0.0)",
    )
    parser.add_argument(
        "--restart-budget", type=float, default=0.0, metavar="N",
        help="SLO target: worker-restart ceiling (default: 0)",
    )
    parser.add_argument(
        "--overlap-floor", type=float, default=0.0, metavar="F",
        help="SLO target: pipeline overlap-ratio floor (default: 0.0)",
    )
    parser.add_argument(
        "--slo-json", default=None, metavar="OUT",
        help="evaluate the SLO targets and write the health report "
        "(JSON) to OUT",
    )


def _durability_config(args: argparse.Namespace):
    """The :class:`DurabilityConfig` the serve flags describe (or None)."""
    wal = getattr(args, "wal", None)
    if not wal:
        if getattr(args, "resume", False):
            raise SystemExit("--resume requires --wal DIR")
        if getattr(args, "kill_after_commit", None) is not None:
            raise SystemExit("--kill-after-commit requires --wal DIR")
        return None
    from .durability import DurabilityConfig

    return DurabilityConfig(
        directory=wal,
        resume=args.resume,
        checkpoint_interval=args.checkpoint_interval,
        retain=args.wal_retain,
        kill_after_commit=args.kill_after_commit,
    )


def _slo_monitor(args: argparse.Namespace):
    from .obs import SLOMonitor, default_targets

    return SLOMonitor(
        default_targets(
            p95_latency_s=args.p95_latency,
            shed_rate=args.max_shed_rate,
            restart_budget=args.restart_budget,
            overlap_floor=args.overlap_floor,
        )
    )


def _emit_slo(args: argparse.Namespace, stats) -> int:
    """Evaluate SLO targets against ``stats``, print the health report,
    honor ``--slo-json``, and return the lint-style exit code."""
    slo_report = _slo_monitor(args).evaluate(stats)
    print()
    print(slo_report.render_text())
    if getattr(args, "slo_json", None):
        from pathlib import Path

        out = Path(args.slo_json)
        out.parent.mkdir(parents=True, exist_ok=True)
        slo_report.write(out)
        print(f"SLO report written to {out}")
    return slo_report.exit_code


def _runner(args: argparse.Namespace) -> ExperimentRunner:
    config = ExperimentConfig(
        scale=args.scale, seed=args.seed, snapshots=args.snapshots
    )
    return ExperimentRunner(config)


def _cmd_datasets() -> None:
    rows = [
        [p.name, p.abbrev, p.vertices, p.edges, p.feature_dim, p.description]
        for p in TABLE1_DATASETS
    ]
    print(format_table(
        ["dataset", "abbrev", "vertices", "edges", "features", "kind"], rows
    ))


def _cmd_plan(args: argparse.Namespace) -> None:
    runner = _runner(args)
    graph = runner.graph(args.dataset)
    spec = runner.spec(args.dataset)
    model = runner.ditile()
    plan = model.plan(graph, spec)
    print(f"workload: {graph.stats().summary()}")
    print(plan.summary())
    print(
        f"tiling: alpha={plan.tiling.alpha}, working set "
        f"{plan.tiling.data_volume_bytes / 1024:.0f} KiB of "
        f"{plan.tiling.buffer_bytes / 1024:.0f} KiB"
    )
    print(
        f"balance: utilization={plan.workload.utilization:.3f}, "
        f"imbalance={plan.workload.imbalance:.3f}"
    )
    if args.explain:
        print()
        print(model.scheduler.explain(graph, spec))


def _parse_faults(args: argparse.Namespace, hardware=None):
    """Resolve an optional ``--faults SPEC`` flag to a :class:`FaultModel`.

    ``trace`` subcommands share the compare/serve handlers but do not take
    the flag, hence the ``getattr``.
    """
    spec = getattr(args, "faults", None)
    if not spec:
        return None
    from .resilience import FaultSpecError, parse_fault_spec

    if hardware is None:
        hardware = ditile_model().hardware
    try:
        return parse_fault_spec(spec, hardware)
    except FaultSpecError as exc:
        raise SystemExit(f"error: invalid --faults spec: {exc}")


def _cmd_compare(args: argparse.Namespace) -> None:
    runner = _runner(args)
    faults = _parse_faults(args, runner.ditile().hardware)
    results = runner.compare(args.dataset, faults=faults)
    ditile = results["DiTile-DGNN"]
    rows = []
    for name in [*BASELINE_ORDER, "DiTile-DGNN"]:
        r = results[name]
        rows.append(
            [
                name,
                f"{r.execution_cycles:.3e}",
                f"{1e3 * r.energy_joules:.3f}",
                f"{r.dram_bytes / 2**20:.2f}",
                f"{r.execution_cycles / ditile.execution_cycles:.2f}x",
            ]
        )
    print(format_table(
        ["accelerator", "cycles", "energy_mJ", "dram_MB", "vs_DiTile"], rows
    ))
    if faults is not None:
        print(f"faults: {faults.describe()}")
        if ditile.degraded is not None:
            print(
                f"DiTile degraded-mode slowdown: "
                f"{ditile.degraded.slowdown:.4f}x "
                f"(reroute penalty "
                f"{ditile.degraded.total_reroute_penalty:.3e} cycles)"
            )


def _cmd_reproduce(args: argparse.Namespace) -> None:
    config = ExperimentConfig(
        scale=args.scale, seed=args.seed, snapshots=args.snapshots
    )
    names = args.figures or list(ALL_FIGURES)
    results = []
    for name in names:
        figure_fn = ALL_FIGURES[name]
        result = figure_fn(config) if name != "figure14" else figure_fn()
        results.append(result)
        print(result.to_text())
        print()
    if args.out:
        from .experiments.export import export_results

        written = export_results(results, args.out)
        print(f"exported {len(written) - 1} figures to {args.out}")


def _serve_workload(args: argparse.Namespace):
    """Build ``(stream, spec, window, origin)`` from serve-style args."""
    from .core.plan import DGNNSpec
    from .serving import stream_from_dataset, synthetic_event_stream

    if args.dataset is not None:
        stream = stream_from_dataset(
            args.dataset,
            scale=args.scale,
            snapshots=args.snapshots,
            seed=args.seed,
        )
        from .graphs.datasets import dataset_profile

        spec = DGNNSpec.classic(dataset_profile(args.dataset).feature_dim)
        window = args.window if args.window is not None else 1.0
        origin = 0.0  # integer event times t=1..T-1 -> one transition/window
    else:
        stream = synthetic_event_stream(
            num_vertices=args.vertices,
            num_events=args.events,
            seed=args.seed,
            remove_fraction=args.remove_fraction,
        )
        spec = DGNNSpec.classic(args.hidden_dim, args.hidden_dim)
        first, last = stream.time_span
        window = (
            args.window
            if args.window is not None
            else max((last - first) / 32.0, 1e-9)
        )
        origin = None
    return stream, spec, window, origin


def _window_results_json(report) -> str:
    """The deterministic per-window results of a serve run, as JSON.

    Includes only simulation-derived fields (never wall-clock timings),
    so two runs over the same stream are byte-identical regardless of
    pipeline depth, worker count, or shard count — the CI
    pipeline-parity job diffs these dumps directly.
    """
    import json

    windows = [
        {
            "index": record.index,
            "num_events": record.num_events,
            "plan_decision": record.plan_decision,
            "execution_cycles": result.execution_cycles,
            "total_macs": result.total_macs,
            "dram_bytes": result.dram_bytes,
            "noc_bytes": result.noc_bytes,
            "noc_byte_hops": result.noc_byte_hops,
            "energy_joules": result.energy_joules,
        }
        for record, result in zip(report.stats.records, report.results)
    ]
    return json.dumps({"windows": windows}, indent=2, sort_keys=True)


def _cmd_serve(args: argparse.Namespace) -> None:
    from .serving import ServiceConfig, StreamingService

    stream, spec, window, origin = _serve_workload(args)
    config = ServiceConfig(
        window=window,
        origin=origin,
        workers=args.workers,
        max_batch_windows=args.batch,
        pipeline_depth=args.pipeline_depth,
        queue_capacity=args.queue_capacity,
        plan_cache_capacity=args.plan_cache_capacity,
        drift_threshold=args.drift_threshold,
        faults=_parse_faults(args),
        durability=_durability_config(args),
    )
    first, last = stream.time_span
    print(
        f"stream: {stream.name} |O|={stream.num_events} events over "
        f"[{first:g}, {last:g}], V={stream.num_vertices}, "
        f"window={window:g} ({stream.num_windows(window, origin=origin)} windows)"
    )
    if args.shards >= 1:
        from .dist import ShardedConfig, ShardedService

        service = ShardedService(
            ditile_model(),
            ShardedConfig(
                shards=args.shards,
                service=config,
                partition_seed=args.partition_seed,
            ),
        )
        try:
            report = service.serve(stream, spec)
        finally:
            service.shutdown()
    else:
        report = StreamingService(ditile_model(), config).serve(stream, spec)
    print(report.stats.summary())
    print(
        f"simulated load     {report.total_cycles:.3e} accelerator cycles "
        f"over {report.num_windows} windows"
    )
    if config.faults is not None:
        print(f"faults: {config.faults.describe()}")
    # `trace serve` shares this handler but does not take the flag.
    results_json = getattr(args, "results_json", None)
    if results_json:
        from pathlib import Path

        out = Path(results_json)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(_window_results_json(report) + "\n")
        print(f"per-window results written to {out}")
    # SLO surface: `trace serve` always prints the health report (the
    # traced run is the observability surface); plain `serve` evaluates
    # only when --slo-json asks for the artifact.  Violations never fail
    # a serve run — `repro slo` is the exit-code surface.
    if hasattr(args, "slo_json"):
        from .obs import active_tracer

        if args.slo_json or active_tracer() is not None:
            _emit_slo(args, report.stats)


def _cmd_chaos(args: argparse.Namespace) -> int:
    if args.chaos_command == "sweep":
        from .experiments import fault_sweep

        runner = _runner(args)
        graph = runner.graph(args.dataset)
        spec = runner.spec(args.dataset)
        rates = tuple(
            float(part) for part in args.rates.split(",") if part.strip()
        )
        fig = fault_sweep(graph, spec, rates=rates, seed=args.fault_seed)
        print(fig.to_text())
        return 0

    if args.chaos_command == "recover":
        return _cmd_chaos_recover(args)

    # chaos serve
    from .resilience import (
        BreakerConfig,
        ChaosSchedule,
        RetryPolicy,
        ShardKillSchedule,
        run_chaos,
    )
    from .serving import ServiceConfig

    stream, spec, window, origin = _serve_workload(args)
    schedule = ChaosSchedule(
        seed=args.chaos_seed,
        crash_rate=args.crash_rate,
        latency_rate=args.latency_rate,
        latency_s=args.latency_s,
        poison_rate=args.poison_rate,
    )
    config = ServiceConfig(
        window=window,
        origin=origin,
        workers=args.workers,
        max_batch_windows=args.batch,
        pipeline_depth=args.pipeline_depth,
        queue_capacity=args.queue_capacity,
        plan_cache_capacity=args.plan_cache_capacity,
        drift_threshold=args.drift_threshold,
        retry=RetryPolicy(max_attempts=args.max_attempts, backoff_s=0.0005),
        breaker=BreakerConfig(),
        quarantine=True,
        durability=_durability_config(args),
    )
    shard_kills = None
    if args.sigkill:
        if args.shards < 1:
            raise SystemExit("--sigkill requires --shards >= 1")
        shard_kills = ShardKillSchedule.sample(
            seed=args.chaos_seed,
            shards=args.shards,
            num_windows=stream.num_windows(window, origin=origin),
            kills=args.sigkill,
        )
    first, last = stream.time_span
    print(
        f"stream: {stream.name} |O|={stream.num_events} events over "
        f"[{first:g}, {last:g}], V={stream.num_vertices}, "
        f"window={window:g}"
    )
    print(f"chaos: {schedule.describe()}")
    if args.shards >= 1:
        print(f"shards: {args.shards} worker processes")
    if shard_kills is not None:
        print(f"kills: {shard_kills.describe()}")
    report, chaos_report = run_chaos(
        stream, spec, schedule, config=config, model=ditile_model(),
        shards=args.shards, shard_kills=shard_kills,
    )
    print(report.stats.summary())
    print(chaos_report.summary())
    if args.json:
        from pathlib import Path

        out = Path(args.json)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(chaos_report.to_json() + "\n")
        print(f"chaos report written to {out}")
    if args.slo_json:
        _emit_slo(args, report.stats)
    # Exit 0 only if every window was eventually served: a permanently
    # failed window is graceful degradation, but CI should notice it.
    return 0 if chaos_report.windows_failed == 0 else 1


def _cmd_chaos_recover(args: argparse.Namespace) -> int:
    from .durability import run_recover_sweep
    from .serving import ServiceConfig

    stream, spec, window, origin = _serve_workload(args)
    config = ServiceConfig(
        window=window,
        origin=origin,
        workers=args.workers,
        max_batch_windows=args.batch,
        pipeline_depth=args.pipeline_depth,
        queue_capacity=args.queue_capacity,
        plan_cache_capacity=args.plan_cache_capacity,
        drift_threshold=args.drift_threshold,
    )
    kill_points = None
    if args.kill_points:
        kill_points = [
            int(part) for part in args.kill_points.split(",") if part.strip()
        ]
    first, last = stream.time_span
    print(
        f"stream: {stream.name} |O|={stream.num_events} events over "
        f"[{first:g}, {last:g}], V={stream.num_vertices}, "
        f"window={window:g} ({stream.num_windows(window, origin=origin)} windows)"
    )
    shards = args.shards if args.shards >= 1 else 0
    print(
        f"recover: shards={shards or 'single-process'} "
        f"depth={args.pipeline_depth} "
        f"kill points={'all boundaries' if kill_points is None else kill_points}"
    )
    report, _reference = run_recover_sweep(
        stream,
        spec,
        config=config,
        shards=shards,
        kill_points=kill_points,
        root=args.artifacts,
        keep_artifacts=args.artifacts is not None,
        progress=print,
    )
    print(report.summary())
    if args.json:
        from pathlib import Path

        out = Path(args.json)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(report.to_json() + "\n")
        print(f"recovery report written to {out}")
    return report.exit_code


def _cmd_slo(args: argparse.Namespace) -> int:
    """Serve a stream, evaluate SLO targets, exit 1 on any violation."""
    from .serving import ServiceConfig, StreamingService

    stream, spec, window, origin = _serve_workload(args)
    config = ServiceConfig(
        window=window,
        origin=origin,
        workers=args.workers,
        max_batch_windows=args.batch,
        pipeline_depth=args.pipeline_depth,
        queue_capacity=args.queue_capacity,
        plan_cache_capacity=args.plan_cache_capacity,
        drift_threshold=args.drift_threshold,
        durability=_durability_config(args),
    )
    if args.shards >= 1:
        from .dist import ShardedConfig, ShardedService

        service = ShardedService(
            ditile_model(),
            ShardedConfig(
                shards=args.shards,
                service=config,
                partition_seed=args.partition_seed,
            ),
        )
        try:
            report = service.serve(stream, spec)
        finally:
            service.shutdown()
    else:
        report = StreamingService(ditile_model(), config).serve(stream, spec)
    slo_report = _slo_monitor(args).evaluate(report.stats)
    if args.format == "json":
        print(slo_report.render_json())
    else:
        print(report.stats.summary())
        print()
        print(slo_report.render_text())
    if args.slo_json:
        from pathlib import Path

        out = Path(args.slo_json)
        out.parent.mkdir(parents=True, exist_ok=True)
        slo_report.write(out)
        print(f"SLO report written to {out}")
    return slo_report.exit_code


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .analysis import (
        EXIT_USAGE,
        LintRunner,
        UsageError,
        default_registry,
        render_json,
        render_sarif,
        render_text,
    )

    if args.list_rules:
        for rule in default_registry().rules:
            print(f"{rule.id}  [{rule.severity}]  {rule.name}")
            print(f"        {rule.rationale}")
        return 0
    if args.explain:
        rule_id = args.explain.strip().upper()
        try:
            rule = default_registry().get(rule_id)
        except KeyError:
            print(f"error: unknown rule {rule_id}")
            return EXIT_USAGE
        print(f"{rule.id}  [{rule.severity}]  {rule.name}")
        print()
        print(f"  {rule.rationale}")
        scope = rule.scope
        if scope.include:
            print()
            print(f"  applies to: {', '.join(scope.include)}", end="")
            print(f" (excluding {', '.join(scope.exclude)})" if scope.exclude else "")
        if rule.example:
            print()
            print("  example:")
            for line in rule.example.rstrip("\n").split("\n"):
                print(f"    {line}")
        print()
        print(
            "  suppress a justified exception with "
            f"`# repro: noqa[{rule.id}] <why>`"
        )
        return 0
    select = (
        [part.strip() for part in args.select.split(",") if part.strip()]
        if args.select
        else None
    )
    try:
        runner = LintRunner(
            select=select,
            report_unused_suppressions=not args.no_unused_suppressions,
        )
        report = runner.run([Path(p) for p in args.paths])
    except UsageError as exc:
        print(f"error: {exc}")
        return EXIT_USAGE
    if args.format == "json":
        print(render_json(report.findings, report.files_checked))
    elif args.format == "sarif":
        print(
            render_sarif(
                report.findings,
                report.files_checked,
                rules=default_registry().rules,
            )
        )
    else:
        print(render_text(report.findings, report.files_checked))
    if args.sarif_out:
        out = Path(args.sarif_out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(
            render_sarif(
                report.findings,
                report.files_checked,
                rules=default_registry().rules,
            )
            + "\n"
        )
        print(f"SARIF report written to {out}")
    return report.exit_code


def _cmd_bench(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .bench import (
        EXIT_REGRESSIONS,
        EXIT_USAGE,
        BenchRecord,
        BenchRunner,
        NondeterministicCaseError,
        RecordError,
        UnknownCaseError,
        compare_records,
        default_registry,
    )

    if args.bench_command == "list":
        for case in default_registry().select():
            suites = ",".join(case.suites)
            print(f"{case.name:<34} [{suites}]  {case.description}")
        return 0

    if args.bench_command == "compare":
        try:
            baseline = BenchRecord.load(args.baseline)
            current = BenchRecord.load(args.current)
            report = compare_records(
                baseline,
                current,
                timing_tolerance=args.timing_tolerance,
                gate_timings=args.gate_timings,
            )
        except (RecordError, ValueError) as exc:
            print(f"error: {exc}")
            return EXIT_USAGE
        print(report.render_json() if args.format == "json" else report.render_text())
        return report.exit_code

    # bench run
    try:
        runner = BenchRunner(
            repeats=args.repeats,
            warmup=args.warmup,
            progress=print,
            trace_dir=args.trace,
        )
        record = runner.run(
            suite=None if args.cases else args.suite, names=args.cases
        )
    except (UnknownCaseError, ValueError) as exc:
        print(f"error: {exc}")
        return EXIT_USAGE
    except NondeterministicCaseError as exc:
        print(f"error: {exc}")
        return EXIT_REGRESSIONS
    for case in record.cases:
        print(
            f"{case.name:<34} run_s={case.timings['run_s']:.4f}  "
            f"({len(case.counters)} counters)"
        )
    if args.json:
        path = record.save(args.json)
        print(f"record written to {path}")
    if args.update_baselines:
        suite = record.suite if record.suite is not None else "custom"
        path = record.save(Path(args.baseline_dir) / f"{suite}.json")
        print(f"baseline updated: {path}")
    return 0


def ditile_model():
    """The service's accelerator model (one seam for tests to patch)."""
    from .ditile import DiTileAccelerator

    return DiTileAccelerator()


def _run_traced(fn, args: argparse.Namespace, out_dir, name: str) -> int:
    """Run a command handler under a :class:`~repro.obs.TraceSession`.

    Prints the phase-breakdown table after the command's own output and,
    with an output directory, the exported artifact paths.
    """
    from .obs import TraceSession

    with TraceSession(out_dir, name=name) as session:
        fn(args)
    print()
    if getattr(args, "format", "text") == "json":
        print(session.report.render_json())
    else:
        print(session.report.render_text(sort=getattr(args, "sort", "time")))
    for kind in sorted(session.written):
        print(f"trace {kind}: {session.written[kind]}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    handlers = {"plan": _cmd_plan, "compare": _cmd_compare, "serve": _cmd_serve}
    fn = handlers[args.trace_command]
    return _run_traced(fn, args, args.out, f"trace-{args.trace_command}")


def _cmd_area() -> None:
    print(figure14(HardwareConfig.small()).to_text())


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "datasets":
        _cmd_datasets()
    elif args.command == "plan":
        if args.trace:
            return _run_traced(_cmd_plan, args, args.trace, "plan")
        _cmd_plan(args)
    elif args.command == "compare":
        if args.trace:
            return _run_traced(_cmd_compare, args, args.trace, "compare")
        _cmd_compare(args)
    elif args.command == "reproduce":
        _cmd_reproduce(args)
    elif args.command == "serve":
        if args.trace:
            return _run_traced(_cmd_serve, args, args.trace, "serve")
        _cmd_serve(args)
    elif args.command == "chaos":
        return _cmd_chaos(args)
    elif args.command == "trace":
        return _cmd_trace(args)
    elif args.command == "slo":
        return _cmd_slo(args)
    elif args.command == "lint":
        return _cmd_lint(args)
    elif args.command == "bench":
        return _cmd_bench(args)
    elif args.command == "area":
        _cmd_area()
    else:  # pragma: no cover - argparse enforces choices
        return 2
    return 0
