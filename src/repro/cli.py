"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``datasets``
    Print the Table 1 dataset registry.
``plan DATASET``
    Run the DiTile scheduler on a dataset and print its decisions.
``compare DATASET``
    Simulate DiTile plus all four baselines and print the comparison.
``reproduce [FIGURE ...]``
    Regenerate evaluation artifacts (default: all of Table 1 / Figs 7-14).
``area``
    Print the Fig. 14 area breakdown.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from .accel.config import HardwareConfig
from .experiments.figures import ALL_FIGURES, figure14
from .experiments.report import format_table
from .experiments.runner import BASELINE_ORDER, ExperimentConfig, ExperimentRunner
from .graphs.datasets import TABLE1_DATASETS

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DiTile-DGNN (ISCA 2025) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list the Table 1 dataset registry")

    plan = sub.add_parser("plan", help="show the DiTile scheduler's plan")
    _add_workload_args(plan)
    plan.add_argument(
        "--explain", action="store_true",
        help="print the full decision trace (every grid shape's cost)",
    )

    compare = sub.add_parser("compare", help="simulate all five accelerators")
    _add_workload_args(compare)

    reproduce = sub.add_parser(
        "reproduce", help="regenerate evaluation tables/figures"
    )
    reproduce.add_argument(
        "figures",
        nargs="*",
        choices=[[], *ALL_FIGURES.keys()],
        help="artifacts to regenerate (default: all)",
    )
    reproduce.add_argument("--scale", type=float, default=0.0625)
    reproduce.add_argument("--snapshots", type=int, default=None)
    reproduce.add_argument("--seed", type=int, default=7)
    reproduce.add_argument(
        "--out", default=None, metavar="DIR",
        help="also export results to DIR (CSV per figure + REPORT.md)",
    )

    sub.add_parser("area", help="print the Fig. 14 area breakdown")
    return parser


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("dataset", help="Table 1 name or abbreviation")
    parser.add_argument("--scale", type=float, default=0.0625)
    parser.add_argument("--snapshots", type=int, default=None)
    parser.add_argument("--seed", type=int, default=7)


def _runner(args: argparse.Namespace) -> ExperimentRunner:
    config = ExperimentConfig(
        scale=args.scale, seed=args.seed, snapshots=args.snapshots
    )
    return ExperimentRunner(config)


def _cmd_datasets() -> None:
    rows = [
        [p.name, p.abbrev, p.vertices, p.edges, p.feature_dim, p.description]
        for p in TABLE1_DATASETS
    ]
    print(format_table(
        ["dataset", "abbrev", "vertices", "edges", "features", "kind"], rows
    ))


def _cmd_plan(args: argparse.Namespace) -> None:
    runner = _runner(args)
    graph = runner.graph(args.dataset)
    spec = runner.spec(args.dataset)
    model = runner.ditile()
    plan = model.plan(graph, spec)
    print(f"workload: {graph.stats().summary()}")
    print(plan.summary())
    print(
        f"tiling: alpha={plan.tiling.alpha}, working set "
        f"{plan.tiling.data_volume_bytes / 1024:.0f} KiB of "
        f"{plan.tiling.buffer_bytes / 1024:.0f} KiB"
    )
    print(
        f"balance: utilization={plan.workload.utilization:.3f}, "
        f"imbalance={plan.workload.imbalance:.3f}"
    )
    if args.explain:
        print()
        print(model.scheduler.explain(graph, spec))


def _cmd_compare(args: argparse.Namespace) -> None:
    runner = _runner(args)
    results = runner.compare(args.dataset)
    ditile = results["DiTile-DGNN"]
    rows = []
    for name in [*BASELINE_ORDER, "DiTile-DGNN"]:
        r = results[name]
        rows.append(
            [
                name,
                f"{r.execution_cycles:.3e}",
                f"{1e3 * r.energy_joules:.3f}",
                f"{r.dram_bytes / 2**20:.2f}",
                f"{r.execution_cycles / ditile.execution_cycles:.2f}x",
            ]
        )
    print(format_table(
        ["accelerator", "cycles", "energy_mJ", "dram_MB", "vs_DiTile"], rows
    ))


def _cmd_reproduce(args: argparse.Namespace) -> None:
    config = ExperimentConfig(
        scale=args.scale, seed=args.seed, snapshots=args.snapshots
    )
    names = args.figures or list(ALL_FIGURES)
    results = []
    for name in names:
        figure_fn = ALL_FIGURES[name]
        result = figure_fn(config) if name != "figure14" else figure_fn()
        results.append(result)
        print(result.to_text())
        print()
    if args.out:
        from .experiments.export import export_results

        written = export_results(results, args.out)
        print(f"exported {len(written) - 1} figures to {args.out}")


def _cmd_area() -> None:
    print(figure14(HardwareConfig.small()).to_text())


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "datasets":
        _cmd_datasets()
    elif args.command == "plan":
        _cmd_plan(args)
    elif args.command == "compare":
        _cmd_compare(args)
    elif args.command == "reproduce":
        _cmd_reproduce(args)
    elif args.command == "area":
        _cmd_area()
    else:  # pragma: no cover - argparse enforces choices
        return 2
    return 0
