"""DiTile-DGNN core algorithms: tiling, parallelism, balance, scheduling."""

from .tiling import TilingResult, dram_access, subgraph_data_volume, subgraph_tiling
from .comm_model import (
    CommBreakdown,
    CommunicationModel,
    ParallelFactors,
    WorkloadProfile,
)
from .parallelism import (
    ParallelismOptimizer,
    StrategyEvaluation,
    spatial_factors,
    temporal_factors,
)
from .balance import BalancedWorkload, balance_workload, natural_workload
from .redundancy import RedundancyAnalysis, TransitionRedundancy
from .plan import DGNNSpec, ExecutionPlan
from .overhead import FrontEndEstimate, FrontEndModel, FrontEndParams
from .training import TrainingParams, training_costs
from .scheduler import DiTileScheduler, SchedulerOptions

__all__ = [
    "TilingResult",
    "dram_access",
    "subgraph_data_volume",
    "subgraph_tiling",
    "WorkloadProfile",
    "ParallelFactors",
    "CommBreakdown",
    "CommunicationModel",
    "ParallelismOptimizer",
    "StrategyEvaluation",
    "temporal_factors",
    "spatial_factors",
    "BalancedWorkload",
    "balance_workload",
    "natural_workload",
    "RedundancyAnalysis",
    "TransitionRedundancy",
    "DGNNSpec",
    "ExecutionPlan",
    "FrontEndParams",
    "FrontEndEstimate",
    "FrontEndModel",
    "TrainingParams",
    "training_costs",
    "DiTileScheduler",
    "SchedulerOptions",
]
