"""Balance-aware workload optimization (paper §5, Algorithm 2, Fig. 4).

Pipeline:

1. estimate every vertex's multi-layer, multi-snapshot workload ``vload``
   with the label-aggregation model (Eq. 17,
   :func:`repro.models.workload.dynamic_vertex_workload`);
2. sort vertices by descending workload;
3. deal them round-robin across the vertex-parallel tile groups
   (Algorithm 2 line 10) — a classic LPT-style greedy that evens out the
   skewed degree distribution;
4. split each tile's vertices into the balanced-and-dynamic-workload groups
   ``BDW`` of ``Ps`` snapshots x ``Pv`` vertices (line 11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..graphs.dynamic import DynamicGraph
from ..graphs.partition import (
    VertexPartition,
    contiguous_vertex_partition,
    partition_loads,
    round_robin_partition,
    snapshot_assignment,
)
from ..models.workload import dynamic_vertex_workload
from .comm_model import ParallelFactors

__all__ = ["BalancedWorkload", "balance_workload", "natural_workload"]


@dataclass(frozen=True)
class BalancedWorkload:
    """Algorithm 2's partition results.

    ``partition`` maps vertices to the ``vertex_groups`` rows of the logical
    grid; ``snapshot_groups[g]`` lists the snapshot indices of column ``g``;
    ``vload`` is the per-vertex Eq. 17 estimate; ``group_loads[row]`` the
    summed estimate per row.
    """

    partition: VertexPartition
    snapshot_groups: List[np.ndarray]
    vload: np.ndarray
    group_loads: np.ndarray

    @property
    def imbalance(self) -> float:
        """Max-to-mean load ratio across vertex groups (1.0 = perfect)."""
        mean = self.group_loads.mean()
        if mean == 0:
            return 1.0
        return float(self.group_loads.max() / mean)

    @property
    def utilization(self) -> float:
        """Mean-to-max load ratio — the resource-utilization proxy of §7.4."""
        peak = self.group_loads.max()
        if peak == 0:
            return 1.0
        return float(self.group_loads.mean() / peak)

    def bdw_groups(self) -> List[dict]:
        """The ``BDW`` work list: one entry per (snapshot column, vertex row)."""
        groups = []
        for col, snapshots in enumerate(self.snapshot_groups):
            for row in range(self.partition.num_parts):
                groups.append(
                    {
                        "snapshot_group": col,
                        "vertex_group": row,
                        "snapshots": snapshots,
                        "vertices": self.partition.members(row),
                    }
                )
        return groups


def balance_workload(
    graph: DynamicGraph,
    gnn_layers: int,
    factors: ParallelFactors,
) -> BalancedWorkload:
    """Algorithm 2: balance-aware placement for the chosen parallel factors."""
    vload = dynamic_vertex_workload(graph, gnn_layers)
    order = np.argsort(-vload, kind="stable")
    partition = round_robin_partition(order, factors.vertex_groups, len(vload))
    return BalancedWorkload(
        partition=partition,
        snapshot_groups=snapshot_assignment(
            graph.num_snapshots, factors.snapshot_groups
        ),
        vload=vload,
        group_loads=partition_loads(vload, partition),
    )


def natural_workload(
    graph: DynamicGraph,
    gnn_layers: int,
    factors: ParallelFactors,
) -> BalancedWorkload:
    """The unbalanced alternative: contiguous vertex ranges (BNS-GCN style).

    Used by the ``NoWos`` ablation and the baseline accelerators; computes
    the same Eq. 17 loads so imbalance is measurable.
    """
    vload = dynamic_vertex_workload(graph, gnn_layers)
    partition = contiguous_vertex_partition(len(vload), factors.vertex_groups)
    return BalancedWorkload(
        partition=partition,
        snapshot_groups=snapshot_assignment(
            graph.num_snapshots, factors.snapshot_groups
        ),
        vload=vload,
        group_loads=partition_loads(vload, partition),
    )
