"""Inter-tile communication models (paper §4.2, Eqs. 7-16).

The parallelization of a DGNN over a tile array induces three traffic
classes (Fig. 3):

* **temporal communication** — RNN dependencies between consecutive
  snapshots placed on different tiles (Eq. 8);
* **spatial communication** — GNN aggregation across vertex partitions in
  the same snapshot (Eqs. 10-12), reduced by redundancy elimination to the
  *redundancy-free* amount (Eqs. 9, 13-15);
* **reuse communication** — shipping reusable intermediate results between
  consecutive snapshot groups (Eq. 16).

All quantities are in vertex-feature-row transfers, matching the paper's
"communication amount"; byte conversion happens in the accelerator layer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..graphs.dynamic import DynamicGraph

__all__ = ["WorkloadProfile", "ParallelFactors", "CommunicationModel", "CommBreakdown"]


@dataclass(frozen=True)
class WorkloadProfile:
    """Application features consumed by Algorithm 1 (its *Input* block)."""

    gnn_layers: int  # L
    num_snapshots: int  # T
    avg_subgraph_vertices: float  # AvgSV
    avg_subgraph_edges: float  # AvgSE
    dissimilarity: float  # Dis (average, in [0, 1])
    alpha: int = 1  # tiling factor

    def __post_init__(self) -> None:
        if self.gnn_layers < 1:
            raise ValueError("gnn_layers must be >= 1")
        if self.num_snapshots < 1:
            raise ValueError("num_snapshots must be >= 1")
        if not 0.0 <= self.dissimilarity <= 1.0:
            raise ValueError("dissimilarity must be in [0, 1]")
        if self.alpha < 1:
            raise ValueError("alpha must be >= 1")

    @classmethod
    def from_graph(
        cls, graph: DynamicGraph, gnn_layers: int, alpha: int = 1
    ) -> "WorkloadProfile":
        """Profile a dynamic graph for the analytic models."""
        stats = graph.stats()
        return cls(
            gnn_layers=gnn_layers,
            num_snapshots=stats.num_snapshots,
            avg_subgraph_vertices=stats.avg_vertices / alpha,
            avg_subgraph_edges=stats.avg_edges / alpha,
            dissimilarity=stats.avg_dissimilarity,
            alpha=alpha,
        )

    @property
    def avg_degree(self) -> float:
        """Average subgraph degree ``AvgSE / AvgSV``."""
        if self.avg_subgraph_vertices == 0:
            return 0.0
        return self.avg_subgraph_edges / self.avg_subgraph_vertices


@dataclass(frozen=True)
class ParallelFactors:
    """The parallel factors Algorithm 1 searches for.

    ``snapshots_per_tile`` is ``Ps`` (snapshots each tile group owns) and
    ``vertices_per_tile`` is ``Pv`` (vertices each tile owns);
    ``snapshot_groups``/``vertex_groups`` are the induced logical grid
    dimensions ``ceil(T / Ps)`` and ``ceil(AvgSV / Pv)``.
    """

    snapshots_per_tile: float
    vertices_per_tile: float
    snapshot_groups: int
    vertex_groups: int

    @property
    def tiles_used(self) -> int:
        """Logical tiles occupied by the mapping."""
        return self.snapshot_groups * self.vertex_groups

    @classmethod
    def from_groups(
        cls, num_snapshots: int, avg_vertices: float, snapshot_groups: int,
        vertex_groups: int,
    ) -> "ParallelFactors":
        """Build factors from a grid shape (the search enumerates these)."""
        if snapshot_groups < 1 or vertex_groups < 1:
            raise ValueError("group counts must be >= 1")
        snapshot_groups = min(snapshot_groups, num_snapshots)
        vertex_groups = min(vertex_groups, max(int(avg_vertices), 1))
        return cls(
            snapshots_per_tile=num_snapshots / snapshot_groups,
            vertices_per_tile=avg_vertices / vertex_groups,
            snapshot_groups=snapshot_groups,
            vertex_groups=vertex_groups,
        )


@dataclass(frozen=True)
class CommBreakdown:
    """TotalComm and its three components (Eq. 7), in feature-row transfers."""

    temporal: float
    rf_spatial: float
    reuse: float

    @property
    def total(self) -> float:
        """Eq. 7: ``TotalComm = Tcomm + RFScomm + ReComm``."""
        return self.temporal + self.rf_spatial + self.reuse


class CommunicationModel:
    """Analytic evaluation of Eqs. 8-16 for one workload profile."""

    def __init__(self, profile: WorkloadProfile):
        self.profile = profile

    # -- temporal (Eq. 8) ------------------------------------------------
    def temporal_comm(self, factors: ParallelFactors) -> float:
        """Eq. 8: ``Tcomm = alpha * AvgSV * (ceil(T / Ps) - 1)``.

        Each boundary between consecutive snapshot groups ships every
        sub-snapshot's hidden-state rows once.
        """
        p = self.profile
        boundaries = math.ceil(p.num_snapshots / factors.snapshots_per_tile) - 1
        return p.alpha * p.avg_subgraph_vertices * boundaries

    # -- spatial (Eqs. 10-12) --------------------------------------------
    def total_spatial_comm(self) -> float:
        """Eq. 11: ``TotalScomm = alpha * L * T * AvgSE``.

        Every edge moves one feature row per layer per snapshot."""
        p = self.profile
        return p.alpha * p.gnn_layers * p.num_snapshots * p.avg_subgraph_edges

    def intra_tile_spatial_comm(self, factors: ParallelFactors) -> float:
        """Eq. 12: edges whose endpoints land in the same ``Pv``-vertex tile.

        Splitting ``AvgSV`` vertices into tiles of ``Pv`` gives
        ``floor(AvgSV / Pv)`` full tiles plus one remainder tile; under a
        uniform edge model the same-tile fraction is
        ``(Pv^2 * floor(AvgSV / Pv) + (AvgSV mod Pv)^2) / AvgSV^2``.
        """
        p = self.profile
        avg_sv = p.avg_subgraph_vertices
        if avg_sv <= 0:
            return 0.0
        pv = factors.vertices_per_tile
        full_tiles = math.floor(avg_sv / pv)
        remainder = avg_sv - full_tiles * pv
        same_tile_pairs = pv * pv * full_tiles + remainder * remainder
        return self.total_spatial_comm() * same_tile_pairs / (avg_sv * avg_sv)

    def spatial_comm(self, factors: ParallelFactors) -> float:
        """Eq. 10: ``Scomm = TotalScomm - IntraTileScomm``."""
        return self.total_spatial_comm() - self.intra_tile_spatial_comm(factors)

    # -- redundancy (Eqs. 13-15) -----------------------------------------
    def vertex_spatial_comm(self) -> float:
        """Eq. 15: ``VScomm = sum_{l=1..L} sum_{l'=1..l} (AvgSE / AvgSV)^{l'}``.

        The per-vertex spatial traffic of its full L-layer receptive field.
        """
        p = self.profile
        degree = p.avg_degree
        total = 0.0
        for l in range(1, p.gnn_layers + 1):
            for l_prime in range(1, l + 1):
                total += degree**l_prime
        return total

    def total_redundant_spatial_comm(self) -> float:
        """Eq. 14: ``TotalRScomm = alpha * T * AvgSV * (1 - Dis) * VScomm``.

        Clamped to ``(1 - Dis) * TotalScomm``: reuse can never eliminate
        more spatial traffic than the similar fraction of what exists.  The
        paper's receptive-field estimate overshoots on dense graphs where
        receptive fields overlap heavily (the same deviation its Fig. 10
        attributes to uniform-sparsity assumptions).
        """
        p = self.profile
        estimate = (
            p.alpha
            * p.num_snapshots
            * p.avg_subgraph_vertices
            * (1.0 - p.dissimilarity)
            * self.vertex_spatial_comm()
        )
        return min(estimate, (1.0 - p.dissimilarity) * self.total_spatial_comm())

    def redundant_spatial_comm(self, factors: ParallelFactors) -> float:
        """Eq. 13: ``RScomm = TotalRScomm * Scomm / TotalScomm``."""
        total_spatial = self.total_spatial_comm()
        if total_spatial == 0:
            return 0.0
        return (
            self.total_redundant_spatial_comm()
            * self.spatial_comm(factors)
            / total_spatial
        )

    def rf_spatial_comm(self, factors: ParallelFactors) -> float:
        """Eq. 9: ``RFScomm = Scomm - RScomm``."""
        return self.spatial_comm(factors) - self.redundant_spatial_comm(factors)

    # -- reuse (Eq. 16) ----------------------------------------------------
    def reuse_comm(self, factors: ParallelFactors) -> float:
        """Eq. 16: reuse traffic across snapshot-group boundaries.

        ``ReComm = alpha * (ceil(T / Ps) - 1) * AvgSV * (1 - Dis) * VScomm``
        with ``VScomm`` capped at ``L * AvgDeg`` rows per vertex — a vertex
        group boundary cannot usefully ship more reused intermediates than
        the per-layer features its successor would otherwise recompute.
        """
        p = self.profile
        boundaries = math.ceil(p.num_snapshots / factors.snapshots_per_tile) - 1
        per_vertex = min(self.vertex_spatial_comm(), p.gnn_layers * p.avg_degree)
        return (
            p.alpha
            * boundaries
            * p.avg_subgraph_vertices
            * (1.0 - p.dissimilarity)
            * per_vertex
        )

    # -- total (Eq. 7) -----------------------------------------------------
    def breakdown(self, factors: ParallelFactors) -> CommBreakdown:
        """All three components of Eq. 7 for one candidate mapping."""
        return CommBreakdown(
            temporal=self.temporal_comm(factors),
            rf_spatial=self.rf_spatial_comm(factors),
            reuse=self.reuse_comm(factors),
        )

    def total_comm(self, factors: ParallelFactors) -> float:
        """Eq. 7 scalar objective."""
        return self.breakdown(factors).total
