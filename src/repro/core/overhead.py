"""Front-end overhead model (paper Fig. 5a, steps 1-9).

Before the tile array executes anything, the accelerator's front end runs:

* the **Workload Computation Unit** — label aggregation over all edges,
  one pass per GNN layer per snapshot (Eq. 17);
* the **Parallelization Strategy Adjuster** — the Algorithm 1 search over
  tiling factors and grid shapes, each candidate one evaluation of the
  Eqs. 6-16 closed forms;
* the **Balanced and Dynamic Workload Generator** — the descending sort
  plus the round-robin deal of Algorithm 2;
* the **Redundant-Free Unit** — per-transition delta comparison over the
  vertex table;
* per-phase **reconfiguration** of the interconnect.

The paper reports this machinery's energy at under 7% of total (§7.6);
this model produces the cycle/energy estimates behind that check instead
of assuming them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..accel.energy import JOULES_PER_PJ
from ..graphs.dynamic import DynamicGraphStats
from .plan import DGNNSpec, ExecutionPlan

__all__ = ["FrontEndParams", "FrontEndEstimate", "FrontEndModel"]

# Algorithm 2's descending sort: log2(n) comparisons plus one placement
# move per vertex.
_SWAP_OPS_PER_VERTEX = 1.0


@dataclass(frozen=True)
class FrontEndParams:
    """Throughput/energy constants of the front-end units."""

    label_ops_per_cycle: float = 64.0  # label-aggregation adders
    model_eval_cycles: float = 40.0  # one Eq. 6-16 closed-form evaluation
    sort_ops_per_cycle: float = 16.0  # comparator network throughput
    delta_ops_per_cycle: float = 64.0  # vertex-table comparators
    config_cycles_per_event: float = 50.0
    energy_pj_per_op: float = 0.5  # small integer datapath


@dataclass(frozen=True)
class FrontEndEstimate:
    """Cycle counts per front-end stage."""

    workload_computation: float
    parallelization_search: float
    balance_generation: float
    redundancy_detection: float
    reconfiguration: float

    @property
    def total_cycles(self) -> float:
        """All front-end cycles."""
        return (
            self.workload_computation
            + self.parallelization_search
            + self.balance_generation
            + self.redundancy_detection
            + self.reconfiguration
        )


class FrontEndModel:
    """Estimates the front-end cost of producing one execution plan."""

    def __init__(self, params: FrontEndParams = FrontEndParams()):
        self.params = params

    def estimate(
        self,
        stats: DynamicGraphStats,
        spec: DGNNSpec,
        total_tiles: int,
        candidate_alphas: int,
        config_events: float,
    ) -> FrontEndEstimate:
        """Front-end cycles for a workload with the given search extents."""
        p = self.params
        edges_total = sum(stats.num_edges)
        vertices_total = sum(stats.num_vertices)
        avg_vertices = max(stats.avg_vertices, 1.0)

        label_ops = edges_total * spec.num_gnn_layers
        workload = label_ops / p.label_ops_per_cycle

        grid_shapes = sum(
            1 for ns in range(1, total_tiles + 1) if total_tiles % ns == 0
        )
        search = (candidate_alphas + grid_shapes) * p.model_eval_cycles

        compare_ops_per_vertex = math.log2(avg_vertices + 1)
        sort_ops = avg_vertices * compare_ops_per_vertex
        swap_ops = avg_vertices * _SWAP_OPS_PER_VERTEX
        balance = (sort_ops + swap_ops) / p.sort_ops_per_cycle

        delta_ops = vertices_total  # one row-key comparison per vertex per t
        redundancy = delta_ops / p.delta_ops_per_cycle

        reconfiguration = config_events * p.config_cycles_per_event
        return FrontEndEstimate(
            workload_computation=workload,
            parallelization_search=search,
            balance_generation=balance,
            redundancy_detection=redundancy,
            reconfiguration=reconfiguration,
        )

    def estimate_for_plan(self, plan: ExecutionPlan, total_tiles: int) -> FrontEndEstimate:
        """Front-end cycles for an already-produced plan."""
        stats = plan.graph.stats()
        config_events = float(plan.factors.snapshot_groups)
        return self.estimate(
            stats,
            plan.spec,
            total_tiles,
            candidate_alphas=plan.tiling.alpha,
            config_events=config_events,
        )

    def energy_joules(self, estimate: FrontEndEstimate) -> float:
        """Control/configuration energy of the front end."""
        ops = estimate.total_cycles * self.params.label_ops_per_cycle * 0.25
        return ops * self.params.energy_pj_per_op * JOULES_PER_PJ
