"""Parallelism optimization (paper §4.2, Algorithm 1 lines 10-15).

Given the tile budget, the optimizer enumerates logical grid shapes
``snapshot_groups x vertex_groups`` — snapshot parallelism along one array
dimension, vertex parallelism along the other (the Fig. 6 mapping) — and
picks the shape minimizing the total inter-tile communication of Eq. 7.

The degenerate corners of the search space are exactly the strategies of
§3.1: all-snapshot-groups/one-vertex-group is *temporal parallelism*
(ReaDy/RACE style), one-snapshot-group/all-vertex-groups is *spatial
parallelism* (MEGA/AliGraph style).  The optimizer's output is the paper's
*dynamic* strategy: whichever mixture wins for this workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .comm_model import (
    CommBreakdown,
    CommunicationModel,
    ParallelFactors,
    WorkloadProfile,
)

__all__ = [
    "StrategyEvaluation",
    "ParallelismOptimizer",
    "temporal_factors",
    "spatial_factors",
]


@dataclass(frozen=True)
class StrategyEvaluation:
    """One candidate mapping with its modelled communication cost."""

    factors: ParallelFactors
    breakdown: CommBreakdown

    @property
    def total_comm(self) -> float:
        """Eq. 7 objective value."""
        return self.breakdown.total


def _grid_factor_pairs(total_tiles: int) -> List[Tuple[int, int]]:
    """All ``(snapshot_groups, vertex_groups)`` with product ``total_tiles``."""
    pairs = []
    for ns in range(1, total_tiles + 1):
        if total_tiles % ns == 0:
            pairs.append((ns, total_tiles // ns))
    return pairs


def temporal_factors(profile: WorkloadProfile, total_tiles: int) -> ParallelFactors:
    """Pure temporal parallelism: one snapshot group per tile (Fig. 2a/b)."""
    return ParallelFactors.from_groups(
        profile.num_snapshots, profile.avg_subgraph_vertices, total_tiles, 1
    )


def spatial_factors(profile: WorkloadProfile, total_tiles: int) -> ParallelFactors:
    """Pure spatial parallelism: one vertex partition per tile (Fig. 2c/d)."""
    return ParallelFactors.from_groups(
        profile.num_snapshots, profile.avg_subgraph_vertices, 1, total_tiles
    )


class ParallelismOptimizer:
    """Algorithm 1, *Parallelization Optimization*.

    Parameters
    ----------
    profile:
        Workload features (``L``, ``T``, ``AvgSV``, ``AvgSE``, ``Dis``,
        ``alpha``).
    total_tiles:
        Hardware tile budget (``TotalTiles``).
    require_full_grid:
        When true (default, matching the Fig. 6 dataflow) only grid shapes
        using every tile are considered; when false, under-filled grids are
        allowed too (useful for ablations on tiny workloads).
    """

    def __init__(
        self,
        profile: WorkloadProfile,
        total_tiles: int,
        require_full_grid: bool = True,
    ):
        if total_tiles < 1:
            raise ValueError("total_tiles must be >= 1")
        self.profile = profile
        self.total_tiles = total_tiles
        self.require_full_grid = require_full_grid
        self.model = CommunicationModel(profile)

    def candidates(self) -> List[StrategyEvaluation]:
        """Evaluate every admissible grid shape."""
        profile = self.profile
        shapes: List[Tuple[int, int]] = []
        if self.require_full_grid:
            shapes = _grid_factor_pairs(self.total_tiles)
        else:
            for ns in range(1, self.total_tiles + 1):
                for nv in range(1, self.total_tiles // ns + 1):
                    shapes.append((ns, nv))
        evaluations = []
        seen = set()
        for ns, nv in shapes:
            factors = ParallelFactors.from_groups(
                profile.num_snapshots, profile.avg_subgraph_vertices, ns, nv
            )
            key = (factors.snapshot_groups, factors.vertex_groups)
            if key in seen:
                continue
            seen.add(key)
            evaluations.append(
                StrategyEvaluation(factors, self.model.breakdown(factors))
            )
        return evaluations

    def optimize(self) -> StrategyEvaluation:
        """The minimal-``TotalComm`` mapping (Algorithm 1 line 14).

        Ties break toward the squarer grid: balanced dimensions shorten the
        worst-case on-chip route on the physical array.
        """
        candidates = self.candidates()
        if not candidates:
            raise RuntimeError("no admissible grid shapes")
        return min(
            candidates,
            key=lambda ev: (
                ev.total_comm,
                abs(ev.factors.snapshot_groups - ev.factors.vertex_groups),
            ),
        )

    def evaluate(self, snapshot_groups: int, vertex_groups: int) -> StrategyEvaluation:
        """Evaluate one explicit grid shape (used by baselines/ablations)."""
        factors = ParallelFactors.from_groups(
            self.profile.num_snapshots,
            self.profile.avg_subgraph_vertices,
            snapshot_groups,
            vertex_groups,
        )
        return StrategyEvaluation(factors, self.model.breakdown(factors))

    def compare_static_strategies(self) -> dict:
        """Temporal vs spatial vs optimized (the §3.1 motivation numbers)."""
        temporal = temporal_factors(self.profile, self.total_tiles)
        spatial = spatial_factors(self.profile, self.total_tiles)
        return {
            "temporal": StrategyEvaluation(temporal, self.model.breakdown(temporal)),
            "spatial": StrategyEvaluation(spatial, self.model.breakdown(spatial)),
            "dynamic": self.optimize(),
        }
