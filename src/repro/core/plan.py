"""Execution-plan data structures shared by the scheduler and the simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..graphs.dynamic import DynamicGraph
from .balance import BalancedWorkload
from .comm_model import CommBreakdown, ParallelFactors, WorkloadProfile
from .redundancy import RedundancyAnalysis
from .tiling import TilingResult

__all__ = ["DGNNSpec", "ExecutionPlan"]


@dataclass(frozen=True)
class DGNNSpec:
    """Model-shape parameters of the DGNN being executed.

    ``gcn_dims`` includes the input width: ``(F, d_1, ..., d_L)``.
    ``rnn_matmuls`` is 8 for LSTM (Eq. 4) and 6 for GRU.
    """

    gcn_dims: Tuple[int, ...]
    rnn_hidden_dim: int
    rnn_kind: str = "lstm"

    def __post_init__(self) -> None:
        if len(self.gcn_dims) < 2:
            raise ValueError("gcn_dims needs input plus at least one layer width")
        if any(d <= 0 for d in self.gcn_dims) or self.rnn_hidden_dim <= 0:
            raise ValueError("all model dims must be positive")
        if self.rnn_kind not in ("lstm", "gru"):
            raise ValueError(f"unknown rnn_kind {self.rnn_kind!r}")

    @classmethod
    def classic(cls, feature_dim: int, hidden_dim: int = 64) -> "DGNNSpec":
        """The paper's evaluated model: 2-layer GCN + LSTM (§7.1)."""
        return cls(
            gcn_dims=(feature_dim, hidden_dim, hidden_dim),
            rnn_hidden_dim=hidden_dim,
            rnn_kind="lstm",
        )

    @property
    def feature_dim(self) -> int:
        """Input feature width ``F``."""
        return self.gcn_dims[0]

    @property
    def num_gnn_layers(self) -> int:
        """``L``."""
        return len(self.gcn_dims) - 1

    @property
    def embedding_dim(self) -> int:
        """GNN output width ``|z|``."""
        return self.gcn_dims[-1]

    @property
    def rnn_matmuls(self) -> int:
        """Matrix products per recurrent step (8 LSTM / 6 GRU)."""
        return 8 if self.rnn_kind == "lstm" else 6

    @property
    def avg_gnn_width(self) -> float:
        """Mean per-layer input width, used by row-granular traffic models."""
        return sum(self.gcn_dims[:-1]) / self.num_gnn_layers


@dataclass
class ExecutionPlan:
    """Everything the simulator needs to execute a DGNN on the tile array.

    Produced by :class:`repro.core.scheduler.DiTileScheduler` (or by the
    baseline planners, which fill the same fields with their own choices).
    """

    graph: DynamicGraph
    spec: DGNNSpec
    profile: WorkloadProfile
    tiling: TilingResult
    factors: ParallelFactors
    comm: CommBreakdown
    workload: BalancedWorkload
    redundancy: Optional[RedundancyAnalysis] = None
    reuse_enabled: bool = True
    balance_enabled: bool = True
    notes: dict = field(default_factory=dict)

    @property
    def total_tiles_used(self) -> int:
        """Logical tiles the mapping occupies."""
        return self.factors.tiles_used

    def summary(self) -> str:
        """Human-readable one-paragraph plan description."""
        f = self.factors
        return (
            f"plan[{self.graph.name}]: alpha={self.tiling.alpha}, "
            f"grid={f.snapshot_groups}x{f.vertex_groups} "
            f"(Ps={f.snapshots_per_tile:.1f}, Pv={f.vertices_per_tile:.1f}), "
            f"comm={self.comm.total:.0f} rows "
            f"(T={self.comm.temporal:.0f}, S={self.comm.rf_spatial:.0f}, "
            f"R={self.comm.reuse:.0f}), "
            f"imbalance={self.workload.imbalance:.3f}, "
            f"reuse={'on' if self.reuse_enabled else 'off'}"
        )
