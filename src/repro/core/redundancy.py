"""Exact redundancy measurement across snapshot transitions.

The analytic models (Eqs. 13-16) use the *average* dissimilarity ``Dis``;
the simulator and the Fig. 10 model-vs-actual comparison need the exact
per-transition numbers: how many vertices changed, how far the change
propagates per GCN layer, and how much work/traffic reuse eliminates.  This
module measures those quantities directly from the graph — the software
equivalent of the accelerator's Redundant-Free Unit (§6, step 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..graphs.dynamic import DynamicGraph
from ..graphs.partition import VertexPartition

__all__ = ["TransitionRedundancy", "RedundancyAnalysis"]


@dataclass(frozen=True)
class TransitionRedundancy:
    """Invalidation footprint of one snapshot transition.

    ``affected_per_layer[l]`` holds the vertex ids whose layer-``l+1``
    output must be recomputed at snapshot ``timestamp``.
    """

    timestamp: int
    num_vertices: int
    changed: np.ndarray
    affected_per_layer: List[np.ndarray]

    @property
    def dissimilarity(self) -> float:
        """Changed-vertex fraction (the measured ``Dis_t``)."""
        if self.num_vertices == 0:
            return 0.0
        return len(self.changed) / self.num_vertices

    def affected_fraction(self, layer: int) -> float:
        """Fraction of rows recomputed at ``layer`` (0-indexed)."""
        if self.num_vertices == 0:
            return 0.0
        return len(self.affected_per_layer[layer]) / self.num_vertices

    def reusable_rows(self, layer: int) -> int:
        """Rows of ``layer`` whose previous-snapshot value is reused."""
        return self.num_vertices - len(self.affected_per_layer[layer])


class RedundancyAnalysis:
    """Per-transition redundancy footprints for a whole dynamic graph."""

    def __init__(self, transitions: List[TransitionRedundancy], gnn_layers: int):
        self.transitions = transitions
        self.gnn_layers = gnn_layers

    @classmethod
    def analyze(cls, graph: DynamicGraph, gnn_layers: int) -> "RedundancyAnalysis":
        """Measure every transition of ``graph`` for an ``gnn_layers``-layer GNN.

        Snapshot 0 counts as fully changed (cold start), matching the
        incremental engine.
        """
        transitions = []
        for t, snapshot in enumerate(graph):
            changed = graph.changed_vertices(t)
            if t == 0:
                affected = [
                    np.arange(snapshot.num_vertices, dtype=np.int64)
                ] * gnn_layers
            else:
                affected = [
                    snapshot.k_hop_affected(changed, l + 1)
                    for l in range(gnn_layers)
                ]
            transitions.append(
                TransitionRedundancy(
                    timestamp=t,
                    num_vertices=snapshot.num_vertices,
                    changed=changed,
                    affected_per_layer=affected,
                )
            )
        return cls(transitions, gnn_layers)

    def __len__(self) -> int:
        return len(self.transitions)

    def __getitem__(self, t: int) -> TransitionRedundancy:
        return self.transitions[t]

    def avg_affected_fraction(self, layer: int, skip_first: bool = True) -> float:
        """Mean recomputed-row fraction at ``layer`` over transitions."""
        relevant = self.transitions[1:] if skip_first else self.transitions
        if not relevant:
            return 0.0
        return float(np.mean([t.affected_fraction(layer) for t in relevant]))

    def per_tile_affected(
        self, partition: VertexPartition, timestamp: int
    ) -> np.ndarray:
        """Final-layer affected-vertex count per vertex group at ``timestamp``.

        Drives the simulator's per-tile incremental GNN work: an unbalanced
        spread of affected vertices is exactly the synchronization problem
        the balance optimization targets.
        """
        affected = self.transitions[timestamp].affected_per_layer[-1]
        counts = np.zeros(partition.num_parts, dtype=np.int64)
        if len(affected):
            groups = partition.assignment[affected]
            counts += np.bincount(groups, minlength=partition.num_parts)
        return counts
