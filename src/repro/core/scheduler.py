"""DiTile-DGNN scheduler: ties tiling, parallelism, balance, and redundancy
into one :class:`~repro.core.plan.ExecutionPlan`.

This is the software realization of the accelerator front-end of Fig. 5(a):
the Workload Computation Unit (Eq. 17 loads), the Parallelization Strategy
Adjuster (Algorithm 1), and the Balanced and Dynamic Workload Generator
(Algorithm 2).  Each stage can be disabled independently, which is how the
Fig. 11(b) ablation variants (NoPs / NoWos / OnlyPs / OnlyWos) are built.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graphs.dynamic import DynamicGraph
from ..obs import span as obs_span
from .balance import balance_workload, natural_workload
from .comm_model import CommunicationModel, WorkloadProfile
from .parallelism import ParallelismOptimizer, temporal_factors
from .plan import DGNNSpec, ExecutionPlan
from .redundancy import RedundancyAnalysis
from .tiling import TilingResult, dram_access, subgraph_tiling

__all__ = ["SchedulerOptions", "DiTileScheduler"]


@dataclass(frozen=True)
class SchedulerOptions:
    """Feature switches for the three contributions (used by ablations).

    * ``enable_tiling`` — Algorithm 1's subgraph tiling (off: ``alpha = 1``);
    * ``enable_parallelism`` — Algorithm 1's ``Ps``/``Pv`` search (off: the
      conventional temporal mapping of §3.1.1);
    * ``enable_balance`` — Algorithm 2 (off: contiguous natural-order split);
    * ``enable_reuse`` — redundancy elimination (off: full recompute).
    """

    enable_tiling: bool = True
    enable_parallelism: bool = True
    enable_balance: bool = True
    enable_reuse: bool = True


class DiTileScheduler:
    """Front-end planner for the DiTile-DGNN accelerator.

    Parameters
    ----------
    total_tiles:
        Tile budget of the array (``TotalTiles`` in Algorithm 1).
    distributed_buffer_bytes:
        Per-tile-array distributed buffer capacity ``C_DB``.
    options:
        Feature switches, defaulting to the full DiTile configuration.
    """

    def __init__(
        self,
        total_tiles: int,
        distributed_buffer_bytes: float,
        options: SchedulerOptions = SchedulerOptions(),
    ):
        if total_tiles < 1:
            raise ValueError("total_tiles must be >= 1")
        if distributed_buffer_bytes <= 0:
            raise ValueError("distributed_buffer_bytes must be positive")
        self.total_tiles = total_tiles
        self.distributed_buffer_bytes = distributed_buffer_bytes
        self.options = options

    def plan(self, graph: DynamicGraph, spec: DGNNSpec) -> ExecutionPlan:
        """Produce the full execution plan for ``graph`` under ``spec``."""
        with obs_span("plan", graph=graph.name, tiles=self.total_tiles):
            return self._plan(graph, spec)

    def _plan(self, graph: DynamicGraph, spec: DGNNSpec) -> ExecutionPlan:
        stats = graph.stats()

        # Stage 1 — subgraph tiling (Algorithm 1, lines 2-9).
        with obs_span("tiling", enabled=self.options.enable_tiling) as sp:
            if self.options.enable_tiling:
                tiling = subgraph_tiling(
                    stats,
                    self.distributed_buffer_bytes,
                    feature_dim=spec.feature_dim,
                    output_dim=spec.embedding_dim,
                )
            else:
                tiling = TilingResult(
                    alpha=1,
                    dram_access=dram_access(stats, 1),
                    subgraph_vertices=stats.avg_vertices,
                    data_volume_bytes=float("nan"),
                    buffer_bytes=self.distributed_buffer_bytes,
                )
            if sp.enabled:
                sp.set_attr("alpha", tiling.alpha)
                sp.add("dram_access_rows", tiling.dram_access)
                if tiling.data_volume_bytes == tiling.data_volume_bytes:
                    sp.add("data_volume_bytes", tiling.data_volume_bytes)

        profile = WorkloadProfile.from_graph(
            graph, spec.num_gnn_layers, alpha=tiling.alpha
        )
        if not self.options.enable_reuse:
            # Without redundancy elimination every vertex behaves as changed.
            profile = WorkloadProfile(
                gnn_layers=profile.gnn_layers,
                num_snapshots=profile.num_snapshots,
                avg_subgraph_vertices=profile.avg_subgraph_vertices,
                avg_subgraph_edges=profile.avg_subgraph_edges,
                dissimilarity=1.0,
                alpha=profile.alpha,
            )

        # Stage 2 — parallelization optimization (Algorithm 1, lines 10-15).
        with obs_span(
            "parallelism", enabled=self.options.enable_parallelism
        ) as sp:
            optimizer = ParallelismOptimizer(profile, self.total_tiles)
            if self.options.enable_parallelism:
                strategy = optimizer.optimize()
            else:
                factors = temporal_factors(profile, self.total_tiles)
                strategy = optimizer.evaluate(
                    factors.snapshot_groups, factors.vertex_groups
                )
            if sp.enabled:
                sp.set_attr("Ps", strategy.factors.snapshot_groups)
                sp.set_attr("Pv", strategy.factors.vertex_groups)
                sp.add("total_comm_rows", strategy.total_comm)
                sp.add("temporal_comm_rows", strategy.breakdown.temporal)
                sp.add("rf_spatial_comm_rows", strategy.breakdown.rf_spatial)
                sp.add("reuse_comm_rows", strategy.breakdown.reuse)

        # Stage 3 — balance-aware workload generation (Algorithm 2).
        with obs_span("balance", enabled=self.options.enable_balance) as sp:
            if self.options.enable_balance:
                workload = balance_workload(
                    graph, spec.num_gnn_layers, strategy.factors
                )
            else:
                workload = natural_workload(
                    graph, spec.num_gnn_layers, strategy.factors
                )
            if sp.enabled:
                sp.add("utilization", workload.utilization)
                sp.add("imbalance", workload.imbalance)

        # Stage 4 — redundancy measurement (the Redundant-Free Unit's input).
        with obs_span("redundancy", enabled=self.options.enable_reuse):
            redundancy = (
                RedundancyAnalysis.analyze(graph, spec.num_gnn_layers)
                if self.options.enable_reuse
                else None
            )

        return ExecutionPlan(
            graph=graph,
            spec=spec,
            profile=profile,
            tiling=tiling,
            factors=strategy.factors,
            comm=strategy.breakdown,
            workload=workload,
            redundancy=redundancy,
            reuse_enabled=self.options.enable_reuse,
            balance_enabled=self.options.enable_balance,
            notes={"options": self.options},
        )

    def communication_model(self, graph: DynamicGraph, spec: DGNNSpec, alpha: int = 1):
        """Expose the raw Eq. 7-16 model for a graph (used by Fig. 10)."""
        profile = WorkloadProfile.from_graph(graph, spec.num_gnn_layers, alpha=alpha)
        return CommunicationModel(profile)

    def explain(self, graph: DynamicGraph, spec: DGNNSpec) -> str:
        """Human-readable trace of the scheduler's decisions.

        Walks the same pipeline as :meth:`plan` and narrates why each
        choice was made: the tiling factor against the buffer, every grid
        shape's Eq. 7 cost, and the balance outcome.
        """
        plan = self.plan(graph, spec)
        stats = graph.stats()
        lines = [f"workload: {stats.summary()}"]
        lines.append(
            f"[tiling] alpha={plan.tiling.alpha}: subgraph working set "
            f"{plan.tiling.data_volume_bytes / 1024:.0f} KiB vs buffer "
            f"{self.distributed_buffer_bytes / 1024:.0f} KiB "
            f"(modelled DRAM access {plan.tiling.dram_access:.3e} rows)"
        )
        optimizer = ParallelismOptimizer(plan.profile, self.total_tiles)
        lines.append("[parallelism] Eq. 7 cost per grid shape:")
        best = plan.factors
        for ev in sorted(
            optimizer.candidates(), key=lambda e: e.total_comm
        ):
            f = ev.factors
            marker = " <== chosen" if (
                f.snapshot_groups == best.snapshot_groups
                and f.vertex_groups == best.vertex_groups
                and self.options.enable_parallelism
            ) else ""
            lines.append(
                f"  {f.snapshot_groups:>3d}x{f.vertex_groups:<3d} "
                f"T={ev.breakdown.temporal:10.0f} "
                f"S={ev.breakdown.rf_spatial:10.0f} "
                f"R={ev.breakdown.reuse:10.0f} "
                f"total={ev.total_comm:10.0f}{marker}"
            )
        if not self.options.enable_parallelism:
            lines.append(
                f"  (parallelism search disabled: temporal fallback "
                f"{best.snapshot_groups}x{best.vertex_groups})"
            )
        lines.append(
            f"[balance] {'round-robin (Alg. 2)' if self.options.enable_balance else 'natural order'}: "
            f"utilization={plan.workload.utilization:.3f}, "
            f"imbalance={plan.workload.imbalance:.3f}"
        )
        if plan.redundancy is not None:
            avg = plan.redundancy.avg_affected_fraction(spec.num_gnn_layers - 1)
            lines.append(
                f"[redundancy] avg invalidated final-layer fraction "
                f"{avg:.3f} -> {100 * (1 - avg):.1f}% of rows reused"
            )
        return "\n".join(lines)
