"""Subgraph tiling (paper §4.1, Algorithm 1 lines 2-9, Eqs. 5-6).

Dynamic graphs dominate on-chip memory, so every snapshot is split into
``alpha`` subgraphs of ``SV_i = V_i / alpha`` vertices each (Eq. 5).  The
tiling factor trades off DRAM re-fetch traffic (larger ``alpha`` means more
cross-subgraph neighbour re-reads, Eq. 6) against the distributed-buffer
capacity ``C_DB`` that each subgraph's working set must fit in.  The
procedure picks the ``alpha`` minimizing DRAM access subject to the
capacity constraint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..graphs.dynamic import DynamicGraph, DynamicGraphStats

__all__ = ["TilingResult", "dram_access", "subgraph_data_volume", "subgraph_tiling"]

_BYTES_PER_VALUE = 4  # FP32 datapath (paper §7.1)
_BYTES_PER_EDGE = 8  # one (src, dst) index pair


@dataclass(frozen=True)
class TilingResult:
    """Outcome of the tiling search.

    ``alpha`` is the chosen tiling factor; ``dram_access`` the modelled
    feature-row DRAM traffic (Eq. 6, in vertex-feature-row units);
    ``subgraph_vertices`` the average ``SV_i``; ``data_volume_bytes`` the
    largest per-subgraph working set.
    """

    alpha: int
    dram_access: float
    subgraph_vertices: float
    data_volume_bytes: float
    buffer_bytes: float

    @property
    def fits_buffer(self) -> bool:
        """Whether the chosen subgraph working set obeys ``C_DB``."""
        return self.data_volume_bytes <= self.buffer_bytes


def dram_access(stats: DynamicGraphStats, alpha: int) -> float:
    """Eq. 6: ``DA = sum_i { V_i + alpha * [E_i * SV_i * (V_i - SV_i)] / V_i^2 }``.

    Units are vertex-feature rows: each vertex's features stream in once
    (``V_i``), and every subgraph additionally re-fetches the boundary
    neighbours that live outside it (the second term).
    """
    if alpha < 1:
        raise ValueError(f"alpha must be >= 1, got {alpha}")
    total = 0.0
    for v_i, e_i in zip(stats.num_vertices, stats.num_edges):
        if v_i == 0:
            continue
        sv_i = v_i / alpha
        total += v_i + alpha * (e_i * sv_i * (v_i - sv_i)) / (v_i * v_i)
    return total


def subgraph_data_volume(
    stats: DynamicGraphStats,
    alpha: int,
    feature_dim: Optional[int] = None,
    output_dim: Optional[int] = None,
) -> float:
    """Largest per-subgraph working set in bytes.

    A resident subgraph holds its vertices' input features, its output
    features, and its edge list.  Weights are excluded — the paper notes
    they are negligible next to graph data (§4.1).
    """
    feature_dim = feature_dim if feature_dim is not None else stats.feature_dim
    output_dim = output_dim if output_dim is not None else feature_dim
    worst = 0.0
    for v_i, e_i in zip(stats.num_vertices, stats.num_edges):
        sv_i = v_i / alpha
        se_i = e_i / alpha
        volume = (
            sv_i * (feature_dim + output_dim) * _BYTES_PER_VALUE  # repro: noqa[UNIT001] both terms are bytes: the per-value/per-edge ratios cancel against the untyped sv_i/se_i counts
            + se_i * _BYTES_PER_EDGE
        )
        worst = max(worst, volume)
    return worst


def subgraph_tiling(
    graph_or_stats: "DynamicGraph | DynamicGraphStats",
    buffer_bytes: float,
    feature_dim: Optional[int] = None,
    output_dim: Optional[int] = None,
    max_alpha: Optional[int] = None,
) -> TilingResult:
    """Algorithm 1, *Subgraph Tiling*: minimal-DRAM ``alpha`` under ``C_DB``.

    Eq. 6 is monotonically increasing in ``alpha`` (more subgraphs, more
    boundary re-fetches), so the optimum is the smallest ``alpha`` whose
    working set fits the distributed buffer; the scan still evaluates the
    model for every candidate, mirroring Algorithm 1's loop, and tolerates
    non-monotone volume profiles.
    """
    stats = (
        graph_or_stats.stats()
        if isinstance(graph_or_stats, DynamicGraph)
        else graph_or_stats
    )
    if buffer_bytes <= 0:
        raise ValueError("buffer_bytes must be positive")
    feature_dim = feature_dim if feature_dim is not None else stats.feature_dim
    output_dim = output_dim if output_dim is not None else feature_dim
    limit = max_alpha if max_alpha is not None else max(int(stats.avg_vertices), 1)
    # The candidate scan is vectorized over the alpha axis: the working-set
    # and Eq. 6 models are evaluated for every alpha at once, accumulating
    # over snapshots in the same order — and therefore to bit-identical
    # values — as the scalar subgraph_data_volume / dram_access helpers,
    # which remain the reference implementations.
    alphas = np.arange(1, limit + 1, dtype=np.float64)
    worst = np.zeros(limit, dtype=np.float64)
    access = np.zeros(limit, dtype=np.float64)
    for v_i, e_i in zip(stats.num_vertices, stats.num_edges):
        sv = v_i / alphas
        volume = (
            sv * (feature_dim + output_dim) * _BYTES_PER_VALUE  # repro: noqa[UNIT001] both terms are bytes: the per-value/per-edge ratios cancel against the untyped sv/se counts
            + (e_i / alphas) * _BYTES_PER_EDGE
        )
        np.maximum(worst, volume, out=worst)
        if v_i == 0:
            continue
        access += v_i + alphas * (e_i * sv * (v_i - sv)) / (v_i * v_i)
    feasible = np.flatnonzero(worst <= buffer_bytes)
    best: Optional[TilingResult] = None
    if len(feasible):
        # np.argmin keeps the first minimum — the same strictly-less
        # tie-break as the scalar scan.
        chosen = int(feasible[np.argmin(access[feasible])])
        best = TilingResult(
            alpha=chosen + 1,
            dram_access=float(access[chosen]),
            subgraph_vertices=stats.avg_vertices / (chosen + 1),
            data_volume_bytes=float(worst[chosen]),
            buffer_bytes=buffer_bytes,
        )
    if best is None:
        # Even the finest tiling overflows the buffer; return the finest
        # feasible granularity and let the caller see fits_buffer == False.
        alpha = limit
        return TilingResult(
            alpha=alpha,
            dram_access=dram_access(stats, alpha),
            subgraph_vertices=stats.avg_vertices / alpha,
            data_volume_bytes=subgraph_data_volume(
                stats, alpha, feature_dim, output_dim
            ),
            buffer_bytes=buffer_bytes,
        )
    return best
