"""Training-stage cost extension (paper §4.1).

"The proposed algorithm focuses on inference, but the proposed methodology
can be applied to the training stage where gradient and embedding
propagation follow graph structure as well."  This module extends an
inference :class:`~repro.accel.metrics.CostSummary` to one training
iteration:

* **backward compute** — reverse-mode propagation costs roughly two extra
  passes (gradient w.r.t. activations follows the transposed adjacency,
  gradient w.r.t. weights is a second GEMM per layer);
* **gradient traffic** — activation gradients retrace the forward
  communication pattern (same spatial/temporal structure, transposed
  direction), and every tile's weight gradients join an all-reduce;
* **activation stashing** — forward activations needed by the backward
  pass spill to DRAM when they exceed on-chip capacity.

The redundancy-free machinery applies unchanged: vertices whose forward
values were reused contribute zero gradient updates, so the invalidated
fractions carry over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..accel.dram import DRAMTraffic
from ..accel.metrics import CostSummary, SnapshotCosts
from ..accel.noc import NoCTraffic
from .plan import DGNNSpec

__all__ = ["TrainingParams", "training_costs"]

_BYTES = 4


@dataclass(frozen=True)
class TrainingParams:
    """Cost factors of one training iteration relative to inference."""

    backward_compute_factor: float = 2.0  # activation + weight gradients
    gradient_traffic_factor: float = 1.0  # gradients retrace forward comm
    allreduce_rounds: int = 1  # weight-gradient synchronizations per step
    onchip_bytes: float = 4 * 1024 * 1024  # activation stash capacity

    def __post_init__(self) -> None:
        if self.backward_compute_factor < 0 or self.gradient_traffic_factor < 0:
            raise ValueError("training factors must be non-negative")
        if self.allreduce_rounds < 0:
            raise ValueError("allreduce_rounds must be non-negative")


def _weight_bytes(spec: DGNNSpec) -> float:
    """Total model weight footprint in bytes (GCN + RNN)."""
    gcn = sum(
        d_in * d_out for d_in, d_out in zip(spec.gcn_dims, spec.gcn_dims[1:])
    )
    half = spec.rnn_matmuls // 2
    rnn = half * spec.embedding_dim * spec.rnn_hidden_dim
    rnn += (spec.rnn_matmuls - half) * spec.rnn_hidden_dim**2
    return float((gcn + rnn) * _BYTES)


def training_costs(
    inference: CostSummary,
    spec: DGNNSpec,
    vertices_per_snapshot: Optional[list] = None,
    params: TrainingParams = TrainingParams(),
) -> CostSummary:
    """One training iteration's monitored event counts.

    ``inference`` is the forward-pass cost summary an accelerator model
    produced; ``vertices_per_snapshot`` (defaulting to a constant inferred
    from nothing — pass it for exact stash accounting) sizes the
    activation stash.
    """
    weight_grad_bytes = _weight_bytes(spec)
    snapshots = []
    for index, fwd in enumerate(inference.snapshots):
        backward_scale = params.backward_compute_factor
        vertices = (
            vertices_per_snapshot[index]
            if vertices_per_snapshot is not None
            else 0
        )
        stash_bytes = vertices * sum(spec.gcn_dims[1:]) * _BYTES
        stash_overflow = max(stash_bytes - params.onchip_bytes, 0.0)

        dram = DRAMTraffic(
            streaming_read=fwd.dram.streaming_read,
            streaming_write=fwd.dram.streaming_write,
            random_read=fwd.dram.random_read,
            random_write=fwd.dram.random_write,
        )
        # Stash forward activations, read them back during backward.
        dram.streaming_write += stash_overflow
        dram.streaming_read += stash_overflow
        # Weight gradients stream out once per snapshot step.
        dram.streaming_write += weight_grad_bytes

        noc = NoCTraffic(
            temporal_bytes=fwd.noc.temporal_bytes
            * (1.0 + params.gradient_traffic_factor),
            spatial_bytes=fwd.noc.spatial_bytes
            * (1.0 + params.gradient_traffic_factor),
            reuse_bytes=fwd.noc.reuse_bytes,
        )
        # Weight-gradient all-reduce: every tile contributes its shard.
        noc.temporal_bytes += params.allreduce_rounds * weight_grad_bytes

        snapshots.append(
            SnapshotCosts(
                timestamp=fwd.timestamp,
                gnn_aggregation_macs=fwd.gnn_aggregation_macs
                * (1.0 + backward_scale),
                gnn_combination_macs=fwd.gnn_combination_macs
                * (1.0 + backward_scale),
                rnn_macs=fwd.rnn_macs * (1.0 + backward_scale),
                dram=dram,
                noc=noc,
                config_events=fwd.config_events,
                sync_events=fwd.sync_events + params.allreduce_rounds,
            )
        )
    return replace_summary(inference, snapshots)


def replace_summary(inference: CostSummary, snapshots: list) -> CostSummary:
    """A new summary sharing the original's utilization and name."""
    return CostSummary(
        algorithm=f"{inference.algorithm}-train",
        snapshots=snapshots,
        load_utilization=inference.load_utilization,
    )
