"""Sharded multi-process serving (``repro.dist``).

Scales the streaming service past the GIL by sharding the dynamic graph
across worker processes: events route to shards by consistent hash of
their destination vertex, each shard materializes its window deltas into
shared-memory segments, and a merging coordinator folds them into global
snapshots served through the unchanged plan/execute pipeline.

The contract inherited from the serving layer: per-window results are
**bit-identical** to the single-process path for any shard count.  See
``docs/distributed.md``.
"""

from .config import ShardedConfig
from .coordinator import ShardedService
from .router import EventRouter, RoutingPlan
from .shmem import SegmentSpec, attach_segment, unlink_segment, write_segment
from .stats import EdgeAccount, ShardStats, ShardedStats
from .worker import (
    ShardDoneMessage,
    ShardErrorMessage,
    ShardWindowMessage,
    segment_name,
    shard_worker_main,
)

__all__ = [
    "ShardedConfig",
    "ShardedService",
    "EventRouter",
    "RoutingPlan",
    "SegmentSpec",
    "write_segment",
    "attach_segment",
    "unlink_segment",
    "ShardStats",
    "ShardedStats",
    "EdgeAccount",
    "ShardWindowMessage",
    "ShardDoneMessage",
    "ShardErrorMessage",
    "segment_name",
    "shard_worker_main",
]
