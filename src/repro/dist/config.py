"""Configuration of the sharded multi-process serving layer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from ..serving.service import ServiceConfig

__all__ = ["ShardedConfig"]


@dataclass(frozen=True)
class ShardedConfig:
    """Tunable knobs of :class:`~repro.dist.coordinator.ShardedService`.

    The embedded :class:`~repro.serving.service.ServiceConfig` carries all
    single-process semantics (window clock, plan cache, retry/breaker,
    chaos, faults); the fields here only add the process topology on top.
    Every combination must preserve the parity guarantee — per-window
    results bit-identical to the single-process path — which is why
    ``load_shedding`` (whose drops depend on queue timing) is rejected.
    """

    #: shard worker processes (>= 1; 1 exercises the full protocol on a
    #: single shard and must already be bit-identical to single-process)
    shards: int = 2
    #: the single-process service semantics the shards preserve
    service: ServiceConfig = field(default_factory=ServiceConfig)
    #: seed of the consistent-hash vertex partition (same seed on every
    #: process => same routing, with no coordination)
    partition_seed: int = 0
    #: coordinator poll interval while waiting on a shard queue; each
    #: expiry doubles as a worker liveness probe
    heartbeat_s: float = 0.25
    #: total shard restarts tolerated before the run is aborted
    max_restarts: int = 2
    #: multiprocessing start method; ``fork`` lets workers inherit the
    #: routed event lists and initial shard snapshots without pickling
    mp_start_method: str = "fork"
    #: deterministic crash injection: ``(shard, window)`` pairs at which
    #: the generation-0 worker hard-exits *before* materializing the
    #: window — the restart-path test hook (parity must still hold)
    crash_windows: Tuple[Tuple[int, int], ...] = ()
    #: deterministic SIGKILL injection: ``(shard, window)`` pairs at
    #: which the coordinator sends a real ``SIGKILL`` to the
    #: generation-0 worker right before gathering that window — unlike
    #: the cooperative ``crash_windows`` hook the victim gets no chance
    #: to clean up, so this exercises the orphaned-segment sweep and the
    #: fresh-queue restart path operators will actually hit
    sigkill_windows: Tuple[Tuple[int, int], ...] = ()
    #: base delay of the bounded-exponential restart backoff (0 restores
    #: the immediate-restart behaviour); attempt ``n`` on a shard waits
    #: ``min(cap, base * 2**(n-1)) * (1 + 0.25 * jitter)``
    restart_backoff_s: float = 0.01
    #: backoff ceiling per attempt
    restart_backoff_cap_s: float = 0.25
    #: seed of the deterministic backoff jitter (drawn per
    #: ``(seed, shard, attempt)``, so repeated runs sleep identically
    #: and chaos reports stay byte-identical)
    restart_jitter_seed: int = 0

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.heartbeat_s <= 0:
            raise ValueError("heartbeat_s must be positive")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.restart_backoff_s < 0:
            raise ValueError("restart_backoff_s must be >= 0")
        if self.restart_backoff_cap_s < self.restart_backoff_s:
            raise ValueError(
                "restart_backoff_cap_s must be >= restart_backoff_s"
            )
        if self.service.load_shedding:
            raise ValueError(
                "load_shedding is incompatible with sharded serving: "
                "timing-dependent drops break the bit-identical parity "
                "guarantee (use the single-process service for shedding)"
            )
