"""The merging coordinator: shard processes -> one global serving run.

Topology (one coordinator, ``shards`` worker processes):

::

    events ──> [router] ──fork──> [shard 0..S-1] ──(queue+shm)──> [merge] ──> [plan/execute]
                consistent         per-shard           per-window      global snapshot,
                hash by dst        window builds       delta views     same pipeline as
                                                                       single-process

The coordinator routes the whole stream up front, forks one worker per
shard, then merges window by window: each shard's net delta arrives as
zero-copy views over a shared-memory segment, the deltas concatenate
into the exact global delta (disjoint by destination ownership), and
:func:`~repro.graphs.delta.apply_delta` — which canonicalizes the edge
set — materializes a global snapshot **bit-identical** to the
single-process ingest path.  Planning and execution then run through the
identical :class:`~repro.serving.plan_manager.PlanManager` /
:class:`~repro.serving.executor.WindowRunner` machinery behind the same
overlapped :class:`~repro.serving.pipeline.WindowPipeline` (merge for
batch ``k+1`` overlaps execution of batch ``k``; shard workers prefetch
window deltas into shared memory ahead of the merge), so per-window
results are byte-for-byte equal to ``StreamingService.serve`` and
``serve_offline`` for *any* shard count and pipeline depth (the
parity sweeps in ``tests/test_dist.py``).

Worker death is detected by liveness probes on queue-poll timeouts; the
dead shard restarts (bounded by ``max_restarts``, after a bounded
exponential backoff with seeded jitter) from the shard subgraph of the
last merged global snapshot, replaying only the routed events from the
first unmerged window — restarts are invisible in the results.  The
``sigkill_windows`` schedule delivers *real* ``SIGKILL``\\ s to workers
(no cooperative cleanup) through the same restart path.

With ``service.durability`` set the coordinator runs under a
:class:`~repro.durability.recovery.DurableRun`: the routed stream is
WAL-logged before any window is served, every merged window commits
through the shared :class:`~repro.serving.pipeline.WindowPipeline`
barrier, and checkpoints carry the merged global snapshot plus the
per-shard accounting needed to restore ``ShardStats`` exactly.  Worker
pids and the segment-name grid are recorded in the run lock so a resume
after a coordinator SIGKILL can reclaim orphaned workers and
shared-memory segments before re-serving.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import pickle
import queue as queue_mod
import signal
import time
from contextlib import ExitStack
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..accel.metrics import SimulationResult
from ..core.plan import DGNNSpec
from ..ditile import DiTileAccelerator
from ..graphs.continuous import ContinuousDynamicGraph
from ..graphs.delta import SnapshotDelta, apply_delta, merge_deltas
from ..graphs.partition import hash_vertex_partition, shard_subgraph
from ..graphs.snapshot import GraphSnapshot
from ..obs import active_tracer
from ..obs import gauge_set as obs_gauge_set
from ..obs import span as obs_span
from ..obs.distributed import TraceContext
from ..serving.executor import WindowExecutor, WindowRunner
from ..serving.ingest import Window
from ..serving.pipeline import WindowPipeline
from ..serving.plan_manager import PlanManager
from ..serving.service import ServingReport
from ..serving.stats import wall_clock
from .config import ShardedConfig
from .router import EventRouter
from .shmem import attach_segment, unlink_segment
from .stats import EdgeAccount, ShardStats, ShardedStats
from .worker import (
    ShardDoneMessage,
    ShardErrorMessage,
    ShardTraceMessage,
    ShardWindowMessage,
    segment_name,
    shard_worker_main,
)

__all__ = ["ShardedService"]

#: distinguishes segment namespaces of services created by one process
_session_ids = itertools.count()


class _MergeBatchSource:
    """Feeds the dispatch pipeline from the shard merge loop.

    The :class:`~repro.serving.pipeline.BatchSource` counterpart of the
    single-process ingest queue: each pulled window is the *merged*
    global window assembled from every shard's shared-memory delta.  A
    blocking pull always merges at least one window (waiting on the
    shard queues if it must — that wait is the pipeline's prefetch
    stall); beyond that, and on non-blocking pulls, it merges only
    windows every shard has already contributed to, so a slow shard
    never stalls the collection of in-flight batches.
    """

    def __init__(
        self,
        service: "ShardedService",
        ctx,
        stats: ShardedStats,
        shard_stats: List[ShardStats],
    ):
        self._service = service
        self._ctx = ctx
        self._stats = stats
        self._shard_stats = shard_stats

    @property
    def _exhausted(self) -> bool:
        return self._service._merged_upto >= self._service._num_windows

    def _ready(self) -> bool:
        """Whether every shard's next contribution is already queued.

        Best-effort (``Queue.empty`` is approximate): a false negative
        only delays a merge to the next blocking pull, never drops one.
        """
        try:
            return all(not q.empty() for q in self._service._queues)
        except (NotImplementedError, OSError):  # pragma: no cover - platform
            return False

    def pull(self, max_windows: int, block: bool) -> Optional[List[Window]]:
        if self._exhausted or (not block and not self._ready()):
            return None
        batch = [self._merge()]
        while len(batch) < max_windows and not self._exhausted and self._ready():
            batch.append(self._merge())
        return batch

    def _merge(self) -> Window:
        return self._service._merge_next(self._ctx, self._stats, self._shard_stats)

    def depth(self) -> int:
        return self._service._queue_depth()


class ShardedService:
    """Serves an event stream across ``shards`` worker processes."""

    def __init__(
        self,
        model: Optional[DiTileAccelerator] = None,
        config: ShardedConfig = ShardedConfig(),
    ):
        self.model = model if model is not None else DiTileAccelerator()
        self.config = config
        self._session = f"rd{os.getpid():x}x{next(_session_ids)}"
        self._procs: List[Optional[multiprocessing.Process]] = []
        self._queues: List = []
        self._gens: List[int] = []
        self._restarts = 0
        self._merged_upto = 0
        self._num_windows = 0
        self._attempts: List[int] = []
        self._sigkill_pending: set = set()
        self._sigkills = 0
        #: per-merged-window ``(events_by_shard, segment_by_shard)`` —
        #: what a checkpoint needs to restore ShardStats exactly
        self._window_acct: Dict[int, Tuple[Tuple[int, ...], Tuple[int, ...]]] = {}
        self._dur = None

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def serve(
        self, stream: ContinuousDynamicGraph, spec: DGNNSpec
    ) -> ServingReport:
        """Serve ``stream`` end to end; always tears the workers down."""
        with obs_span(
            "dist.serve",
            stream=stream.name,
            shards=self.config.shards,
            workers=self.config.service.workers,
        ):
            try:
                return self._serve(stream, spec)
            finally:
                self.shutdown()

    def _serve(
        self, stream: ContinuousDynamicGraph, spec: DGNNSpec
    ) -> ServingReport:
        svc = self.config.service
        dur = None
        if svc.durability is not None:
            from ..durability.recovery import DurableRun

            dur = DurableRun(
                svc.durability, window=svc.window, origin=svc.origin
            ).start()
        self._dur = dur
        try:
            return self._serve_run(stream, spec, dur)
        finally:
            self._dur = None
            if dur is not None:
                dur.close()

    def _serve_run(
        self,
        stream: ContinuousDynamicGraph,
        spec: DGNNSpec,
        dur=None,
    ) -> ServingReport:
        cfg = self.config
        svc = cfg.service
        chaos = (
            svc.chaos if svc.chaos is not None and not svc.chaos.is_quiet else None
        )
        checkpoint = dur.checkpoint if dur is not None else None
        events = stream.events
        if chaos is not None and chaos.poison_rate > 0.0:
            # Poison is injected before routing — the shard workers see
            # exactly the stream the single-process ingest thread would.
            events = chaos.inject(events, num_vertices=stream.num_vertices)
        if dur is not None:
            # The coordinator routes the whole stream up front, so the
            # wrapped iterator WAL-logs every live event during routing —
            # before any window is served (log-before-ack holds a
            # fortiori) — and replays the logged suffix on resume.
            events = dur.wrap_stream(events)
        self._partition = hash_vertex_partition(
            stream.num_vertices, cfg.shards, seed=cfg.partition_seed
        )
        router = EventRouter(
            self._partition,
            num_vertices=stream.num_vertices,
            window=svc.window,
            origin=svc.origin,
            strict_time_order=svc.strict_time_order,
            quarantine=svc.quarantine,
        )
        routing = router.route(events)
        self._routing = routing
        self._num_windows = routing.num_windows
        self._num_vertices = stream.num_vertices
        self._feature_dim = spec.feature_dim
        self._origin = routing.origin
        self._current = self._initial_snapshot(stream, spec)
        self._merged_upto = 0
        self._window_acct = {}
        self._sigkill_pending = set(cfg.sigkill_windows)
        self._sigkills = 0
        start_window = 0
        if checkpoint is not None:
            # The merged prefix is already durable: restart the merge
            # clock at the watermark, seed workers from shard subgraphs
            # of the checkpointed global snapshot (the same derivation
            # the worker-restart path uses).
            self._current = checkpoint.snapshot
            self._merged_upto = checkpoint.watermark
            start_window = checkpoint.watermark

        started = wall_clock()
        ctx = multiprocessing.get_context(cfg.mp_start_method)
        self._queues = [
            ctx.Queue(maxsize=svc.queue_capacity) for _ in range(cfg.shards)
        ]
        self._procs = [None] * cfg.shards
        self._gens = [0] * cfg.shards
        self._attempts = [0] * cfg.shards
        # Fork all workers *before* the thread pool exists — forking a
        # multi-threaded process is where fork() gets dangerous.
        for shard in range(cfg.shards):
            self._spawn(ctx, shard, start_window=start_window)
        if dur is not None:
            self._record_workers()

        stats = ShardedStats(shards=cfg.shards)
        shard_stats = [ShardStats(shard=s) for s in range(cfg.shards)]
        results: List[SimulationResult] = []
        manager = PlanManager(
            self.model,
            capacity=svc.plan_cache_capacity,
            drift_threshold=svc.drift_threshold,
            breaker=svc.breaker,
            label="coordinator",
        )
        runner = WindowRunner(
            self.model, spec, chaos=chaos, faults=svc.faults, retry=svc.retry
        )
        prev_snapshot = None
        committer = None
        if dur is not None:
            from ..durability.checkpoint import Checkpoint

            if checkpoint is not None:
                # Restore the committed prefix exactly as the
                # single-process service does, plus the dist-only state:
                # the per-window edge accounting and the per-shard
                # window/event/segment tallies the merged prefix accrued.
                manager.restore_state(checkpoint.plan_state)
                results.extend(checkpoint.results)
                stats.records.extend(checkpoint.records)
                stats.retries = checkpoint.counters.get("retries", 0)
                stats.windows_failed = checkpoint.counters.get(
                    "windows_failed", 0
                )
                stats.failures.extend(checkpoint.counters.get("failures", []))
                shard_state = checkpoint.shard_state or {}
                stats.edge_accounts.extend(shard_state.get("edge_accounts", []))
                acct = shard_state.get("window_acct", {})
                self._window_acct.update(acct)
                for st in shard_stats:
                    st.windows = len(acct)
                    st.events = sum(ev[st.shard] for ev, _ in acct.values())
                    st.segments = sum(sg[st.shard] for _, sg in acct.values())
                if stats.edge_accounts:
                    last = stats.edge_accounts[-1]
                    for st in shard_stats:
                        st.edges_final = last.shard_edges[st.shard]
                        st.cut_edges_final = last.cut_edges[st.shard]
                prev_snapshot = checkpoint.snapshot

            def _capture(watermark, snapshot, plan_state) -> Checkpoint:
                return Checkpoint(
                    watermark=watermark,
                    snapshot=snapshot,
                    plan_state=plan_state,
                    results=list(results),
                    records=list(stats.records),
                    counters={
                        "retries": stats.retries,
                        "windows_failed": stats.windows_failed,
                        "failures": list(stats.failures),
                    },
                    wal_records=len(dur.records) + dur.wal.records_appended,
                    meta={
                        "window": svc.window,
                        "origin": svc.origin,
                        "shards": cfg.shards,
                    },
                    # Merging runs ahead of commit at depth > 1, so both
                    # slices filter to the committed prefix only.
                    shard_state={
                        "edge_accounts": [
                            a
                            for a in stats.edge_accounts
                            if a.window < watermark
                        ],
                        "window_acct": {
                            w: a
                            for w, a in self._window_acct.items()
                            if w < watermark
                        },
                    },
                )

            committer = dur.committer(_capture)
        pool = WindowExecutor(svc.workers)
        try:
            # Identical dispatch discipline to StreamingService — the
            # same WindowPipeline, fed by the shard merge instead of the
            # ingest queue: plans resolve sequentially in window order
            # while earlier batches execute, and shard workers keep
            # prefetching window deltas into shared memory ahead of the
            # merge (their bounded queues are the prefetch window).
            WindowPipeline(  # repro: noqa[MP001] worker-restart path: a merge pulled by the pipeline may respawn a dead shard while the pool's threads exist, but the child runs shard_worker_main from scratch and never touches inherited pool/lock state; tearing the pool down first would stall every in-flight window
                source=_MergeBatchSource(self, ctx, stats, shard_stats),
                manager=manager,
                runner=runner,
                pool=pool,
                spec=spec,
                stats=stats,
                results=results,
                depth=svc.pipeline_depth,
                max_batch_windows=svc.max_batch_windows,
                queue_gauge="dist.queue_depth",
                prev=prev_snapshot,
                committer=committer,
            ).drive()
        finally:
            pool.shutdown(wait=True, cancel_pending=True)
        if active_tracer() is not None:
            self._collect_final_traces()
        stats.elapsed_s = wall_clock() - started
        stats.windows = len(results)
        stats.events = routing.total_events
        stats.late_events = routing.late_events
        stats.quarantined_events = routing.quarantined_events
        stats.restarts = self._restarts
        stats.sigkills = self._sigkills
        for st in shard_stats:
            st.restart_attempts = self._attempts[st.shard]
        stats.shard_stats = shard_stats
        stats.from_plan_manager(manager)
        if dur is not None:
            dur.finalize_stats(stats)
        self._emit_gauges(stats, chaos)
        return ServingReport(results=results, stats=stats)

    # ------------------------------------------------------------------
    # Merge protocol
    # ------------------------------------------------------------------
    def _merge_next(
        self, ctx, stats: ShardedStats, shard_stats: List[ShardStats]
    ) -> Window:
        """Gather every shard's contribution to the next window and merge."""
        index = self._merged_upto
        with obs_span("dist.merge", window=index) as sp:
            msgs = [
                self._gather(ctx, shard, index)
                for shard in range(self.config.shards)
            ]
            merged = self._merge_deltas(msgs)
            for msg in msgs:
                if msg.segment is not None:
                    unlink_segment(msg.segment.name)
            if merged.num_changes:
                self._current = apply_delta(
                    self._current, merged, timestamp=index
                )
            if sp.enabled:
                sp.add("changes", merged.num_changes)
        for msg, st in zip(msgs, shard_stats):
            st.windows += 1
            st.events += msg.num_events
            st.segments += 1 if msg.segment is not None else 0
            st.edges_final = msg.shard_edges
            st.cut_edges_final = msg.cut_edges
            st.generation = self._gens[msg.shard]
        self._window_acct[index] = (
            tuple(m.num_events for m in msgs),
            tuple(1 if m.segment is not None else 0 for m in msgs),
        )
        stats.edge_accounts.append(
            EdgeAccount(
                window=index,
                shard_edges=tuple(m.shard_edges for m in msgs),
                cut_edges=tuple(m.cut_edges for m in msgs),
                global_edges=self._current.num_edges,
            )
        )
        self._merged_upto = index + 1
        return Window(
            index=index,
            snapshot=self._current,
            delta=merged,
            num_events=sum(m.num_events for m in msgs),
            close_time=msgs[0].close_time,
            closed_at=max(m.closed_at for m in msgs),
        )

    def _merge_deltas(self, msgs: List[ShardWindowMessage]) -> SnapshotDelta:
        """Concatenate the shard deltas straight out of shared memory.

        The per-segment views are consumed zero-copy inside the attach
        scope (``np.concatenate`` is the first — and only — copy);
        nothing aliases the segments once this returns, so the caller can
        unlink them.
        """
        with ExitStack() as stack:
            deltas: List[SnapshotDelta] = []
            for msg in msgs:
                if msg.segment is None:
                    continue
                views = stack.enter_context(attach_segment(msg.segment))
                deltas.append(
                    SnapshotDelta(
                        added_src=views["added_src"],
                        added_dst=views["added_dst"],
                        removed_src=views["removed_src"],
                        removed_dst=views["removed_dst"],
                    )
                )
            merged = merge_deltas(deltas)
            # Drop the view-backed deltas before the segments detach.
            deltas.clear()
        return merged

    def _gather(self, ctx, shard: int, window: int) -> ShardWindowMessage:
        """The next in-protocol message from ``shard`` for ``window``.

        Poll timeouts double as liveness probes: a silent *and* dead
        worker triggers the restart path; a silent live one (a slow
        window) just keeps the coordinator waiting.
        """
        self._maybe_sigkill(ctx, shard, window)
        while True:
            try:
                msg = self._queues[shard].get(timeout=self.config.heartbeat_s)
            except queue_mod.Empty:
                proc = self._procs[shard]
                if proc is None or not proc.is_alive():
                    self._restart(ctx, shard, window)
                continue
            except (EOFError, OSError, pickle.UnpicklingError):
                # A worker SIGKILLed mid-put can leave a torn frame on
                # the queue pipe; the read error is the death signal.
                self._restart(ctx, shard, window)
                continue
            if msg.generation != self._gens[shard]:
                # Stale message from a pre-restart incarnation.
                if (
                    isinstance(msg, ShardWindowMessage)
                    and msg.segment is not None
                ):
                    unlink_segment(msg.segment.name)
                continue
            if isinstance(msg, ShardTraceMessage):
                # Out-of-band telemetry: attach and keep gathering.  The
                # worker always flushes *before* the window message, so
                # every in-generation batch is consumed right here —
                # except the terminal flush, which
                # :meth:`_collect_final_traces` drains after the run.
                tracer = active_tracer()
                if tracer is not None:
                    tracer.add_shard_batch(msg.batch)
                continue
            if isinstance(msg, ShardErrorMessage):
                raise RuntimeError(
                    f"shard {shard} (generation {msg.generation}) failed: "
                    f"{msg.error}"
                )
            if isinstance(msg, ShardDoneMessage):
                raise RuntimeError(
                    f"shard {shard} finished before window {window} "
                    f"(protocol violation)"
                )
            if msg.window != window:
                raise RuntimeError(
                    f"shard {shard} sent window {msg.window}, expected "
                    f"{window} (protocol violation)"
                )
            return msg

    def _maybe_sigkill(self, ctx, shard: int, window: int) -> None:
        """Deliver a scheduled real SIGKILL and restart through the
        normal path.

        Firing at gather time and restarting *immediately* (instead of
        waiting for the liveness probe to notice) keeps the schedule
        deterministic: every consumed kill costs exactly one restart and
        the new generation replays from ``window``, regardless of how
        far the dead worker had prefetched.
        """
        key = (shard, window)
        if key not in self._sigkill_pending:
            return
        self._sigkill_pending.discard(key)
        if self._gens[shard] != 0:
            return
        proc = self._procs[shard]
        if proc is None or not proc.is_alive() or not proc.pid:
            return
        os.kill(proc.pid, signal.SIGKILL)
        self._sigkills += 1
        self._restart(ctx, shard, window)

    def _restart(self, ctx, shard: int, window: int) -> None:
        """Replace a dead shard worker, resuming at ``window``.

        The new incarnation is seeded with the shard subgraph of the last
        merged global snapshot (exactly the dead worker's live edge set
        after window ``window - 1``) and replays the routed events from
        ``window`` on — so the restart is invisible in the merged
        results.  Everything the dead incarnation left behind — queued
        messages, announced segments, and segments created but never
        announced — is swept before the new generation starts.
        """
        self._restarts += 1
        if self._restarts > self.config.max_restarts:
            raise RuntimeError(
                f"shard {shard} died at window {window}; restart budget "
                f"({self.config.max_restarts}) exhausted"
            )
        proc = self._procs[shard]
        if proc is not None:
            proc.join()
        self._drain_queue(shard)
        # A SIGKILLed writer can die holding the queue's feeder lock or
        # mid-frame on the pipe; a fresh queue per generation sidesteps
        # both instead of trying to repair shared queue state.
        old = self._queues[shard]
        self._queues[shard] = ctx.Queue(
            maxsize=self.config.service.queue_capacity
        )
        old.close()
        old.cancel_join_thread()
        self._sweep_segments(shard, self._gens[shard], window)
        self._gens[shard] += 1
        self._attempts[shard] += 1
        self._backoff(shard)
        obs_gauge_set("dist.restarts", self._restarts)
        self._spawn(ctx, shard, start_window=window)
        if self._dur is not None:
            self._record_workers()

    def _backoff(self, shard: int) -> None:
        """Bounded exponential backoff before respawning ``shard``.

        The jitter is drawn from an rng seeded by
        ``(restart_jitter_seed, shard, attempt)``, so repeated runs of
        the same chaos schedule sleep identically — the delay decorrelates
        concurrent respawns without making reports timing-dependent.
        """
        cfg = self.config
        if cfg.restart_backoff_s <= 0:
            return
        attempt = self._attempts[shard]
        delay = min(
            cfg.restart_backoff_cap_s,
            cfg.restart_backoff_s * 2 ** (attempt - 1),
        )
        jitter = np.random.default_rng(
            (cfg.restart_jitter_seed, shard, attempt)
        ).random()
        time.sleep(delay * (1.0 + 0.25 * jitter))

    def _record_workers(self) -> None:
        """Stamp the live worker grid into the run lock for stale reclaim."""
        self._dur.record_workers(
            session=self._session,
            shards=self.config.shards,
            num_windows=self._num_windows,
            max_generations=self.config.max_restarts + 1,
            pids=[p.pid for p in self._procs if p is not None and p.pid],
        )

    # ------------------------------------------------------------------
    # Process management
    # ------------------------------------------------------------------
    def _spawn(self, ctx, shard: int, start_window: int) -> None:
        svc = self.config.service
        routed = self._routing.routed[shard]
        if start_window:
            routed = [(i, e) for i, e in routed if i >= start_window]
        tracer = active_tracer()
        trace_ctx = None
        if tracer is not None:
            # The context pins the worker's flushed spans to this run
            # (trace id = segment session) and to the coordinator span
            # open right now — dist.serve at first spawn, dist.merge on
            # the restart path.
            trace_ctx = TraceContext(
                trace_id=self._session,
                parent_span_id=tracer.current_span_id() or 0,
                shard=shard,
                generation=self._gens[shard],
            )
        proc = ctx.Process(
            target=shard_worker_main,
            name=f"repro-dist-shard{shard}",
            args=(
                shard,
                self._gens[shard],
                self._session,
                routed,
                self._queues[shard],
                self._num_vertices,
                self._feature_dim,
                svc.window,
                self._origin,
                start_window,
                self._num_windows,
                shard_subgraph(self._current, self._partition, shard),
                self._partition.assignment,
                self.config.crash_windows,
                trace_ctx,
                os.getpid(),
            ),
            daemon=True,
        )
        proc.start()
        self._procs[shard] = proc

    def _collect_final_traces(self) -> None:
        """Drain each shard queue to its Done marker after the last merge.

        The worker's terminal trace flush (final ingest span + the
        generation's full cumulative metrics) sits behind the last window
        message the gather loop consumed; tearing down without reading it
        would make trace content depend on teardown timing.  A worker
        that died after its last window simply contributes nothing more
        (dead *and* drained ends the wait — same liveness discipline as
        :meth:`_gather`).
        """
        tracer = active_tracer()
        for shard, q in enumerate(self._queues):
            while True:
                try:
                    msg = q.get(timeout=self.config.heartbeat_s)
                except queue_mod.Empty:
                    proc = self._procs[shard]
                    if proc is None or not proc.is_alive():
                        break
                    continue
                if isinstance(msg, ShardTraceMessage):
                    if (
                        tracer is not None
                        and msg.generation == self._gens[shard]
                    ):
                        tracer.add_shard_batch(msg.batch)
                    continue
                if isinstance(msg, ShardDoneMessage):
                    if msg.generation == self._gens[shard]:
                        break
                    continue
                if (
                    isinstance(msg, ShardWindowMessage)
                    and msg.segment is not None
                ):
                    unlink_segment(msg.segment.name)

    def shutdown(self) -> None:
        """Terminate and join every shard worker; free every segment.

        Idempotent and exception-safe — the chaos harness and the CLI
        call it from ``try/finally`` so no run, however it ended, leaks
        orphan processes or shared-memory segments.
        """
        procs, self._procs = self._procs, []
        queues, self._queues = self._queues, []
        for proc in procs:
            if proc is not None and proc.is_alive():
                proc.terminate()
        for proc in procs:
            if proc is not None:
                proc.join(timeout=5.0)
        for q in queues:
            while True:
                try:
                    msg = q.get_nowait()
                except (queue_mod.Empty, OSError, ValueError):
                    break
                if (
                    isinstance(msg, ShardWindowMessage)
                    and msg.segment is not None
                ):
                    unlink_segment(msg.segment.name)
            q.close()
            q.cancel_join_thread()
        for shard, gen in enumerate(self._gens):
            self._sweep_segments(shard, gen, self._merged_upto)
        self._gens = []

    def _drain_queue(self, shard: int) -> None:
        """Discard everything a dead incarnation left on its queue."""
        while True:
            try:
                msg = self._queues[shard].get_nowait()
            except queue_mod.Empty:
                return
            except (EOFError, OSError, pickle.UnpicklingError):
                # Torn frame from a SIGKILLed writer — everything behind
                # it is unreadable; the segment sweep reclaims whatever
                # the lost messages announced.
                return
            if isinstance(msg, ShardWindowMessage) and msg.segment is not None:
                unlink_segment(msg.segment.name)

    def _sweep_segments(self, shard: int, generation: int, window: int) -> None:
        """Free segments ``shard`` may have created at or after ``window``.

        A worker can run at most ``queue_capacity`` windows ahead of the
        last message the coordinator consumed (the bounded queue blocks
        it there) plus one segment written before the blocked put — so a
        bounded name sweep provably covers every possible orphan.
        """
        horizon = min(
            window + self.config.service.queue_capacity + 2, self._num_windows
        )
        for w in range(window, horizon):
            unlink_segment(segment_name(self._session, shard, generation, w))

    # ------------------------------------------------------------------
    # Reporting helpers
    # ------------------------------------------------------------------
    def _initial_snapshot(
        self, stream: ContinuousDynamicGraph, spec: DGNNSpec
    ) -> GraphSnapshot:
        """The window-0 predecessor, built exactly as single-process ingest
        builds it (same vertex space, same feature dim)."""
        initial = stream.initial
        if initial is None or initial.num_edges == 0:
            src = dst = np.empty(0, dtype=np.int64)
        else:
            src, dst = initial.edge_arrays()
        return GraphSnapshot.from_edge_arrays(
            stream.num_vertices, src, dst, feature_dim=spec.feature_dim
        )

    def _queue_depth(self) -> int:
        """Deepest shard queue (stats only; 0 where unsupported)."""
        depth = 0
        for q in self._queues:
            try:
                depth = max(depth, q.qsize())
            except NotImplementedError:  # pragma: no cover - macOS
                return 0
        return depth

    def _emit_gauges(self, stats: ShardedStats, chaos) -> None:
        svc = self.config.service
        obs_gauge_set("serve.plan_cache_hit_rate", stats.plan_hit_rate)
        obs_gauge_set("dist.shards", stats.shards)
        obs_gauge_set("dist.restarts", stats.restarts)
        obs_gauge_set("dist.cut_edges", stats.cut_edges_final)
        for st in stats.shard_stats:
            obs_gauge_set(f"dist.shard{st.shard}.events", st.events)
            obs_gauge_set(f"dist.shard{st.shard}.segments", st.segments)
            obs_gauge_set(f"dist.shard{st.shard}.edges", st.edges_final)
            obs_gauge_set(f"dist.shard{st.shard}.cut_edges", st.cut_edges_final)
        if (
            svc.retry is not None
            or svc.breaker is not None
            or svc.quarantine
            or chaos is not None
        ):
            obs_gauge_set("serve.retries", stats.retries)
            obs_gauge_set("serve.windows_failed", stats.windows_failed)
            obs_gauge_set("serve.shed_windows", stats.shed_windows)
            obs_gauge_set("serve.quarantined_events", stats.quarantined_events)
            obs_gauge_set("serve.breaker_trips", stats.breaker_trips)
            obs_gauge_set("serve.plan_breaker_hits", stats.plan_breaker_hits)
