"""Event routing: stream events -> per-shard, window-tagged event lists.

The router is the sharded layer's half of ingest.  It applies the exact
validation and window-assignment rules of
:class:`~repro.serving.ingest.WindowedIngestor` — same
:func:`~repro.serving.ingest.event_fault` checks, same origin anchoring,
same late-event policy — then forwards each surviving event to the shard
owning its **destination** vertex under the consistent-hash partition.

Routing by destination is what makes the shard deltas compose: every
event in an edge's lifecycle (add, churn, remove) lands on one shard, so
per-shard net deltas are disjoint and concatenate to the exact global
delta (see :func:`~repro.graphs.delta.merge_deltas`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from ..graphs.continuous import EdgeEvent, window_index
from ..graphs.partition import VertexPartition
from ..serving.ingest import RejectedEvent, event_fault

__all__ = ["RoutingPlan", "EventRouter"]


@dataclass
class RoutingPlan:
    """The routed stream: who serves what, plus ingest accounting."""

    #: total windows in the stream (>= 1; empty streams serve one window)
    num_windows: int
    #: resolved window-clock anchor (0.0 when no valid event set one)
    origin: float
    #: per shard: ``(window index, event)`` in arrival order — arrival
    #: order is ascending window index, which the shard builders require
    routed: List[List[Tuple[int, EdgeEvent]]]
    total_events: int
    late_events: int
    #: dead-letter queue (populated only with ``quarantine=True``)
    rejected: List[RejectedEvent]

    @property
    def shard_events(self) -> List[int]:
        """Events routed to each shard."""
        return [len(r) for r in self.routed]

    @property
    def quarantined_events(self) -> int:
        """Malformed events diverted into the dead-letter queue."""
        return len(self.rejected)


class EventRouter:
    """Routes one event stream under a fixed vertex partition."""

    def __init__(
        self,
        partition: VertexPartition,
        num_vertices: int,
        window: float,
        origin: Optional[float] = None,
        strict_time_order: bool = False,
        quarantine: bool = False,
    ):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if partition.num_vertices < num_vertices:
            raise ValueError("partition does not cover the vertex space")
        self.partition = partition
        self.num_vertices = num_vertices
        self.window = window
        self.origin = origin
        self.strict_time_order = strict_time_order
        self.quarantine = quarantine

    def route(self, events: Iterable[EdgeEvent]) -> RoutingPlan:
        """Consume ``events`` and return the complete routing plan.

        Mirrors :meth:`WindowedIngestor.windows` decision-for-decision
        (validated by the router parity tests): identical events are
        dropped/quarantined/rejected in both paths, so every counter in
        the sharded report matches the single-process one.
        """
        assignment = self.partition.assignment
        routed: List[List[Tuple[int, EdgeEvent]]] = [
            [] for _ in range(self.partition.num_parts)
        ]
        origin = self.origin
        current = 0
        total = 0
        late = 0
        rejected: List[RejectedEvent] = []
        for position, event in enumerate(events):
            total += 1
            fault = event_fault(event, self.num_vertices)
            if fault is not None:
                if not self.quarantine:
                    raise ValueError(f"malformed event {event}: {fault}")
                rejected.append(RejectedEvent(event, fault, position))
                continue
            if origin is None:
                origin = event.time
            index = window_index(event.time, origin, self.window)
            if index < current:
                if self.strict_time_order:
                    raise ValueError(
                        f"late event {event}: window {index} already closed "
                        f"(serving window {current})"
                    )
                late += 1
                continue
            current = max(current, index)
            routed[int(assignment[event.dst])].append((index, event))
        return RoutingPlan(
            num_windows=current + 1,
            origin=origin if origin is not None else 0.0,
            routed=routed,
            total_events=total,
            late_events=late,
            rejected=rejected,
        )
