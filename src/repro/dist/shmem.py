"""Shared-memory shard snapshots: zero-copy numpy views across processes.

One segment holds a flat sequence of int64 arrays (the window's delta and
snapshot edge arrays).  The *spec* — name plus per-field element counts —
travels over the coordinator queue; the arrays never do.

Lifecycle protocol (the part that keeps Python's ``resource_tracker``
quiet — it otherwise double-frees segments that cross a process
boundary):

* the **worker** creates the segment, immediately *unregisters* it from
  its own tracker, fills it, and closes its mapping — the worker never
  unlinks;
* the **coordinator** attaches (re-registering it with the coordinator's
  tracker), consumes the views, closes, and **unlinks** — exactly-once
  cleanup owned by the one process guaranteed to outlive the window.

Crashed workers can leak created-but-unannounced segments; the
coordinator sweeps those by name (:func:`unlink_segment` tolerates
absence), which deterministic segment naming makes possible.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Iterator, List, Tuple

import numpy as np

__all__ = ["SegmentSpec", "write_segment", "attach_segment", "unlink_segment"]

_ITEMSIZE = 8  # every field is int64


@dataclass(frozen=True)
class SegmentSpec:
    """Name and layout of one shared-memory segment (int64 fields)."""

    name: str
    #: ``(field name, element count)`` in storage order
    fields: Tuple[Tuple[str, int], ...]

    @property
    def nbytes(self) -> int:
        """Total payload size in bytes."""
        return sum(count for _, count in self.fields) * _ITEMSIZE


def write_segment(name: str, arrays: List[Tuple[str, np.ndarray]]) -> SegmentSpec:
    """Create segment ``name`` holding ``arrays`` and return its spec.

    Called in the worker process.  The segment is unregistered from the
    creator's resource tracker (see the module docstring) and the
    worker's mapping is closed before returning — after this call only
    the named segment itself persists, waiting for the coordinator.
    """
    spec = SegmentSpec(
        name=name, fields=tuple((field, len(arr)) for field, arr in arrays)
    )
    shm = shared_memory.SharedMemory(
        create=True, size=max(spec.nbytes, 1), name=name
    )
    try:
        try:
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker internals vary
            pass
        offset = 0
        for _field, arr in arrays:
            view = np.ndarray(
                (len(arr),), dtype=np.int64, buffer=shm.buf, offset=offset
            )
            view[:] = arr
            offset += len(arr) * _ITEMSIZE
            del view
    finally:
        shm.close()
    return spec


@contextmanager
def attach_segment(spec: SegmentSpec) -> Iterator[Dict[str, np.ndarray]]:
    """Attach to ``spec``'s segment, yielding zero-copy int64 views.

    Called in the coordinator.  The yielded mapping's arrays alias the
    shared buffer directly — no deserialization, no copy.  Callers must
    not retain references past the ``with`` block (the mapping cannot be
    closed while views are exported); derived arrays (``np.concatenate``
    results etc.) are fine.  The block only detaches — call
    :func:`unlink_segment` afterwards to free the segment.
    """
    shm = shared_memory.SharedMemory(name=spec.name)
    views: Dict[str, np.ndarray] = {}
    offset = 0
    for field, count in spec.fields:
        views[field] = np.ndarray(
            (count,), dtype=np.int64, buffer=shm.buf, offset=offset
        )
        offset += count * _ITEMSIZE
    try:
        yield views
    finally:
        views.clear()
        shm.close()


def unlink_segment(name: str) -> bool:
    """Free segment ``name`` if it exists; ``True`` if one was removed.

    Tolerating absence makes this safe both as the post-consume cleanup
    and as the orphan sweep after a worker crash (where the coordinator
    cannot know which segments the worker got around to creating).
    """
    try:
        shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    shm.close()
    shm.unlink()
    return True
