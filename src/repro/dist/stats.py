"""Sharded-service statistics: per-shard rollups over the base report.

:class:`ShardedStats` extends :class:`~repro.serving.stats.ServiceStats`
so every consumer of the single-process report (CLI summary, bench
recorder, obs gauges) works unchanged on a sharded run, with the process
topology and the cut-edge accounting layered on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..serving.stats import ServiceStats

__all__ = ["ShardStats", "EdgeAccount", "ShardedStats"]


@dataclass
class ShardStats:
    """One shard worker's lifetime accounting."""

    shard: int
    windows: int = 0
    events: int = 0
    #: shared-memory segments the shard materialized (changed windows)
    segments: int = 0
    #: owned edges after the final window
    edges_final: int = 0
    #: owned edges with a remote src after the final window
    cut_edges_final: int = 0
    #: process incarnation serving the shard (restarts bump it)
    generation: int = 0
    #: restart attempts spent on this shard (drives the per-shard
    #: exponential backoff schedule)
    restart_attempts: int = 0


@dataclass(frozen=True)
class EdgeAccount:
    """One window's cross-shard edge accounting.

    The merge invariant under test: shard subgraphs partition the global
    edge set, so ``sum(shard_edges) == global_edges`` on every window —
    exactly, not approximately.
    """

    window: int
    shard_edges: Tuple[int, ...]
    cut_edges: Tuple[int, ...]
    global_edges: int

    @property
    def total_shard_edges(self) -> int:
        """Edges summed over all shard subgraphs."""
        return sum(self.shard_edges)

    @property
    def total_cut_edges(self) -> int:
        """Cross-shard (cut) edges summed over all shards."""
        return sum(self.cut_edges)


@dataclass
class ShardedStats(ServiceStats):
    """Aggregated report of one :meth:`ShardedService.serve` run."""

    shards: int = 0
    #: shard-worker restarts performed over the whole run
    restarts: int = 0
    #: real SIGKILLs the chaos schedule delivered to workers
    sigkills: int = 0
    shard_stats: List[ShardStats] = field(default_factory=list, repr=False)
    #: per-window cut-edge accounting, in window order
    edge_accounts: List[EdgeAccount] = field(default_factory=list, repr=False)

    @property
    def cut_edges_final(self) -> int:
        """Cross-shard edges in the final window's global snapshot."""
        if not self.edge_accounts:
            return 0
        return self.edge_accounts[-1].total_cut_edges

    def as_dict(self) -> Dict[str, float]:
        """Flat metric mapping: the base report plus the dist extras."""
        out = super().as_dict()
        out.update(
            {
                "shards": self.shards,
                "restarts": self.restarts,
                "restart_attempts": sum(
                    s.restart_attempts for s in self.shard_stats
                ),
                "sigkills": self.sigkills,
                "cut_edges_final": self.cut_edges_final,
            }
        )
        return out

    def summary(self) -> str:
        """The single-process summary plus one distribution line."""
        per_shard = ", ".join(
            f"shard{s.shard}={s.events}ev/{s.segments}seg"
            + (f"/gen{s.generation}" if s.generation else "")
            for s in self.shard_stats
        )
        lines = [
            super().summary(),
            f"distribution       {self.shards} shards, "
            f"{self.restarts} restarts"
            + (f" ({self.sigkills} sigkilled)" if self.sigkills else "")
            + f", {self.cut_edges_final} cut edges ({per_shard})",
        ]
        return "\n".join(lines)
