"""The shard worker process: routed events -> shared-memory window deltas.

Each worker owns one shard of the vertex space.  It replays its routed
event slice through a :class:`~repro.serving.ingest.ShardedWindowBuilder`
(the same incremental delta/apply machinery as single-process ingest),
materializes each *changed* window's delta and shard snapshot into a
shared-memory segment, and announces it on the coordinator queue.  All
message payloads are scalars plus a :class:`~repro.dist.shmem.SegmentSpec`
— arrays cross the process boundary only through shared memory.
"""

from __future__ import annotations

import os
import queue as queue_mod
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..graphs.continuous import EdgeEvent
from ..graphs.snapshot import GraphSnapshot
from ..obs import Tracer, counter_add, gauge_set, install, uninstall
from ..obs import span as obs_span
from ..obs.distributed import ShardSpanBatch, TraceContext, encode_records
from ..serving.ingest import ShardedWindowBuilder
from .shmem import SegmentSpec, write_segment

__all__ = [
    "ShardWindowMessage",
    "ShardDoneMessage",
    "ShardErrorMessage",
    "ShardTraceMessage",
    "segment_name",
    "shard_worker_main",
]

#: storage order of the delta fields inside a window segment
DELTA_FIELDS = ("added_src", "added_dst", "removed_src", "removed_dst")


@dataclass(frozen=True)
class ShardWindowMessage:
    """One shard's contribution to one window."""

    shard: int
    generation: int
    window: int
    num_events: int
    #: the window's delta segment; ``None`` when the shard saw no net
    #: change (the coordinator then reuses the previous merge as-is)
    segment: Optional[SegmentSpec]
    #: edges the shard owns after this window (dst on this shard)
    shard_edges: int
    #: owned edges whose src lives on another shard — each one is an
    #: inbound cross-shard transfer in the communication model
    cut_edges: int
    close_time: float
    closed_at: float


@dataclass(frozen=True)
class ShardDoneMessage:
    """The shard served its last window and is exiting cleanly."""

    shard: int
    generation: int


@dataclass(frozen=True)
class ShardErrorMessage:
    """The shard hit an unrecoverable error (coordinator aborts the run)."""

    shard: int
    generation: int
    error: str


@dataclass(frozen=True)
class ShardTraceMessage:
    """One flushed span/metrics batch from a traced shard worker.

    Sent *before* the window message whose boundary triggered the flush
    (and once more before ``ShardDoneMessage``), so the coordinator's
    gather loop always consumes it while it is still reading the queue.
    The payload is scalars/tuples only — spans are tiny next to the edge
    arrays, so they ride the queue, never shared memory.
    """

    shard: int
    generation: int
    batch: ShardSpanBatch


def segment_name(session: str, shard: int, generation: int, window: int) -> str:
    """Deterministic segment name for one ``(shard, generation, window)``.

    Determinism is what lets the coordinator sweep segments a crashed
    worker created but never announced — it can enumerate every name the
    worker could have used.
    """
    return f"{session}s{shard}g{generation}w{window}"


def shard_worker_main(
    shard: int,
    generation: int,
    session: str,
    routed: List[Tuple[int, EdgeEvent]],
    out_queue,
    num_vertices: int,
    feature_dim: int,
    window: float,
    origin: float,
    start_window: int,
    end_window: int,
    initial: Optional[GraphSnapshot],
    assignment: np.ndarray,
    crash_windows: Tuple[Tuple[int, int], ...] = (),
    trace_ctx: Optional[TraceContext] = None,
    parent_pid: Optional[int] = None,
) -> None:
    """Worker process entry point (run under the ``fork`` start method).

    ``routed``, ``initial``, and ``assignment`` are inherited from the
    coordinator's address space at fork time — no pickling, no copies
    beyond the OS's copy-on-write pages.

    ``crash_windows`` is the deterministic fault hook: a listed
    ``(shard, window)`` hard-exits the generation-0 worker *before* the
    window's segment exists, so the restart path never has to reconcile
    a half-written segment from an injected crash.

    ``parent_pid`` arms the orphan watchdog: every queue put becomes a
    bounded-timeout loop that re-checks whether the coordinator is still
    this process's parent.  A SIGKILLed coordinator reparents the worker
    (``getppid`` changes) while the worker is blocked on a full queue
    nobody will ever drain — the watchdog turns that hang into a prompt
    ``_exit``, so a durable resume never finds live orphans holding the
    previous run's shared-memory segments.

    ``trace_ctx`` switches on in-worker tracing: the worker replaces the
    tracer it inherited from the coordinator's fork (recording into that
    copy would be invisible to the parent) with its own, wraps ingest and
    window materialization in spans, and flushes a
    :class:`ShardTraceMessage` before every window message so span
    memory never grows with the run.
    """
    tracer: Optional[Tracer] = None
    if trace_ctx is not None:
        uninstall()
        tracer = install(Tracer(name=f"shard{shard}"))

    def _put(msg) -> None:
        """Queue put that gives up when the coordinator is gone."""
        if parent_pid is None:
            out_queue.put(msg)
            return
        while True:
            try:
                out_queue.put(msg, timeout=0.5)
                return
            except queue_mod.Full:
                if os.getppid() != parent_pid:
                    os._exit(3)

    def _flush(boundary: int) -> None:
        """Drain the local tracer into a trace message for ``boundary``."""
        assert tracer is not None and trace_ctx is not None
        _put(
            ShardTraceMessage(
                shard=shard,
                generation=generation,
                batch=ShardSpanBatch(
                    context=trace_ctx,
                    window=boundary,
                    spans=encode_records(tracer.drain()),
                    metrics=tracer.metrics.as_dict(),
                    thread_names=tuple(tracer.thread_names()),
                    epoch_s=tracer.epoch_s,
                ),
            )
        )

    try:
        builder = ShardedWindowBuilder(
            num_vertices,
            window,
            feature_dim=feature_dim,
            initial=initial,
            origin=origin,
            start_window=start_window,
        )
        it = iter(builder.build(routed, end_window))
        while True:
            # The span covers the generator advance, so its duration is
            # this shard's incremental delta/apply work for the window.
            with obs_span("shard.ingest") as sp:
                win = next(it, None)
                if win is not None and sp.enabled:
                    sp.set_attr("window", win.index)
                    sp.add("events", win.num_events)
            if win is None:
                break
            if generation == 0 and (shard, win.index) in crash_windows:
                os._exit(17)
            with obs_span("shard.window", window=win.index) as sp:
                segment = None
                if win.delta.num_changes:
                    delta = win.delta
                    snap_src, snap_dst = win.snapshot.edge_arrays()
                    segment = write_segment(
                        segment_name(session, shard, generation, win.index),
                        [
                            ("added_src", delta.added_src),
                            ("added_dst", delta.added_dst),
                            ("removed_src", delta.removed_src),
                            ("removed_dst", delta.removed_dst),
                            ("snap_src", snap_src),
                            ("snap_dst", snap_dst),
                        ],
                    )
                src, _dst = win.snapshot.edge_arrays()
                cut = int(np.sum(assignment[src] != shard)) if len(src) else 0
                if sp.enabled:
                    sp.add("changes", win.delta.num_changes)
                    sp.add("cut_edges", cut)
            if tracer is not None:
                # Registry counters reconcile with ShardStats on healthy
                # runs (the attribution test); gauges track levels.
                counter_add("shard.windows", 1)
                counter_add("shard.events", win.num_events)
                counter_add("shard.segments", 1 if segment is not None else 0)
                gauge_set("shard.edges", win.snapshot.num_edges)
                gauge_set("shard.cut_edges", cut)
                _flush(win.index)
            _put(
                ShardWindowMessage(
                    shard=shard,
                    generation=generation,
                    window=win.index,
                    num_events=win.num_events,
                    segment=segment,
                    shard_edges=win.snapshot.num_edges,
                    cut_edges=cut,
                    close_time=win.close_time,
                    closed_at=win.closed_at,
                )
            )
        if tracer is not None:
            # Terminal flush: carries the last ingest span (the advance
            # that returned None) and the final cumulative metrics.  It
            # uses the one-past-last window index so it sorts after every
            # window flush in the merged trace.
            _flush(end_window)
        _put(ShardDoneMessage(shard=shard, generation=generation))
    except BaseException as exc:  # noqa: BLE001 - process boundary
        _put(
            ShardErrorMessage(
                shard=shard,
                generation=generation,
                error=f"{type(exc).__name__}: {exc}",
            )
        )
