"""The DiTile-DGNN accelerator model — the paper's proposed design.

Combines the three contributions:

1. redundancy-free dynamic parallelization (tiling + ``Ps``/``Pv`` search,
   §4) via :class:`repro.core.scheduler.DiTileScheduler`;
2. balance-aware workload optimization (§5) via Algorithm 2's round-robin
   placement;
3. the reconfigurable distributed tile array (§6): horizontal rings for
   regular traffic, vertical Re-Link bypasses for irregular traffic.

Each contribution can be disabled through :class:`SchedulerOptions` /
``reconfigurable_noc``, yielding the six Fig. 11(b) ablation variants (see
:mod:`repro.experiments.ablation`).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Tuple

from .accel.config import HardwareConfig
from .accel.metrics import CostSummary
from .baselines.algorithms import AlgorithmParams, Placement, build_costs
from .baselines.base import AcceleratorModel
from .caching import LRUCache
from .core.plan import DGNNSpec, ExecutionPlan
from .core.scheduler import DiTileScheduler, SchedulerOptions
from .graphs.dynamic import DynamicGraph

__all__ = ["DiTileAccelerator"]


class DiTileAccelerator(AcceleratorModel):
    """The proposed accelerator: DiTile-Alg on the reconfigurable tile array."""

    name = "DiTile-DGNN"
    algorithm = "ditile"
    topology = "ditile"

    #: default bound on the per-(graph, spec) plan memo; a long-lived model
    #: fed an open-ended stream of workloads must not retain every plan
    DEFAULT_PLAN_CACHE_CAPACITY = 64

    def __init__(
        self,
        hardware: Optional[HardwareConfig] = None,
        options: SchedulerOptions = SchedulerOptions(),
        params: Optional[AlgorithmParams] = None,
        reconfigurable_noc: bool = True,
        plan_cache_capacity: Optional[int] = None,
    ):
        if not reconfigurable_noc:
            # The NoRa ablation falls back to a conventional static mesh.
            self.topology = "mesh"
        super().__init__(hardware, params)
        if not reconfigurable_noc:
            assert not self.hardware.noc.relink_enabled
        self.options = options
        self.reconfigurable_noc = reconfigurable_noc
        # The Balanced-and-Dynamic Workload Reservoir batches invalidated
        # vertices per subgraph, so DiTile's scattered feature gathers
        # coalesce into near-sequential bursts.
        if options.enable_tiling and options.enable_balance:
            self.hardware = replace(
                self.hardware,
                dram=replace(self.hardware.dram, random_efficiency=0.45),
            )
        self.scheduler = DiTileScheduler(
            total_tiles=self.hardware.total_tiles,
            distributed_buffer_bytes=float(self.hardware.distributed_buffer_bytes),
            options=options,
        )
        if plan_cache_capacity is None:
            plan_cache_capacity = self.DEFAULT_PLAN_CACHE_CAPACITY
        self._plan_cache: LRUCache[Tuple[int, DGNNSpec], ExecutionPlan] = LRUCache(
            plan_cache_capacity
        )

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan(self, graph: DynamicGraph, spec: DGNNSpec) -> ExecutionPlan:
        """The scheduler's execution plan for this workload (memoized, LRU)."""
        key = (id(graph), spec)
        plan = self._plan_cache.get(key)
        if plan is None:
            plan = self.scheduler.plan(graph, spec)
            self._plan_cache.put(key, plan)
        return plan

    def placement(self, graph: DynamicGraph, spec: DGNNSpec) -> Placement:
        return self.placement_from_plan(self.plan(graph, spec))

    def placement_from_plan(self, plan: ExecutionPlan) -> Placement:
        """The tile-array mapping a (possibly cached) plan prescribes.

        Split out from :meth:`placement` so the streaming service's plan
        manager can apply a plan computed for an earlier, similar workload
        window without re-invoking the scheduler.
        """
        factors = plan.factors
        occupancy = factors.tiles_used / self.hardware.total_tiles
        utilization = max(
            min(plan.workload.utilization * occupancy, 1.0), 1e-6
        )
        return Placement(
            snapshot_groups=factors.snapshot_groups,
            vertex_groups=factors.vertex_groups,
            load_utilization=utilization,
            reuse_capable=self.options.enable_reuse,
            reconfigurable=self.reconfigurable_noc,
            # The vertical rings reduce partial sums in-network; a static
            # mesh (NoRa ablation) cannot.
            partial_aggregation=self.reconfigurable_noc,
        )

    def tiling_alpha(self, graph: DynamicGraph, spec: DGNNSpec) -> int:
        return self.plan(graph, spec).tiling.alpha

    # ------------------------------------------------------------------
    # Costs
    # ------------------------------------------------------------------
    def build_costs(self, graph: DynamicGraph, spec: DGNNSpec) -> CostSummary:
        algorithm = "ditile" if self.options.enable_reuse else "re"
        costs = build_costs(
            graph,
            spec,
            algorithm,
            self.placement(graph, spec),
            self.params,
            tiling_alpha=self.tiling_alpha(graph, spec),
        )
        return CostSummary(
            algorithm="ditile",
            snapshots=costs.snapshots,
            load_utilization=costs.load_utilization,
        )
