"""Durable ingest: write-ahead log, checkpoints, crash-consistent recovery.

The serving stack (single-process :class:`~repro.serving.service.StreamingService`
and the sharded :class:`~repro.dist.coordinator.ShardedService`) is
memory-only by default: a coordinator crash loses every ingested event
and in-flight window.  This package makes a run crash-consistent:

* :mod:`.wal` — a segmented append-only event log with per-record
  checksums (log-before-ack at the ingest boundary) plus the run lock
  that serializes ownership of a durability directory;
* :mod:`.checkpoint` — atomically written, N-deep-retained snapshots of
  the serving state at a window watermark (global snapshot, plan-cache
  state, per-window results);
* :mod:`.recovery` — the recovery manager gluing both into the serving
  layer: on ``repro serve --wal DIR --resume`` it loads the newest valid
  checkpoint, replays the WAL suffix from the watermark with
  exactly-once window semantics, and rejoins the live stream;
* :mod:`.harness` — the ``repro chaos recover`` crash/recovery sweep:
  real SIGKILL of the serving process at deterministic commit points,
  resume, and byte-compare against the uninterrupted reference.

The invariant all of it defends: a run killed at **any** window boundary
and resumed produces per-window results byte-identical to the
uninterrupted run, for any shard count and pipeline depth.  See
``docs/resilience.md`` ("Durability & recovery").
"""

from .checkpoint import Checkpoint, CheckpointError, CheckpointStore
from .config import DurabilityConfig
from .harness import RecoverOutcome, RecoverReport, run_recover_sweep
from .recovery import DurableRun, SimulatedCrash, WindowCommitter
from .wal import (
    RunLock,
    WalCorruptionError,
    WalLockedError,
    WriteAheadLog,
)

__all__ = [
    "DurabilityConfig",
    "WriteAheadLog",
    "WalCorruptionError",
    "WalLockedError",
    "RunLock",
    "Checkpoint",
    "CheckpointError",
    "CheckpointStore",
    "DurableRun",
    "WindowCommitter",
    "SimulatedCrash",
    "RecoverOutcome",
    "RecoverReport",
    "run_recover_sweep",
]
