"""Atomic, N-deep-retained checkpoints of the serving state.

A checkpoint captures everything recovery needs to make the resumed run
byte-identical to the uninterrupted one from the *watermark* onwards:

* the graph snapshot as of the last committed window (the coordinator
  snapshot in the sharded service — per-shard subgraphs are re-derived
  from it with the same seeded partition, so they are not stored twice);
* the plan-manager state (cache entries in LRU order, hit/miss/replan
  counters, circuit-breaker scalars) so post-resume plan decisions
  match the uninterrupted run exactly;
* the per-window results and latency records already produced, so the
  final report contains every window, not just the replayed suffix;
* the stats counters that summarize the committed prefix.

File format: ``MAGIC || len u32 || crc32 u32 || pickle(payload)``,
written to ``ckpt-{watermark:08d}.bin`` via write-to-temp, fsync,
``os.replace``, fsync-directory — a checkpoint either exists completely
or not at all.  ``load_latest`` walks newest-first and skips files that
fail the magic/length/checksum/unpickle gauntlet, so a crash *during*
a checkpoint write (or bit rot in the newest file) falls back to the
previous retained checkpoint instead of failing the resume.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["Checkpoint", "CheckpointError", "CheckpointStore"]

_MAGIC = b"RDCKPT1\n"
_HEADER = struct.Struct("<II")  # payload length, payload crc32


class CheckpointError(RuntimeError):
    """A checkpoint file failed validation (magic, length, crc, pickle)."""


@dataclass
class Checkpoint:
    """One committed-prefix snapshot of a durable serving run."""

    #: first window index the resumed run must execute (== windows committed)
    watermark: int
    #: graph snapshot after applying every window below the watermark
    snapshot: Any
    #: :meth:`~repro.serving.plan_manager.PlanManager.export_state` output
    plan_state: Dict[str, Any]
    #: per-window results for windows below the watermark, in window order
    results: List[Any] = field(default_factory=list)
    #: per-window latency records matching ``results``
    records: List[Any] = field(default_factory=list)
    #: committed-prefix stats counters (events, late_events, ...)
    counters: Dict[str, int] = field(default_factory=dict)
    #: stream positions logged to the WAL when this checkpoint was cut
    wal_records: int = 0
    #: run-shape fingerprint (shards, window, origin, ...) checked on resume
    meta: Dict[str, Any] = field(default_factory=dict)
    #: sharded-service extras (per-shard counters, edge accounts)
    shard_state: Optional[Dict[str, Any]] = None


def _checkpoint_path(directory: Path, watermark: int) -> Path:
    return directory / f"ckpt-{watermark:08d}.bin"


def _fsync_dir(directory: Path) -> None:
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class CheckpointStore:
    """Directory of atomically written checkpoints, newest ``retain`` kept."""

    def __init__(self, directory, retain: int = 3, fsync: bool = True):
        self.directory = Path(directory)
        self.retain = retain
        self.fsync = fsync
        #: checkpoints written through this instance
        self.saved = 0
        self.directory.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def save(self, checkpoint: Checkpoint) -> Path:
        """Atomically persist ``checkpoint`` and prune beyond ``retain``."""
        payload = pickle.dumps(checkpoint, protocol=pickle.HIGHEST_PROTOCOL)
        blob = _MAGIC + _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        final = _checkpoint_path(self.directory, checkpoint.watermark)
        tmp = final.with_suffix(".tmp")
        with tmp.open("wb") as handle:
            handle.write(blob)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        os.replace(tmp, final)
        if self.fsync:
            _fsync_dir(self.directory)
        self.saved += 1
        self._prune()
        return final

    def _prune(self) -> None:
        files = self._list()
        for path, _ in files[: max(0, len(files) - self.retain)]:
            try:
                path.unlink()
            except FileNotFoundError:  # pragma: no cover - concurrent prune
                pass

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def _list(self) -> List[Tuple[Path, int]]:
        """``(path, watermark)`` pairs, oldest watermark first."""
        out: List[Tuple[Path, int]] = []
        for path in self.directory.glob("ckpt-*.bin"):
            stem = path.name[len("ckpt-"):-len(".bin")]
            try:
                out.append((path, int(stem)))
            except ValueError:
                continue
        out.sort(key=lambda pair: pair[1])
        return out

    def load(self, path: Path) -> Checkpoint:
        """Strictly load one checkpoint file; :class:`CheckpointError` on rot."""
        data = Path(path).read_bytes()
        if not data.startswith(_MAGIC):
            raise CheckpointError(f"{path}: bad checkpoint magic")
        offset = len(_MAGIC)
        if len(data) < offset + _HEADER.size:
            raise CheckpointError(f"{path}: truncated checkpoint header")
        length, crc = _HEADER.unpack_from(data, offset)
        payload = data[offset + _HEADER.size:]
        if len(payload) != length:
            raise CheckpointError(
                f"{path}: payload is {len(payload)} bytes, header says {length}"
            )
        if zlib.crc32(payload) != crc:
            raise CheckpointError(f"{path}: checksum mismatch")
        try:
            checkpoint = pickle.loads(payload)
        except Exception as exc:
            raise CheckpointError(f"{path}: unpicklable payload: {exc}") from exc
        if not isinstance(checkpoint, Checkpoint):
            raise CheckpointError(
                f"{path}: payload is {type(checkpoint).__name__}, "
                "expected Checkpoint"
            )
        return checkpoint

    def load_latest(self) -> Optional[Checkpoint]:
        """Newest checkpoint that validates; ``None`` if none does."""
        for path, _ in reversed(self._list()):
            try:
                return self.load(path)
            except (CheckpointError, OSError):
                continue
        return None
