"""Configuration of the durable-ingest layer.

Kept dependency-free (no serving imports) so
:class:`~repro.serving.service.ServiceConfig` can carry an optional
``durability`` field without an import cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

__all__ = ["DurabilityConfig"]


@dataclass(frozen=True)
class DurabilityConfig:
    """Tunable knobs of the write-ahead log / checkpoint / recovery stack.

    ``None`` on :class:`~repro.serving.service.ServiceConfig` (the
    default) disables durability entirely — the service then runs the
    exact pre-durability code path, which the bench counter gate relies
    on.
    """

    #: durability root: WAL segments under ``<dir>/wal``, checkpoints
    #: under ``<dir>/checkpoints``, the run lock at ``<dir>/LOCK``
    directory: Union[str, Path] = "wal"
    #: resume from the newest valid checkpoint + WAL suffix instead of
    #: refusing to reuse a non-empty durability directory
    resume: bool = False
    #: windows between checkpoints (1 = checkpoint at every commit)
    checkpoint_interval: int = 1
    #: checkpoints retained on disk (older ones are deleted after a
    #: successful atomic write of a newer one)
    retain: int = 3
    #: WAL segment rotation threshold, in bytes of encoded records
    segment_bytes: int = 256 * 1024
    #: fsync WAL segments and checkpoints (disable only in tests that
    #: measure the pure CPU cost of the durable path)
    fsync: bool = True
    #: chaos hook: SIGKILL the serving process right after the commit of
    #: this window index is durable (checkpoint written and fsynced) —
    #: the ``repro chaos recover`` harness and the CI chaos-recovery job
    kill_after_commit: Optional[int] = None
    #: test hook: raise :class:`~repro.durability.recovery.SimulatedCrash`
    #: after the commit of this window index (in-process crash-point
    #: sweeps; the run lock is released on the way out, unlike SIGKILL)
    abort_after_commit: Optional[int] = None

    def __post_init__(self) -> None:
        if self.checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
        if self.retain < 1:
            raise ValueError("retain must be >= 1")
        if self.segment_bytes < 64:
            raise ValueError("segment_bytes must be >= 64")

    @property
    def root(self) -> Path:
        """The durability root directory as a :class:`~pathlib.Path`."""
        return Path(self.directory)

    @property
    def wal_dir(self) -> Path:
        """Where WAL segments live."""
        return self.root / "wal"

    @property
    def checkpoint_dir(self) -> Path:
        """Where checkpoints live."""
        return self.root / "checkpoints"

    @property
    def lock_path(self) -> Path:
        """The run-lock file."""
        return self.root / "LOCK"
