"""The ``repro chaos recover`` harness: kill, resume, byte-compare.

:func:`run_recover_sweep` drives the durability guarantee end to end at
real process granularity: for each selected window boundary it forks a
victim process that serves the stream with ``kill_after_commit`` armed —
the victim SIGKILLs *itself* the instant that window's commit is durable
(checkpoint written, WAL fsynced), exactly the no-cleanup crash an OOM
kill or power loss produces (sharded victims additionally strand their
shard workers, shared-memory segments, and the run lock).  The harness
then resumes from the crashed directory in-process and byte-compares the
resumed run's deterministic per-window results JSON against an
uninterrupted reference run.

Everything in the resulting :class:`RecoverReport` is a pure function of
(stream, spec, config, kill points): kill exit codes, byte-identity
verdicts, recovered/replayed window counts, WAL record counts.  Repeated
sweeps byte-compare — the CI chaos-recovery job relies on it.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import shutil
import signal
import tempfile
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

from .config import DurabilityConfig

__all__ = ["RecoverOutcome", "RecoverReport", "run_recover_sweep"]


@dataclass(frozen=True)
class RecoverOutcome:
    """One kill point's verdict."""

    kill_point: int
    #: the victim's exit code (``-SIGKILL`` on a healthy kill)
    exitcode: Optional[int]
    #: whether the resumed run's results JSON byte-matched the reference
    identical: bool
    #: windows restored from the checkpoint (never re-executed)
    recovered_windows: int
    #: windows past the watermark re-executed from WAL replay
    replayed_windows: int
    #: WAL records visible to the resumed run (replayed + re-appended)
    wal_records: int

    @property
    def ok(self) -> bool:
        """Killed by SIGKILL and resumed byte-identically."""
        return self.exitcode == -signal.SIGKILL and self.identical


@dataclass
class RecoverReport:
    """The deterministic outcome of one recovery sweep."""

    shards: int = 0
    pipeline_depth: int = 1
    windows: int = 0
    outcomes: List[RecoverOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every kill point recovered byte-identically."""
        return bool(self.outcomes) and all(o.ok for o in self.outcomes)

    @property
    def exit_code(self) -> int:
        """Process exit code: 0 on full recovery, 1 otherwise."""
        return 0 if self.ok else 1

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "shards": self.shards,
            "pipeline_depth": self.pipeline_depth,
            "windows": self.windows,
            "outcomes": [
                {
                    "kill_point": o.kill_point,
                    "exitcode": o.exitcode,
                    "identical": o.identical,
                    "recovered_windows": o.recovered_windows,
                    "replayed_windows": o.replayed_windows,
                    "wal_records": o.wal_records,
                    "ok": o.ok,
                }
                for o in self.outcomes
            ],
        }

    def to_json(self) -> str:
        """Canonical serialization for byte-identity comparisons."""
        return json.dumps(self.as_dict(), sort_keys=True, indent=2)

    def summary(self) -> str:
        """Human-readable sweep verdict."""
        bad = [o for o in self.outcomes if not o.ok]
        head = (
            f"recovery sweep     {len(self.outcomes)} kill points over "
            f"{self.windows} windows "
            f"(shards={self.shards}, depth={self.pipeline_depth}): "
        )
        if not self.outcomes:
            return head + "nothing to kill"
        if not bad:
            return head + "all resumed byte-identical"
        sites = ", ".join(
            f"w{o.kill_point}"
            f"[{'kill' if o.exitcode != -signal.SIGKILL else 'diff'}]"
            for o in bad
        )
        return head + f"{len(bad)} FAILED ({sites})"


def _serve(
    stream: Any,
    spec: Any,
    config: Any,
    shards: int,
    durability: Optional[DurabilityConfig],
) -> Any:
    """One serve run — single-process or sharded — returning its report."""
    from dataclasses import replace

    from ..serving.service import StreamingService

    cfg = replace(config, durability=durability)
    if shards >= 1:
        from ..dist import ShardedConfig, ShardedService

        return ShardedService(config=ShardedConfig(shards=shards, service=cfg)).serve(
            stream, spec
        )
    return StreamingService(config=cfg).serve(stream, spec)


def _victim(stream, spec, config, shards, directory, kill_point) -> None:
    """Process target: serve with the self-SIGKILL hook armed.

    Reaching the end without being killed means the hook never fired
    (a bad kill point) — exit 0 so the parent flags it via exitcode.
    """
    durability = DurabilityConfig(
        directory=directory, kill_after_commit=kill_point
    )
    _serve(stream, spec, config, shards, durability)


def run_recover_sweep(
    stream: Any,
    spec: Any,
    config: Optional[Any] = None,
    shards: int = 0,
    kill_points: Optional[Sequence[int]] = None,
    root: Optional[str] = None,
    keep_artifacts: bool = False,
    results_json: Optional[Callable[[Any], str]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> Tuple[RecoverReport, str]:
    """Kill-and-resume every selected window boundary; byte-compare each.

    Returns ``(report, reference_json)`` — the deterministic sweep
    report and the uninterrupted reference results it compared against.
    ``kill_points`` defaults to every window boundary.  Artifacts (WAL,
    checkpoints, the resumed dump) of *failed* kill points are always
    kept under ``root`` for post-mortem; passing ``keep_artifacts``
    keeps the healthy ones too.
    """
    from ..serving.service import ServiceConfig

    if config is None:
        config = ServiceConfig()
    if results_json is None:
        from ..cli import _window_results_json

        results_json = _window_results_json

    reference = _serve(stream, spec, config, shards, durability=None)
    reference_json = results_json(reference)
    n = len(reference.results)
    points = list(kill_points) if kill_points is not None else list(range(n))
    bad_points = [k for k in points if not 0 <= k < n]
    if bad_points:
        raise ValueError(
            f"kill points {bad_points} out of range [0, {n}) for this stream"
        )

    report = RecoverReport(
        shards=shards, pipeline_depth=config.pipeline_depth, windows=n
    )
    base = root or tempfile.mkdtemp(prefix="repro-recover-")
    os.makedirs(base, exist_ok=True)
    # fork: the victim inherits the stream/spec/config objects directly,
    # and a forked child is exactly the process shape a sharded run has.
    ctx = multiprocessing.get_context("fork")
    for k in points:
        workdir = os.path.join(base, f"kill-{k:04d}")
        victim = ctx.Process(
            target=_victim, args=(stream, spec, config, shards, workdir, k)
        )
        victim.start()
        victim.join(timeout=600)
        if victim.is_alive():  # pragma: no cover - hung victim
            victim.terminate()
            victim.join()
        resumed_json = ""
        recovered = replayed = wal_records = 0
        identical = False
        if victim.exitcode == -signal.SIGKILL:
            resumed = _serve(
                stream,
                spec,
                config,
                shards,
                DurabilityConfig(directory=workdir, resume=True),
            )
            resumed_json = results_json(resumed)
            identical = resumed_json == reference_json
            recovered = resumed.stats.recovered_windows
            replayed = resumed.stats.replayed_windows
            wal_records = resumed.stats.wal_records
        outcome = RecoverOutcome(
            kill_point=k,
            exitcode=victim.exitcode,
            identical=identical,
            recovered_windows=recovered,
            replayed_windows=replayed,
            wal_records=wal_records,
        )
        report.outcomes.append(outcome)
        if progress is not None:
            verdict = "ok" if outcome.ok else "FAILED"
            progress(
                f"kill@{k}: exit={victim.exitcode} recovered={recovered} "
                f"replayed={replayed} -> {verdict}"
            )
        if outcome.ok and not keep_artifacts:
            shutil.rmtree(workdir, ignore_errors=True)
        elif not outcome.ok and resumed_json:
            # Post-mortem breadcrumbs next to the WAL/checkpoints.
            with open(os.path.join(workdir, "resumed.json"), "w") as fh:  # repro: noqa[DUR001] post-mortem breadcrumb, not durable state: losing it to a crash of the *harness* costs nothing
                fh.write(resumed_json + "\n")
            with open(os.path.join(workdir, "reference.json"), "w") as fh:  # repro: noqa[DUR001] post-mortem breadcrumb, not durable state
                fh.write(reference_json + "\n")
    if report.ok and not keep_artifacts and root is None:
        shutil.rmtree(base, ignore_errors=True)
    return report, reference_json
