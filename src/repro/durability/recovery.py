"""Crash-consistent recovery: glue between WAL/checkpoints and serving.

:class:`DurableRun` is the lifecycle object the serving layer holds for
one durable run.  ``start()`` acquires the run lock (reclaiming a dead
owner's orphaned workers and shared-memory segments first), opens the
WAL (replaying and tail-truncating as needed), and — on ``resume`` —
loads the newest valid checkpoint.  The service then:

* restores the committed prefix from the checkpoint (results, records,
  counters, plan-manager state, graph snapshot) and starts its window
  machinery at the checkpoint watermark;
* wraps its live event source with :meth:`DurableRun.wrap_stream`,
  which yields the replayed WAL suffix first (no re-logging) and then
  the live events — each appended to the WAL *before* it is yielded
  (log-before-ack), with the already-logged prefix of the source
  skipped by stream position;
* commits through the :class:`WindowCommitter` the run hands out: at
  every window boundary the WAL is fsynced, and every
  ``checkpoint_interval`` windows a checkpoint is cut atomically.

Exactly-once window semantics fall out of the combination: windows
below the watermark come from the checkpoint and are never re-executed;
windows between the watermark and the WAL tail are re-executed from
replayed events, deterministically reproducing the pre-crash results
byte for byte; windows past the WAL tail run live.  A checkpoint newer
than the WAL tail (possible only if WAL segments were deleted by hand)
degrades gracefully — the missing events are simply re-consumed from
the live source, which the position-skip logic treats as "not logged
yet".
"""

from __future__ import annotations

import os
import signal
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, List, Optional, Tuple

from ..graphs.continuous import EdgeEvent, window_index
from ..obs import gauge_set as obs_gauge_set
from ..obs import span as obs_span
from ..serving.stats import wall_clock
from .checkpoint import Checkpoint, CheckpointStore
from .config import DurabilityConfig
from .wal import LockInfo, RunLock, WriteAheadLog

__all__ = [
    "DurableRun",
    "SimulatedCrash",
    "WindowCommitter",
    "reclaim_stale_run",
]


class SimulatedCrash(RuntimeError):
    """Raised by the ``abort_after_commit`` hook for in-process crash tests.

    Unlike the SIGKILL hook it unwinds through ``finally`` blocks, so
    the run lock is released and the same process can immediately
    resume — which is what lets the crash-point parity sweep run every
    kill point inside one pytest process.
    """

    def __init__(self, window: int):
        super().__init__(f"simulated crash after commit of window {window}")
        self.window = window


class WindowCommitter:
    """The per-window commit barrier handed to the dispatch pipeline.

    ``commit(index)`` runs on the dispatch thread after window ``index``
    completes (success or recorded failure): the WAL is made durable up
    to every event the window consumed, then — on the checkpoint
    cadence — ``capture(watermark)`` builds a :class:`Checkpoint` that
    is written atomically.  Only after both does a chaos kill/abort hook
    fire, so a resumed run never observes a commit that was not durable.
    """

    def __init__(
        self,
        wal: WriteAheadLog,
        store: Optional[CheckpointStore],
        capture: Callable[[int, Any, Any], Checkpoint],
        interval: int = 1,
        kill_after: Optional[int] = None,
        abort_after: Optional[int] = None,
        on_commit: Optional[Callable[[int], None]] = None,
    ):
        self._wal = wal
        self._store = store
        self._capture = capture
        self._interval = interval
        self._kill_after = kill_after
        self._abort_after = abort_after
        self._on_commit = on_commit
        self.commits = 0
        self.checkpoints = 0

    def commit(self, index: int, snapshot: Any, plan_state: Any) -> None:
        """Make window ``index`` durable; fire chaos hooks afterwards.

        ``snapshot`` is the committed window's graph snapshot and
        ``plan_state`` the plan-manager snapshot taken when that window's
        plan *resolved* (resolution runs ahead of commit at depth > 1) —
        both flow into ``capture`` so the checkpoint describes exactly
        the sequential prefix up to ``index``.
        """
        watermark = index + 1
        self._wal.sync()
        if self._store is not None and watermark % self._interval == 0:
            with obs_span("durability.checkpoint", window=index):
                self._store.save(self._capture(watermark, snapshot, plan_state))
            self.checkpoints += 1
        self.commits += 1
        if self._on_commit is not None:
            self._on_commit(index)
        if self._kill_after == index:
            # Real crash: no cleanup, no lock release — exactly what an
            # OOM kill or power loss leaves behind.
            os.kill(os.getpid(), signal.SIGKILL)
        if self._abort_after == index:
            raise SimulatedCrash(index)


def _orphan_cmdline(pid: int) -> Optional[bytes]:
    try:
        return Path(f"/proc/{pid}/cmdline").read_bytes()
    except OSError:
        return None


def reclaim_stale_run(info: LockInfo) -> Tuple[int, int]:
    """Clean up after a dead lock owner; returns ``(killed, swept)``.

    Kills the shard-worker pids the dead coordinator recorded in its
    lock (only if ``/proc`` confirms a live python process — pids
    recycle) and sweeps the full shared-memory segment name grid of the
    dead session: ``shards x generations x windows`` names, every one
    the dead run could possibly have created (segment names are
    deterministic precisely to make this sweep exhaustive).
    """
    killed = 0
    for pid in info.workers:
        if pid <= 0 or pid == os.getpid():
            continue
        cmdline = _orphan_cmdline(pid)
        if cmdline is None or b"python" not in cmdline.lower():
            continue
        try:
            os.kill(pid, signal.SIGKILL)
            killed += 1
        except (ProcessLookupError, PermissionError):  # pragma: no cover
            continue
    swept = 0
    if info.session and info.shards > 0:
        from ..dist.shmem import unlink_segment
        from ..dist.worker import segment_name

        for shard in range(info.shards):
            for generation in range(info.max_generations + 1):
                for window in range(info.num_windows):
                    name = segment_name(info.session, shard, generation, window)
                    if unlink_segment(name):
                        swept += 1
    return killed, swept


class DurableRun:
    """One durable serving run: lock + WAL + checkpoints + replay state."""

    def __init__(
        self,
        config: DurabilityConfig,
        window: float,
        origin: Optional[float] = None,
    ):
        self.config = config
        self.window_length = window
        self.origin = origin
        self.wal: Optional[WriteAheadLog] = None
        #: replayed ``(position, event)`` records, append order
        self.records: List[Tuple[int, EdgeEvent]] = []
        self.checkpoint: Optional[Checkpoint] = None
        #: stale-owner lock info reclaimed at start (``None`` if clean)
        self.reclaimed: Optional[LockInfo] = None
        #: orphan workers killed / shm segments swept during reclaim
        self.reclaim_counts: Tuple[int, int] = (0, 0)
        self.resumed = False
        self.replayed_windows = 0
        self.recovery_s = 0.0
        self._lock = RunLock(config.lock_path)
        self._store: Optional[CheckpointStore] = None
        self._started_at = 0.0
        self._live = False
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def watermark(self) -> int:
        """First window index the run must execute (0 on a fresh run)."""
        return self.checkpoint.watermark if self.checkpoint is not None else 0

    @property
    def start_position(self) -> int:
        """Stream position right past the last WAL record (the live seam)."""
        return self.records[-1][0] + 1 if self.records else 0

    def start(self) -> "DurableRun":
        """Lock, sweep, open the WAL, load the checkpoint; ready to serve."""
        cfg = self.config
        cfg.root.mkdir(parents=True, exist_ok=True)
        self._started_at = wall_clock()
        with obs_span("durability.recover", resume=cfg.resume) as sp:
            stale = self._lock.acquire(LockInfo(pid=os.getpid()))
            if stale is not None:
                self.reclaimed = stale
                self.reclaim_counts = reclaim_stale_run(stale)
            try:
                if not cfg.resume and self._has_prior_run():
                    raise ValueError(
                        f"{cfg.root}: durability directory already holds a "
                        "run; pass --resume to recover it or point --wal at "
                        "a fresh directory"
                    )
                self.wal, self.records = WriteAheadLog.open(
                    cfg.wal_dir,
                    segment_bytes=cfg.segment_bytes,
                    fsync=cfg.fsync,
                )
                self._store = CheckpointStore(
                    cfg.checkpoint_dir, retain=cfg.retain, fsync=cfg.fsync
                )
                if cfg.resume:
                    self.checkpoint = self._store.load_latest()
                    self._check_meta()
                    self.resumed = bool(self.records) or (
                        self.checkpoint is not None
                    )
            except BaseException:
                self._lock.release()
                raise
            self.replayed_windows = self._compute_replayed_windows()
            # Setup-only cost; refined by note_commit once the run
            # re-reaches the crash frontier.
            self.recovery_s = wall_clock() - self._started_at
            if sp.enabled:
                sp.add("wal_records", len(self.records))
                sp.add("watermark", self.watermark)
                sp.add("replayed_windows", self.replayed_windows)
        return self

    def _has_prior_run(self) -> bool:
        cfg = self.config
        if cfg.wal_dir.exists() and any(cfg.wal_dir.glob("wal-*")):
            return True
        return cfg.checkpoint_dir.exists() and any(
            cfg.checkpoint_dir.glob("ckpt-*.bin")
        )

    def _check_meta(self) -> None:
        if self.checkpoint is None:
            return
        recorded = self.checkpoint.meta.get("window")
        if recorded is not None and recorded != self.window_length:
            raise ValueError(
                f"checkpoint was cut with window={recorded}, resume "
                f"requested window={self.window_length}; refusing to mix"
            )

    def _compute_replayed_windows(self) -> int:
        """Windows past the watermark already covered by the WAL."""
        if not self.records:
            return 0
        origin = self.origin
        last = -1
        for _, event in self.records:
            if origin is None:
                origin = event.time
            index = window_index(event.time, origin, self.window_length)
            if index > last:
                last = index
        return max(0, last + 1 - self.watermark)

    def close(self) -> None:
        """Seal the WAL and release the run lock (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self.wal is not None:
            self.wal.close()
        self._lock.release()

    # ------------------------------------------------------------------
    # Stream plumbing
    # ------------------------------------------------------------------
    def wrap_stream(self, events: Iterable[EdgeEvent]) -> Iterator[EdgeEvent]:
        """Replayed WAL suffix, then live events logged before yield.

        The live source is expected to restart from stream position 0
        (our generated streams are seeded, so re-iterating reproduces
        them exactly); its already-logged prefix is skipped by position
        and the WAL's replayed copy is served instead — the WAL, not the
        source, is authoritative for everything that was acked.
        """
        assert self.wal is not None, "wrap_stream before start()"
        tail = self.start_position
        for _, event in self.records:
            yield event
        self._mark_live()
        position = 0
        for event in events:
            if position < tail:
                position += 1
                continue
            self.wal.append(position, event)
            position += 1
            yield event

    def _mark_live(self) -> None:
        if not self._live:
            self._live = True

    def note_commit(self, index: int) -> None:
        """Commit-progress hook: stamps the end of the recovery phase."""
        frontier = self.watermark + self.replayed_windows
        if index + 1 == frontier:
            self.recovery_s = wall_clock() - self._started_at

    # ------------------------------------------------------------------
    # Commit / bookkeeping
    # ------------------------------------------------------------------
    def committer(self, capture: Callable[[int], Checkpoint]) -> WindowCommitter:
        """Build the commit barrier for this run's dispatch pipeline."""
        assert self.wal is not None, "committer before start()"
        cfg = self.config
        return WindowCommitter(
            wal=self.wal,
            store=self._store,
            capture=capture,
            interval=cfg.checkpoint_interval,
            kill_after=cfg.kill_after_commit,
            abort_after=cfg.abort_after_commit,
            on_commit=self.note_commit,
        )

    def record_workers(
        self,
        session: str,
        shards: int,
        num_windows: int,
        max_generations: int,
        pids: Iterable[int],
    ) -> None:
        """Record the sharded-run grid in the lock for stale reclaim."""
        self._lock.update(
            LockInfo(
                pid=os.getpid(),
                session=session,
                shards=shards,
                num_windows=num_windows,
                max_generations=max_generations,
                workers=tuple(pids),
            )
        )

    def finalize_stats(self, stats: Any) -> None:
        """Fold durability/recovery metrics into a run's stats object."""
        assert self.wal is not None
        stats.resumes = 1 if self.resumed else 0
        stats.recovered_windows = self.watermark
        stats.replayed_windows = self.replayed_windows
        stats.recovery_s = self.recovery_s
        stats.wal_records = len(self.records) + self.wal.records_appended
        stats.checkpoints = self._store.saved if self._store else 0
        obs_gauge_set("durability.wal_records", stats.wal_records)
        obs_gauge_set("durability.checkpoints", stats.checkpoints)
        if self.resumed:
            obs_gauge_set("durability.replayed_windows", self.replayed_windows)
            obs_gauge_set("durability.recovery_s", self.recovery_s)
