"""Segmented append-only write-ahead log for the ingest event stream.

Record layout (little-endian), one per logged event::

    +----------+----------+---------------------------------------+
    | len u32  | crc u32  | payload: pos u64, time f64,           |
    |          |          |          src i64, dst i64, kind u8    |
    +----------+----------+---------------------------------------+

``crc`` is the CRC-32 of the payload; ``len`` is the payload length.
``pos`` is the event's 0-based position in the (post-injection) stream,
which is what lets recovery rejoin the live stream exactly where the
log ends.  Malformed (quarantinable) events log like any other — the
ingest path re-applies its own validation on replay, so replayed runs
quarantine exactly what the original run quarantined.

Segment protocol:

* the active segment is written in place as ``wal-NNNNNN.seg.open``;
* when it crosses ``segment_bytes`` it is flushed, fsynced, and sealed
  via ``os.replace`` to ``wal-NNNNNN.seg`` (fsync-then-rename: a sealed
  segment is complete by construction);
* on open, sealed segments are replayed strictly — a checksum mismatch
  mid-log raises :class:`WalCorruptionError` — while the single open
  tail segment tolerates a torn or corrupt final record by truncating
  at the last valid record boundary (the crash left it half-written).

The log is append-owned by the ingest thread while ``sync()`` runs on
the dispatch thread at every window commit, so all file mutation is
serialized under one lock.

:class:`RunLock` serializes ownership of a durability directory: the
lock file records the owning pid, the shared-memory session id, and the
live worker pids, so a recovering process can detect a stale lock
(owner dead), reap orphaned shard workers, and sweep orphaned
shared-memory segments before taking over — see
:meth:`~repro.durability.recovery.DurableRun.start`.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple

from ..graphs.continuous import EdgeEvent

__all__ = [
    "WalCorruptionError",
    "WalLockedError",
    "WriteAheadLog",
    "RunLock",
    "LockInfo",
]

_HEADER = struct.Struct("<II")  # payload length, payload crc32
_PAYLOAD = struct.Struct("<Qdqqb")  # position, time, src, dst, kind
_KIND_ADD = 0
_KIND_REMOVE = 1

_SEALED_SUFFIX = ".seg"
_OPEN_SUFFIX = ".seg.open"


class WalCorruptionError(RuntimeError):
    """A sealed WAL segment failed its checksum (mid-log corruption)."""


class WalLockedError(RuntimeError):
    """The durability directory is owned by another live process."""


def _segment_path(directory: Path, seq: int, sealed: bool) -> Path:
    suffix = _SEALED_SUFFIX if sealed else _OPEN_SUFFIX
    return directory / f"wal-{seq:06d}{suffix}"


def _encode(position: int, event: EdgeEvent) -> bytes:
    kind = _KIND_ADD if event.kind == "add" else _KIND_REMOVE
    payload = _PAYLOAD.pack(position, event.time, event.src, event.dst, kind)
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def _decode_payload(payload: bytes) -> Tuple[int, EdgeEvent]:
    position, time, src, dst, kind = _PAYLOAD.unpack(payload)
    return position, EdgeEvent(
        time, src, dst, "add" if kind == _KIND_ADD else "remove"
    )


def _scan_segment(data: bytes) -> Tuple[List[Tuple[int, EdgeEvent]], int, bool]:
    """Parse ``data`` into records.

    Returns ``(records, valid_bytes, clean)`` where ``valid_bytes`` is
    the offset of the first byte that failed to parse (== ``len(data)``
    when ``clean``).
    """
    records: List[Tuple[int, EdgeEvent]] = []
    offset = 0
    total = len(data)
    while offset < total:
        if offset + _HEADER.size > total:
            return records, offset, False
        length, crc = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        end = start + length
        if length != _PAYLOAD.size or end > total:
            return records, offset, False
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            return records, offset, False
        records.append(_decode_payload(payload))
        offset = end
    return records, offset, True


def _fsync_dir(directory: Path) -> None:
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class WriteAheadLog:
    """Append-only event log over one directory of segments.

    Use :meth:`open` to recover existing segments and position the log
    for appending; a fresh directory starts at segment 0.
    """

    def __init__(
        self,
        directory: Path,
        segment_bytes: int = 256 * 1024,
        fsync: bool = True,
    ):
        self.directory = Path(directory)
        self.segment_bytes = segment_bytes
        self.fsync = fsync
        #: records appended through this instance (not replayed ones)
        self.records_appended = 0
        #: sync() calls that reached the disk
        self.syncs = 0
        self._lock = threading.Lock()
        self._active = None  # open binary file handle of the tail segment
        self._active_seq = 0
        self._active_bytes = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Opening / replay
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        directory,
        segment_bytes: int = 256 * 1024,
        fsync: bool = True,
    ) -> Tuple["WriteAheadLog", List[Tuple[int, EdgeEvent]]]:
        """Open ``directory``, replay every record, ready the tail for append.

        Sealed segments must parse completely (:class:`WalCorruptionError`
        otherwise); the open tail segment is truncated at its last valid
        record boundary, tolerating the torn write a crash left behind.
        Returns the log plus the replayed ``(position, event)`` records
        in append order.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        wal = cls(directory, segment_bytes=segment_bytes, fsync=fsync)
        records: List[Tuple[int, EdgeEvent]] = []

        sealed = sorted(directory.glob(f"wal-*{_SEALED_SUFFIX}"))
        open_tails = sorted(directory.glob(f"wal-*{_OPEN_SUFFIX}"))
        if len(open_tails) > 1:
            raise WalCorruptionError(
                f"{directory}: {len(open_tails)} open tail segments; "
                "at most one may exist"
            )
        for path in sealed:
            data = path.read_bytes()
            seg_records, valid, clean = _scan_segment(data)
            if not clean:
                raise WalCorruptionError(
                    f"{path}: checksum mismatch at byte {valid} of a "
                    "sealed segment (mid-log corruption)"
                )
            records.extend(seg_records)

        next_seq = len(sealed)
        if open_tails:
            tail = open_tails[0]
            tail_seq = int(tail.name[len("wal-"):len("wal-") + 6])
            if tail_seq != next_seq:
                raise WalCorruptionError(
                    f"{tail}: open segment sequence {tail_seq} does not "
                    f"follow the {next_seq} sealed segment(s)"
                )
            data = tail.read_bytes()
            tail_records, valid, clean = _scan_segment(data)
            if not clean:
                # Torn/corrupt tail: keep the valid prefix, drop the rest.
                with tail.open("r+b") as handle:
                    handle.truncate(valid)
            records.extend(tail_records)
            wal._active_seq = tail_seq
            wal._active = tail.open("ab")
            wal._active_bytes = valid if not clean else len(data)
        else:
            wal._active_seq = next_seq
            wal._active = _segment_path(directory, next_seq, sealed=False).open(
                "ab"
            )
            wal._active_bytes = 0
        return wal, records

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append(self, position: int, event: EdgeEvent) -> None:
        """Log one stream event (buffered; durable after :meth:`sync`)."""
        blob = _encode(position, event)
        with self._lock:
            if self._closed:
                raise ValueError("append on a closed WriteAheadLog")
            assert self._active is not None
            self._active.write(blob)
            self._active_bytes += len(blob)
            self.records_appended += 1
            if self._active_bytes >= self.segment_bytes:
                self._rotate()

    def sync(self) -> None:
        """Flush and fsync the active segment (the commit barrier)."""
        with self._lock:
            if self._closed or self._active is None:
                return
            self._active.flush()
            if self.fsync:
                os.fsync(self._active.fileno())
            self.syncs += 1

    def _rotate(self) -> None:
        """Seal the active segment (fsync-then-rename) and open the next."""
        assert self._active is not None
        self._active.flush()
        if self.fsync:
            os.fsync(self._active.fileno())
        self._active.close()
        os.replace(
            _segment_path(self.directory, self._active_seq, sealed=False),
            _segment_path(self.directory, self._active_seq, sealed=True),
        )
        if self.fsync:
            _fsync_dir(self.directory)
        self._active_seq += 1
        self._active = _segment_path(  # repro: noqa[THR001] _rotate runs only under append's `with self._lock:` (Lock is not reentrant, so the guard cannot be repeated lexically here)
            self.directory, self._active_seq, sealed=False
        ).open("ab")
        self._active_bytes = 0  # repro: noqa[THR001] same: caller (append) holds self._lock

    def close(self) -> None:
        """Flush, fsync, and close the active segment (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._active is not None:
                self._active.flush()
                if self.fsync:
                    os.fsync(self._active.fileno())
                self._active.close()
                self._active = None


# ---------------------------------------------------------------------------
# Run lock
# ---------------------------------------------------------------------------
@dataclass
class LockInfo:
    """What a run lock records about its owner.

    Enough for a successor to clean up after a SIGKILLed owner: the
    shared-memory session id plus the grid bounds (shards, generations,
    windows) enumerate every segment name the dead run could have
    created, and ``workers`` are the shard-worker pids to reap.
    """

    pid: int
    session: str = ""
    shards: int = 0
    num_windows: int = 0
    max_generations: int = 0
    workers: Tuple[int, ...] = field(default_factory=tuple)

    def to_json(self) -> str:
        return json.dumps(
            {
                "pid": self.pid,
                "session": self.session,
                "shards": self.shards,
                "num_windows": self.num_windows,
                "max_generations": self.max_generations,
                "workers": list(self.workers),
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "LockInfo":
        raw = json.loads(text)
        return cls(
            pid=int(raw["pid"]),
            session=str(raw.get("session", "")),
            shards=int(raw.get("shards", 0)),
            num_windows=int(raw.get("num_windows", 0)),
            max_generations=int(raw.get("max_generations", 0)),
            workers=tuple(int(p) for p in raw.get("workers", [])),
        )


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, other user
        return True
    return True


class RunLock:
    """Exclusive ownership of a durability directory, keyed by run id.

    Acquisition is ``O_CREAT | O_EXCL`` on the lock file.  An existing
    lock whose recorded pid is dead is *stale*: :meth:`acquire` returns
    its :class:`LockInfo` to the caller (who sweeps the dead run's
    leavings — see :func:`~repro.durability.recovery.reclaim_stale_lock`)
    and takes the lock over.  A lock owned by a live process raises
    :class:`WalLockedError`.
    """

    def __init__(self, path: Path):
        self.path = Path(path)
        self._held = False

    def acquire(self, info: LockInfo) -> Optional[LockInfo]:
        """Take the lock; returns the stale owner's info if one was reclaimed."""
        stale: Optional[LockInfo] = None
        while True:
            try:
                fd = os.open(
                    self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
                )
            except FileExistsError:
                owner = self._read_owner()
                if owner is not None and _pid_alive(owner.pid):
                    raise WalLockedError(
                        f"{self.path}: durability directory is locked by "
                        f"live pid {owner.pid} (session "
                        f"{owner.session or '<none>'})"
                    )
                stale = owner if owner is not None else stale
                try:
                    os.unlink(self.path)
                except FileNotFoundError:  # pragma: no cover - lost race
                    pass
                continue
            try:
                os.write(fd, info.to_json().encode("utf-8"))
            finally:
                os.close(fd)
            self._held = True
            self._info = info
            return stale

    def _read_owner(self) -> Optional[LockInfo]:
        try:
            return LockInfo.from_json(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError, KeyError):
            # Unreadable or torn lock content counts as stale.
            return None

    def update(self, info: LockInfo) -> None:
        """Atomically rewrite the lock body (e.g. fresh worker pids)."""
        if not self._held:
            raise ValueError("update on a lock that is not held")
        tmp = self.path.with_suffix(".tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            handle.write(info.to_json())
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        self._info = info  # repro: noqa[THR001] RunLock is owner-exclusive and driven only from the coordinator main thread; `update` merely collides with unrelated thread-root method names

    @property
    def info(self) -> LockInfo:
        """The lock body as last written by this process."""
        return self._info

    def release(self) -> None:
        """Drop the lock (idempotent; no-op if never acquired)."""
        if not self._held:
            return
        self._held = False  # repro: noqa[THR001] RunLock is owner-exclusive and driven only from the coordinator main thread; `release` merely collides with unrelated thread-root method names
        try:
            os.unlink(self.path)
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
