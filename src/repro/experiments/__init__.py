"""Experiment harness: sweep runner, figure reproductions, ablations."""

from .runner import BASELINE_ORDER, ExperimentConfig, ExperimentRunner
from .report import FigureResult, format_table
from .ablation import ABLATION_VARIANTS, ablation_variant, run_ablation
from .sweeps import (
    bandwidth_scaling_sweep,
    buffer_scaling_sweep,
    gnn_depth_sweep,
    snapshot_count_sweep,
    tile_scaling_sweep,
)
from .resilience import fault_sweep
from .variance import seed_variance
from .export import export_results, figure_to_csv
from .pareto import design_points, pareto_frontier
from .supplementary import (
    frontend_overhead,
    link_load_analysis,
    pipeline_utilization,
    roofline_classification,
)
from .figures import (
    ALL_FIGURES,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11a,
    figure11b,
    figure12,
    figure13,
    figure14,
    table1,
)

__all__ = [
    "ExperimentConfig",
    "ExperimentRunner",
    "BASELINE_ORDER",
    "FigureResult",
    "format_table",
    "ABLATION_VARIANTS",
    "ablation_variant",
    "run_ablation",
    "ALL_FIGURES",
    "table1",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11a",
    "figure11b",
    "figure12",
    "figure13",
    "figure14",
    "pipeline_utilization",
    "roofline_classification",
    "link_load_analysis",
    "frontend_overhead",
    "tile_scaling_sweep",
    "buffer_scaling_sweep",
    "bandwidth_scaling_sweep",
    "snapshot_count_sweep",
    "gnn_depth_sweep",
    "fault_sweep",
    "seed_variance",
    "export_results",
    "figure_to_csv",
    "pareto_frontier",
    "design_points",
]
