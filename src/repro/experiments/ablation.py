"""Fig. 11(b) ablation variants of DiTile-DGNN.

The paper isolates the three contributions by removing or keeping exactly
one of: the parallelism strategy (Ps — tiling + the ``Ps``/``Pv`` search),
the workload optimization strategy (Wos — Algorithm 2), and the
reconfigurable architecture (Ra — the dual-layer ring/Re-Link NoC):

======== ============ ======== ==============
variant  parallelism  balance  reconfigurable
======== ============ ======== ==============
DiTile   yes          yes      yes
NoPs     no           yes      yes
NoWos    yes          no       yes
NoRa     yes          yes      no
OnlyPs   yes          no       no
OnlyWos  no           yes      no
OnlyRa   no           no       yes
======== ============ ======== ==============

Variants without the parallelism strategy fall back to the conventional
temporal mapping with ``alpha = 1`` (§3.1.1); variants without workload
optimization use the natural-order contiguous split; variants without the
reconfigurable architecture run on a static mesh.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..accel.config import HardwareConfig
from ..accel.metrics import SimulationResult
from ..core.plan import DGNNSpec
from ..core.scheduler import SchedulerOptions
from ..ditile import DiTileAccelerator
from ..graphs.dynamic import DynamicGraph

__all__ = ["ABLATION_VARIANTS", "ablation_variant", "run_ablation"]

ABLATION_VARIANTS = (
    "DiTile-DGNN",
    "NoPs",
    "NoWos",
    "NoRa",
    "OnlyPs",
    "OnlyWos",
    "OnlyRa",
)

_FLAGS = {
    # variant: (parallelism, balance, reconfigurable)
    "DiTile-DGNN": (True, True, True),
    "NoPs": (False, True, True),
    "NoWos": (True, False, True),
    "NoRa": (True, True, False),
    "OnlyPs": (True, False, False),
    "OnlyWos": (False, True, False),
    "OnlyRa": (False, False, True),
}


def ablation_variant(
    name: str, hardware: Optional[HardwareConfig] = None
) -> DiTileAccelerator:
    """Construct one Fig. 11(b) variant by name."""
    if name not in _FLAGS:
        raise KeyError(f"unknown ablation variant {name!r}; known: {ABLATION_VARIANTS}")
    parallelism, balance, reconfigurable = _FLAGS[name]
    options = SchedulerOptions(
        enable_tiling=parallelism,
        enable_parallelism=parallelism,
        enable_balance=balance,
        enable_reuse=True,  # redundancy elimination stays on in every variant
    )
    model = ablation = DiTileAccelerator(
        hardware, options=options, reconfigurable_noc=reconfigurable
    )
    model.name = name if name == "DiTile-DGNN" else f"DiTile-{name}"
    return ablation


def run_ablation(
    graph: DynamicGraph,
    spec: DGNNSpec,
    hardware: Optional[HardwareConfig] = None,
    variants: List[str] = list(ABLATION_VARIANTS),
) -> Dict[str, SimulationResult]:
    """Simulate every requested variant on one workload."""
    return {
        name: ablation_variant(name, hardware).simulate(graph, spec)
        for name in variants
    }
