"""Result export: write figure reproductions to disk (Markdown + CSV).

``export_results`` materializes a set of :class:`FigureResult` objects into
a directory: one CSV per figure (machine-readable rows) plus a combined
``REPORT.md`` (the text tables with provenance notes) — the artifact a
reproduction run leaves behind.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Iterable, Union

from .report import FigureResult

__all__ = ["export_results", "figure_to_csv"]

PathLike = Union[str, Path]


def _slug(figure_id: str) -> str:
    return figure_id.lower().replace(" ", "_").replace(":", "")


def figure_to_csv(result: FigureResult, path: PathLike) -> None:
    """Write one figure's rows as CSV (headers included)."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(result.headers)
        writer.writerows(result.rows)


def export_results(
    results: Iterable[FigureResult],
    out_dir: PathLike,
    title: str = "DiTile-DGNN reproduction results",
) -> Dict[str, Path]:
    """Write every result to ``out_dir``; returns the written paths.

    Produces ``<figure>.csv`` per result and a combined ``REPORT.md``.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: Dict[str, Path] = {}
    report_lines = [f"# {title}", ""]
    for result in results:
        csv_path = out / f"{_slug(result.figure_id)}.csv"
        figure_to_csv(result, csv_path)
        written[result.figure_id] = csv_path
        report_lines.append(f"## {result.figure_id}: {result.title}")
        report_lines.append("")
        report_lines.append("```")
        report_lines.append(result.to_text())
        report_lines.append("```")
        report_lines.append("")
    report_path = out / "REPORT.md"
    report_path.write_text("\n".join(report_lines))
    written["report"] = report_path
    return written
