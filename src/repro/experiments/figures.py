"""Reproduction of every table and figure in the paper's evaluation (§7).

Each ``figureN`` function runs the corresponding experiment and returns a
:class:`~repro.experiments.report.FigureResult` whose rows mirror what the
paper plots.  EXPERIMENTS.md records the paper-vs-measured comparison.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..accel.area import AreaModel
from ..accel.config import HardwareConfig
from ..baselines.algorithms import (
    AlgorithmParams,
    SnapshotQuantities,
    build_costs,
    measure_quantities,
)
from ..baselines.algorithms import Placement
from ..graphs.datasets import TABLE1_DATASETS
from .ablation import ABLATION_VARIANTS, run_ablation
from .report import FigureResult
from .runner import BASELINE_ORDER, ExperimentConfig, ExperimentRunner

__all__ = [
    "table1",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11a",
    "figure11b",
    "figure12",
    "figure13",
    "figure14",
    "ALL_FIGURES",
]

# Algorithm display names used in Figs. 7-8 (algorithm-level comparison).
_ALG_LABELS = [("re", "Re-Alg"), ("race", "Race-Alg"), ("mega", "Mega-Alg"),
               ("ditile", "DiTile-Alg")]


def _neutral_placement() -> Placement:
    """Placement-independent costs for the algorithm-level Figs. 7-8."""
    return Placement(snapshot_groups=1, vertex_groups=1, load_utilization=1.0)


def _abbrev(dataset: str) -> str:
    return {p.name: p.abbrev for p in TABLE1_DATASETS}[dataset]


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------
def table1(config: ExperimentConfig = ExperimentConfig()) -> FigureResult:
    """Table 1: the six evaluation datasets."""
    runner = ExperimentRunner(config)
    rows = []
    for profile in TABLE1_DATASETS:
        scale = config.dataset_scale(profile.name)
        graph = runner.graph(profile.name)
        stats = graph.stats()
        rows.append(
            [
                profile.name,
                profile.vertices,
                profile.edges,
                profile.feature_dim,
                profile.description,
                scale,
                int(stats.avg_vertices),
                int(stats.avg_edges),
                round(stats.avg_dissimilarity, 3),
            ]
        )
    return FigureResult(
        figure_id="Table 1",
        title="Datasets used for evaluation (published vs synthesized)",
        headers=[
            "dataset", "V(paper)", "E(paper)", "F", "kind",
            "scale", "V(synth)", "E(synth)", "Dis(synth)",
        ],
        rows=rows,
        notes=[
            "graphs are synthesized power-law dynamic graphs matching the "
            "published V/E/F at the stated scale (DESIGN.md §2)",
        ],
    )


# ---------------------------------------------------------------------------
# Figure 7 — arithmetic operations
# ---------------------------------------------------------------------------
def figure7(config: ExperimentConfig = ExperimentConfig()) -> FigureResult:
    """Fig. 7: arithmetic operations per algorithm per dataset."""
    runner = ExperimentRunner(config)
    placement = _neutral_placement()
    rows = []
    reductions: Dict[str, List[float]] = {label: [] for _, label in _ALG_LABELS[:-1]}
    for dataset in runner.datasets():
        graph = runner.graph(dataset)
        spec = runner.spec(dataset)
        quantities = measure_quantities(graph)
        ops = {}
        for key, label in _ALG_LABELS:
            costs = build_costs(
                graph, spec, key, placement, AlgorithmParams(), quantities=quantities
            )
            ops[label] = costs.total_macs
        row = [_abbrev(dataset)] + [ops[label] for _, label in _ALG_LABELS]
        rows.append(row)
        for _, label in _ALG_LABELS[:-1]:
            reductions[label].append(1.0 - ops["DiTile-Alg"] / ops[label])
    avg = ["AVG"] + [
        float(np.mean([row[i + 1] for row in rows])) for i in range(len(_ALG_LABELS))
    ]
    rows.append(avg)
    return FigureResult(
        figure_id="Figure 7",
        title="Arithmetic operations (MACs) per algorithm",
        headers=["dataset"] + [label for _, label in _ALG_LABELS],
        rows=rows,
        notes=[
            "DiTile-Alg average reduction vs "
            + ", ".join(
                f"{label}: {100 * float(np.mean(vals)):.1f}%"
                for label, vals in reductions.items()
            )
        ],
        paper_values={"vs Re-Alg": "65.7%", "vs Race-Alg": "33.9%",
                      "vs Mega-Alg": "26.4%"},
    )


# ---------------------------------------------------------------------------
# Figure 8 — DRAM access
# ---------------------------------------------------------------------------
def figure8(config: ExperimentConfig = ExperimentConfig()) -> FigureResult:
    """Fig. 8: off-chip DRAM traffic per algorithm per dataset."""
    runner = ExperimentRunner(config)
    placement = _neutral_placement()
    rows = []
    reductions: Dict[str, List[float]] = {label: [] for _, label in _ALG_LABELS[:-1]}
    for dataset in runner.datasets():
        graph = runner.graph(dataset)
        spec = runner.spec(dataset)
        quantities = measure_quantities(graph)
        ditile = runner.ditile()
        alpha = ditile.tiling_alpha(graph, spec)
        dram = {}
        for key, label in _ALG_LABELS:
            costs = build_costs(
                graph,
                spec,
                key,
                placement,
                ditile.params,
                tiling_alpha=alpha,
                quantities=quantities,
            )
            dram[label] = costs.dram_bytes
        rows.append([_abbrev(dataset)] + [dram[label] for _, label in _ALG_LABELS])
        for _, label in _ALG_LABELS[:-1]:
            reductions[label].append(1.0 - dram["DiTile-Alg"] / dram[label])
    avg = ["AVG"] + [
        float(np.mean([row[i + 1] for row in rows])) for i in range(len(_ALG_LABELS))
    ]
    rows.append(avg)
    return FigureResult(
        figure_id="Figure 8",
        title="Off-chip DRAM access (bytes) per algorithm",
        headers=["dataset"] + [label for _, label in _ALG_LABELS],
        rows=rows,
        notes=[
            "DiTile-Alg average reduction vs "
            + ", ".join(
                f"{label}: {100 * float(np.mean(vals)):.1f}%"
                for label, vals in reductions.items()
            )
        ],
        paper_values={"vs Re-Alg": "58.1%", "vs Race-Alg": "26.6%",
                      "vs Mega-Alg": "33.5%"},
    )


# ---------------------------------------------------------------------------
# Figure 9 — execution time
# ---------------------------------------------------------------------------
def figure9(config: ExperimentConfig = ExperimentConfig()) -> FigureResult:
    """Fig. 9: execution cycles per accelerator per dataset."""
    runner = ExperimentRunner(config)
    rows = []
    reductions: Dict[str, List[float]] = {name: [] for name in BASELINE_ORDER}
    for dataset in runner.datasets():
        results = runner.compare(dataset)
        ditile_cycles = results["DiTile-DGNN"].execution_cycles
        row = [_abbrev(dataset)]
        for name in BASELINE_ORDER:
            cycles = results[name].execution_cycles
            row.append(cycles)
            reductions[name].append(1.0 - ditile_cycles / cycles)
        row.append(ditile_cycles)
        rows.append(row)
    avg = ["AVG"] + [
        float(np.mean([row[i + 1] for row in rows]))
        for i in range(len(BASELINE_ORDER) + 1)
    ]
    rows.append(avg)
    return FigureResult(
        figure_id="Figure 9",
        title="Execution time (cycles) per accelerator",
        headers=["dataset", *BASELINE_ORDER, "DiTile-DGNN"],
        rows=rows,
        notes=[
            "DiTile average execution-time reduction vs "
            + ", ".join(
                f"{name}: {100 * float(np.mean(vals)):.1f}%"
                for name, vals in reductions.items()
            )
        ],
        paper_values={"vs ReaDy": "48.4%", "vs DGNN-Booster": "56.1%",
                      "vs RACE": "23.2%", "vs MEGA": "36.1%"},
    )


# ---------------------------------------------------------------------------
# Figure 10 — model estimate vs measured
# ---------------------------------------------------------------------------
def _average_quantities(quantities: List[SnapshotQuantities]) -> List[SnapshotQuantities]:
    """Replace per-snapshot variation with the averages the analytic model
    assumes (uniform sparsity and uniform dissimilarity)."""
    tail = quantities[1:]
    if not tail:
        return quantities
    avg_v = int(np.mean([q.vertices for q in quantities]))
    avg_e = int(np.mean([q.edges for q in quantities]))
    avg_dis = float(np.mean([q.dissimilarity for q in tail]))
    avg_add = int(np.mean([q.added_edges for q in tail]))
    avg_rem = int(np.mean([q.removed_edges for q in tail]))
    smoothed = [
        SnapshotQuantities(0, avg_v, avg_e, 1.0, avg_e, 0)
    ]
    for q in tail:
        smoothed.append(
            SnapshotQuantities(q.timestamp, avg_v, avg_e, avg_dis, avg_add, avg_rem)
        )
    return smoothed


def figure10(config: ExperimentConfig = ExperimentConfig()) -> FigureResult:
    """Fig. 10: estimated vs actual off-chip DRAM access and on-chip transfer.

    The estimate feeds the analytic models with dataset *averages* (the
    uniform-sparsity / uniform-similarity assumption the paper names); the
    actual numbers use the measured per-snapshot quantities.  Values are
    actual normalized to estimated.
    """
    runner = ExperimentRunner(config)
    rows = []
    for dataset in runner.datasets():
        graph = runner.graph(dataset)
        spec = runner.spec(dataset)
        ditile = runner.ditile()
        placement = ditile.placement(graph, spec)
        alpha = ditile.tiling_alpha(graph, spec)
        measured = measure_quantities(graph)
        smoothed = _average_quantities(measured)
        # Actual: measured per-snapshot quantities at real transport
        # granularity.  Estimate: the idealized analytic accounting
        # (uniform snapshots, no DRAM-line or packet-header overhead).
        from dataclasses import replace as _replace

        ideal_params = _replace(
            ditile.params,
            dram_line_bytes=None,
            noc_flit_bytes=None,
            noc_header_flits=0,
        )
        actual = build_costs(graph, spec, "ditile", placement, ditile.params,
                             tiling_alpha=alpha, quantities=measured)
        estimate = build_costs(graph, spec, "ditile", placement, ideal_params,
                               tiling_alpha=alpha, quantities=smoothed)
        da_ratio = actual.dram_bytes / estimate.dram_bytes
        ot_ratio = (
            actual.noc_bytes / estimate.noc_bytes
            if estimate.noc_bytes > 0
            else 1.0
        )
        rows.append([_abbrev(dataset), round(da_ratio, 4), round(ot_ratio, 4)])
    avg = ["AVG",
           round(float(np.mean([r[1] for r in rows])), 4),
           round(float(np.mean([r[2] for r in rows])), 4)]
    rows.append(avg)
    return FigureResult(
        figure_id="Figure 10",
        title="Actual / estimated DRAM access (DA) and on-chip transfer (OT)",
        headers=["dataset", "Actual-DA / Alg-DA", "Actual-OT / Alg-OT"],
        rows=rows,
        paper_values={"DA excess": "+5% avg", "OT excess": "+9% avg"},
        notes=[
            "estimates assume uniform per-snapshot sparsity and similarity; "
            "deviation comes from measured per-snapshot variation",
        ],
    )


# ---------------------------------------------------------------------------
# Figure 11a — PE utilization
# ---------------------------------------------------------------------------
def figure11a(
    config: ExperimentConfig = ExperimentConfig(), dataset: str = "Wikipedia"
) -> FigureResult:
    """Fig. 11a: PE utilization per accelerator on the WD dataset."""
    runner = ExperimentRunner(config)
    results = runner.compare(dataset)
    order = [*BASELINE_ORDER, "DiTile-DGNN"]
    rows = [
        [name, round(results[name].pe_utilization, 4),
         round(results[name].execution_cycles, 1)]
        for name in order
    ]
    return FigureResult(
        figure_id="Figure 11a",
        title=f"PE utilization on {dataset}",
        headers=["accelerator", "pe_utilization", "cycles"],
        rows=rows,
        paper_values={"DiTile improvement": "+23.8% avg over baselines"},
        notes=[
            "utilization = perfectly-balanced compute time / total time; "
            "redundant work counts as busy, which flatters full-recompute "
            "baselines (see EXPERIMENTS.md)",
        ],
    )


# ---------------------------------------------------------------------------
# Figure 11b — ablation
# ---------------------------------------------------------------------------
def figure11b(
    config: ExperimentConfig = ExperimentConfig(), dataset: str = "Wikipedia"
) -> FigureResult:
    """Fig. 11b: execution time of the six ablation variants on WD."""
    runner = ExperimentRunner(config)
    graph = runner.graph(dataset)
    spec = runner.spec(dataset)
    results = run_ablation(graph, spec, runner.hardware)
    base = results["DiTile-DGNN"].execution_cycles
    rows = []
    for name in ABLATION_VARIANTS:
        cycles = results[name].execution_cycles
        rows.append([name, cycles, round(100.0 * (cycles / base - 1.0), 1)])
    return FigureResult(
        figure_id="Figure 11b",
        title=f"Ablation study on {dataset} (execution cycles)",
        headers=["variant", "cycles", "increase_vs_DiTile_%"],
        rows=rows,
        paper_values={
            "NoPs": "+38.9%", "NoWos": "+18.9%", "NoRa": "+12.0%",
            "OnlyPs": "+23.0%", "OnlyWos": "+45.9%", "OnlyRa": "+68.8%",
        },
    )


# ---------------------------------------------------------------------------
# Figure 12 — energy
# ---------------------------------------------------------------------------
def figure12(config: ExperimentConfig = ExperimentConfig()) -> FigureResult:
    """Fig. 12: normalized energy with per-category breakdown."""
    runner = ExperimentRunner(config)
    rows = []
    improvements: Dict[str, List[float]] = {name: [] for name in BASELINE_ORDER}
    control_fractions = []
    for dataset in runner.datasets():
        results = runner.compare(dataset)
        ditile_energy = results["DiTile-DGNN"].energy_joules
        control_fractions.append(results["DiTile-DGNN"].energy.control_fraction())
        for name in [*BASELINE_ORDER, "DiTile-DGNN"]:
            r = results[name]
            normalized = r.energy_joules / ditile_energy
            breakdown = r.energy
            rows.append(
                [
                    _abbrev(dataset),
                    name,
                    round(normalized, 3),
                    round(breakdown.computation / breakdown.total, 3),
                    round(breakdown.off_chip / breakdown.total, 3),
                    round(breakdown.on_chip / breakdown.total, 3),
                    round(breakdown.control / breakdown.total, 3),
                ]
            )
            if name != "DiTile-DGNN":
                improvements[name].append(1.0 - 1.0 / normalized)
    return FigureResult(
        figure_id="Figure 12",
        title="Normalized energy consumption breakdown (DiTile = 1.0)",
        headers=["dataset", "accelerator", "normalized", "comp_frac",
                 "offchip_frac", "onchip_frac", "control_frac"],
        rows=rows,
        notes=[
            "DiTile average energy improvement vs "
            + ", ".join(
                f"{name}: {100 * float(np.mean(vals)):.1f}%"
                for name, vals in improvements.items()
            ),
            f"DiTile control+configuration fraction: "
            f"{100 * float(np.mean(control_fractions)):.2f}% (paper: <7%)",
        ],
        paper_values={"vs ReaDy": "83.4%", "vs DGNN-Booster": "84.0%",
                      "vs RACE": "75.6%", "vs MEGA": "71.4%"},
    )


# ---------------------------------------------------------------------------
# Figure 13 — dissimilarity sensitivity
# ---------------------------------------------------------------------------
def figure13(
    config: ExperimentConfig = ExperimentConfig(),
    dataset: str = "Wikipedia",
    bands: Optional[List[float]] = None,
) -> FigureResult:
    """Fig. 13: baseline execution time normalized to DiTile as the
    snapshot dissimilarity grows (0-5%, 5-10%, 10-15%)."""
    runner = ExperimentRunner(config)
    bands = bands if bands is not None else [0.025, 0.075, 0.125]
    labels = ["0-5%", "5-10%", "10-15%"]
    rows = []
    band_avgs = []
    for label, dis in zip(labels, bands):
        results = runner.compare(dataset, dissimilarity=dis)
        ditile_cycles = results["DiTile-DGNN"].execution_cycles
        normalized = {
            name: results[name].execution_cycles / ditile_cycles
            for name in BASELINE_ORDER
        }
        avg = float(np.mean(list(normalized.values())))
        band_avgs.append(avg)
        rows.append(
            [label]
            + [round(normalized[name], 3) for name in BASELINE_ORDER]
            + [round(avg, 3)]
        )
    return FigureResult(
        figure_id="Figure 13",
        title=f"Sensitivity to snapshot dissimilarity on {dataset} "
              "(execution time normalized to DiTile)",
        headers=["dissimilarity", *BASELINE_ORDER, "average"],
        rows=rows,
        paper_values={"0-5%": "x2.92 avg", "5-10%": "x1.72 avg",
                      "10-15%": "x1.51 avg"},
        notes=[
            "DiTile's advantage shrinks as dissimilarity grows (less reuse) "
            "but persists across the whole band",
        ] if band_avgs[0] > band_avgs[-1] else [
            "WARNING: expected decreasing advantage with dissimilarity"
        ],
    )


# ---------------------------------------------------------------------------
# Figure 14 — area
# ---------------------------------------------------------------------------
def figure14(hardware: Optional[HardwareConfig] = None) -> FigureResult:
    """Fig. 14: area breakdown at chip, tile, and PE level."""
    config = hardware if hardware is not None else HardwareConfig.small()
    report = AreaModel().report(config)
    rows = []
    for level, breakdown, total in [
        ("chip", report.chip_breakdown(), report.chip_mm2),
        ("tile", report.tile_breakdown(), report.tile_mm2),
        ("pe", report.pe_breakdown(), report.pe_mm2),
    ]:
        for component, pct in breakdown.items():
            rows.append([level, component, round(pct, 1), round(total, 3)])
    return FigureResult(
        figure_id="Figure 14",
        title="Area breakdown (percent of level total)",
        headers=["level", "component", "percent", "level_total_mm2"],
        rows=rows,
        paper_values={
            "chip": "tiles 77.8 / buffer 15.7 / NoC 5.6 / logic 0.9",
            "tile": "PE 60.5 / dist-buf 28.4 / FIFO 8.1 / mesh 2.3 / ctrl 0.7",
            "pe": "MAC 59.4 / local-buf 23.8 / ctrl 2.0",
        },
    )


ALL_FIGURES = {
    "table1": table1,
    "figure7": figure7,
    "figure8": figure8,
    "figure9": figure9,
    "figure10": figure10,
    "figure11a": figure11a,
    "figure11b": figure11b,
    "figure12": figure12,
    "figure13": figure13,
    "figure14": lambda config=None: figure14(),
}
