"""Energy/performance Pareto analysis across design points.

Plots (as data) every accelerator and DiTile ablation variant in the
(execution time, energy) plane and reports which points are
Pareto-optimal — the standard lens for architecture comparisons, and a
direct check of the paper's claim that DiTile wins on *both* axes at once.
"""

from __future__ import annotations

from typing import List, Tuple

from .ablation import run_ablation
from .report import FigureResult
from .runner import ExperimentConfig, ExperimentRunner

__all__ = ["pareto_frontier", "design_points"]


def pareto_frontier(points: List[Tuple[str, float, float]]) -> List[str]:
    """Names of the non-dominated points (minimize both coordinates)."""
    optimal = []
    for name, x, y in points:
        dominated = any(
            (ox <= x and oy <= y) and (ox < x or oy < y)
            for other, ox, oy in points
            if other != name
        )
        if not dominated:
            optimal.append(name)
    return optimal


def design_points(
    config: ExperimentConfig = ExperimentConfig(),
    dataset: str = "Wikipedia",
    include_ablations: bool = True,
) -> FigureResult:
    """All design points in the (cycles, joules) plane, Pareto-flagged."""
    runner = ExperimentRunner(config)
    results = dict(runner.compare(dataset))
    if include_ablations:
        graph = runner.graph(dataset)
        spec = runner.spec(dataset)
        for name, result in run_ablation(graph, spec, runner.hardware).items():
            if name != "DiTile-DGNN":  # already present from compare()
                results[name] = result
    points = [
        (name, r.execution_cycles, r.energy_joules)
        for name, r in results.items()
    ]
    optimal = set(pareto_frontier(points))
    rows = [
        [
            name,
            round(cycles, 1),
            round(1e3 * energy, 4),
            "yes" if name in optimal else "",
        ]
        for name, cycles, energy in sorted(points, key=lambda p: p[1])
    ]
    return FigureResult(
        figure_id="Pareto",
        title=f"Time/energy design points on {dataset}",
        headers=["design", "cycles", "energy_mJ", "pareto_optimal"],
        rows=rows,
    )
