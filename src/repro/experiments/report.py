"""Text-table reporting for figure reproductions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

__all__ = ["FigureResult", "format_table"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence], indent: str = "  ") -> str:
    """Render rows as an aligned monospace table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        line = indent + "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        lines.append(line.rstrip())
        if r == 0:
            lines.append(indent + "  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)


@dataclass
class FigureResult:
    """One reproduced table/figure: data plus provenance notes."""

    figure_id: str
    title: str
    headers: List[str]
    rows: List[List]
    notes: List[str] = field(default_factory=list)
    paper_values: Optional[dict] = None

    def to_text(self) -> str:
        """Full printable report block."""
        lines = [f"=== {self.figure_id}: {self.title} ==="]
        lines.append(format_table(self.headers, self.rows))
        if self.paper_values:
            lines.append("  paper reports: " + ", ".join(
                f"{k}={v}" for k, v in self.paper_values.items()
            ))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def row_dict(self, key_column: int = 0) -> dict:
        """Rows keyed by one column (for tests)."""
        return {row[key_column]: row for row in self.rows}

    def __str__(self) -> str:
        return self.to_text()
