"""Fault-injection sweep: graceful degradation of the dual-layer NoC.

The resilience claim behind the paper's Re-Link bypasses is structural:
a ring with a bypass has *somewhere to go* when a segment dies, while a
mesh's dimension-ordered routes pile onto the surviving links.  This
sweep quantifies that by simulating DiTile (ring + Re-Link) and the same
design on a static mesh (the ``NoRa`` ablation fabric) under a shared,
seeded :class:`~repro.resilience.faults.FaultModel` at increasing fault
rates, reporting each design's slowdown against its *own* fault-free
baseline.

Because :meth:`FaultModel.sample` draws nested fault sets (a higher rate
under the same seed only adds failures) and every NoC degradation is
monotone, the slowdown curves are non-decreasing in the fault rate — the
property the resilience tests pin down.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..accel.config import HardwareConfig
from ..core.plan import DGNNSpec
from ..ditile import DiTileAccelerator
from ..graphs.dynamic import DynamicGraph
from ..resilience.faults import FaultModel
from .report import FigureResult

__all__ = ["fault_sweep"]


def fault_sweep(
    graph: DynamicGraph,
    spec: DGNNSpec,
    rates: Sequence[float] = (0.0, 0.02, 0.05, 0.1, 0.2),
    seed: int = 11,
    hardware: Optional[HardwareConfig] = None,
) -> FigureResult:
    """Slowdown-vs-fault-rate curve, DiTile vs a static-mesh fabric.

    ``rates`` drive the link and Re-Link failure probabilities (tiles
    fail at a quarter of the rate, matching ``parse_fault_spec``); both
    designs see the *same* sampled fault set per rate, so the comparison
    isolates how the interconnect absorbs identical damage.
    """
    base = hardware if hardware is not None else HardwareConfig.small()
    ditile = DiTileAccelerator(base)
    mesh = DiTileAccelerator(base, reconfigurable_noc=False)
    mesh.name = "DiTile-mesh"

    rows = []
    baseline = {}
    for rate in rates:
        faults = FaultModel.sample(
            ditile.hardware,
            tile_rate=rate / 4.0,
            link_rate=rate,
            relink_rate=rate,
            seed=seed,
        )
        row = [round(rate, 4), faults.describe()]
        slowdowns = {}
        for model in (ditile, mesh):
            result = model.simulate(graph, spec, faults=faults)
            if model.name not in baseline:
                # The first (lowest) rate anchors each design's baseline;
                # with the customary leading 0.0 that is its fault-free run.
                baseline[model.name] = result.execution_cycles
            slowdown = result.execution_cycles / baseline[model.name]
            slowdowns[model.name] = slowdown
            row.extend(
                [round(result.execution_cycles, 1), round(slowdown, 4)]
            )
        row.append(
            round(slowdowns[mesh.name] / max(slowdowns[ditile.name], 1e-12), 4)
        )
        rows.append(row)
    return FigureResult(
        figure_id="Sweep: faults",
        title="Fault-rate scaling (ring+Re-Link vs mesh)",
        headers=[
            "rate",
            "faults",
            "ditile_cycles",
            "ditile_slowdown",
            "mesh_cycles",
            "mesh_slowdown",
            "mesh_over_ditile",
        ],
        rows=rows,
        notes=[
            "nested seeded sampling: higher rates strictly add faults, so "
            "both slowdown columns are non-decreasing",
            "ring + Re-Link should degrade no worse than the mesh at every "
            "rate (mesh_over_ditile >= 1)",
        ],
    )
