"""Experiment runner: datasets x accelerators sweeps with caching.

Every figure reproduction goes through here.  Datasets are synthesized at a
configurable ``scale`` (default 1/16 — matching the ratio between the
4 MB distributed buffer of the default 4x4 array and the 64 MB of the
paper's 16x16 array, so tiling pressure per dataset matches the paper;
see EXPERIMENTS.md).  Graphs are cached per configuration because the
largest ones take seconds to synthesize.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, TYPE_CHECKING

from ..accel.config import HardwareConfig
from ..accel.metrics import SimulationResult
from ..baselines import (
    DGNNBoosterAccelerator,
    MEGAAccelerator,
    RACEAccelerator,
    ReaDyAccelerator,
)
from ..baselines.base import AcceleratorModel
from ..core.plan import DGNNSpec
from ..ditile import DiTileAccelerator
from ..graphs.datasets import dataset_names, dataset_profile, load_dataset
from ..graphs.dynamic import DynamicGraph

if TYPE_CHECKING:  # pragma: no cover - type-only; avoids an import cycle
    from ..resilience.faults import FaultModel

__all__ = ["ExperimentConfig", "ExperimentRunner", "BASELINE_ORDER"]

BASELINE_ORDER = ["ReaDy", "DGNN-Booster", "RACE", "MEGA"]

_GRAPH_CACHE: Dict[tuple, DynamicGraph] = {}


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared knobs of a reproduction run."""

    scale: float = 0.0625
    seed: int = 7
    snapshots: Optional[int] = None
    dissimilarity: Optional[float] = None
    gnn_hidden_dim: int = 64
    # The two largest graphs get an extra shrink so full sweeps stay
    # laptop-friendly; EXPERIMENTS.md records the effective scales.
    large_dataset_shrink: float = 0.2
    large_datasets: tuple = ("Mobile", "Flicker")

    def dataset_scale(self, name: str) -> float:
        """Effective synthesis scale for ``name``."""
        canonical = dataset_profile(name).name
        if canonical in self.large_datasets:
            return self.scale * self.large_dataset_shrink
        return self.scale


class ExperimentRunner:
    """Builds workloads and accelerator models, runs sweeps."""

    def __init__(
        self,
        config: ExperimentConfig = ExperimentConfig(),
        hardware: Optional[HardwareConfig] = None,
    ):
        self.config = config
        self.hardware = hardware if hardware is not None else HardwareConfig.small()

    # ------------------------------------------------------------------
    # Workloads
    # ------------------------------------------------------------------
    def graph(self, dataset: str, dissimilarity: Optional[float] = None) -> DynamicGraph:
        """The (cached) synthesized dynamic graph for ``dataset``."""
        cfg = self.config
        dis = dissimilarity if dissimilarity is not None else cfg.dissimilarity
        key = (
            dataset_profile(dataset).name,
            cfg.dataset_scale(dataset),
            cfg.seed,
            cfg.snapshots,
            dis,
        )
        if key not in _GRAPH_CACHE:
            _GRAPH_CACHE[key] = load_dataset(
                dataset,
                scale=cfg.dataset_scale(dataset),
                snapshots=cfg.snapshots,
                dissimilarity=dis,
                seed=cfg.seed,
            )
        return _GRAPH_CACHE[key]

    def spec(self, dataset: str) -> DGNNSpec:
        """The paper's classic DGCN (2-layer GCN + LSTM) for ``dataset``."""
        profile = dataset_profile(dataset)
        return DGNNSpec.classic(profile.feature_dim, self.config.gnn_hidden_dim)

    def datasets(self) -> List[str]:
        """All Table 1 datasets, in order."""
        return dataset_names()

    # ------------------------------------------------------------------
    # Accelerators
    # ------------------------------------------------------------------
    def baselines(self) -> List[AcceleratorModel]:
        """Fresh baseline models on the shared hardware budget."""
        return [
            ReaDyAccelerator(self.hardware),
            DGNNBoosterAccelerator(self.hardware),
            RACEAccelerator(self.hardware),
            MEGAAccelerator(self.hardware),
        ]

    def ditile(self, **kwargs) -> DiTileAccelerator:
        """A fresh DiTile model (kwargs forward to the constructor)."""
        return DiTileAccelerator(self.hardware, **kwargs)

    def all_accelerators(self) -> List[AcceleratorModel]:
        """Baselines plus DiTile, in the paper's figure order."""
        return [*self.baselines(), self.ditile()]

    # ------------------------------------------------------------------
    # Sweeps
    # ------------------------------------------------------------------
    def compare(
        self,
        dataset: str,
        dissimilarity: Optional[float] = None,
        faults: Optional["FaultModel"] = None,
    ) -> Dict[str, SimulationResult]:
        """Simulate every accelerator on one dataset.

        ``faults`` (a :class:`~repro.resilience.faults.FaultModel`) runs
        every design on the same degraded array; ``None`` is the
        bit-identical fault-free path.
        """
        graph = self.graph(dataset, dissimilarity)
        spec = self.spec(dataset)
        return {
            model.name: model.simulate(graph, spec, faults=faults)
            for model in self.all_accelerators()
        }

    def sweep(self) -> Dict[str, Dict[str, SimulationResult]]:
        """Simulate every accelerator on every dataset."""
        return {name: self.compare(name) for name in self.datasets()}
