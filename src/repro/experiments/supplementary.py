"""Supplementary experiments beyond the paper's figures.

These use the deeper models added on top of the analytic reproduction:

* **pipeline utilization** — per-tile busy fractions from the round-level
  pipeline simulator, isolating Algorithm 2's balance benefit without the
  busy-fraction ambiguity of Fig. 11a;
* **roofline classification** — which resource bounds each accelerator on
  each dataset;
* **link-load analysis** — bottleneck-link traffic of DiTile's spatial
  exchange under explicit routing, Re-Link on vs off;
* **front-end overhead** — the Fig. 5a scheduler units' cycle cost next to
  the execution they orchestrate.
"""

from __future__ import annotations

from repro.accel.analysis import analyze
from repro.accel.pipeline import PipelineSimulator
from repro.accel.routing import TrafficMatrixRouter, spatial_traffic_matrix
from repro.core.overhead import FrontEndModel
from repro.core.scheduler import SchedulerOptions

from ..ditile import DiTileAccelerator
from .report import FigureResult
from .runner import BASELINE_ORDER, ExperimentConfig, ExperimentRunner

__all__ = [
    "pipeline_utilization",
    "roofline_classification",
    "link_load_analysis",
    "frontend_overhead",
]


def pipeline_utilization(
    config: ExperimentConfig = ExperimentConfig(), dataset: str = "Wikipedia"
) -> FigureResult:
    """Per-variant pipeline utilization (balanced vs natural vs temporal)."""
    runner = ExperimentRunner(config)
    graph = runner.graph(dataset)
    spec = runner.spec(dataset)
    variants = {
        "DiTile (balanced)": SchedulerOptions(),
        "NoWos (natural split)": SchedulerOptions(enable_balance=False),
        "NoPs (temporal)": SchedulerOptions(
            enable_parallelism=False, enable_tiling=False
        ),
    }
    rows = []
    for name, options in variants.items():
        model = DiTileAccelerator(runner.hardware, options=options)
        plan = model.plan(graph, spec)
        result = PipelineSimulator(model.hardware).run(plan)
        rows.append(
            [
                name,
                round(result.makespan_cycles, 1),
                round(result.utilization(), 4),
                round(result.compute_utilization(), 4),
                round(result.imbalance(), 4),
            ]
        )
    balanced, natural = rows[0], rows[1]
    return FigureResult(
        figure_id="Supplementary A",
        title=f"Pipeline utilization on {dataset} (round-level simulation)",
        headers=["variant", "makespan", "busy_util", "compute_util",
                 "imbalance"],
        rows=rows,
        notes=[
            "Algorithm 2's balanced groups give "
            f"{100 * (natural[1] / balanced[1] - 1):.1f}% shorter makespan "
            "than the natural-order split on this workload",
        ],
    )


def roofline_classification(
    config: ExperimentConfig = ExperimentConfig(),
) -> FigureResult:
    """Which resource bounds each accelerator, per dataset."""
    runner = ExperimentRunner(config)
    rows = []
    for dataset in runner.datasets():
        results = runner.compare(dataset)
        for name in [*BASELINE_ORDER, "DiTile-DGNN"]:
            result = results[name]
            hardware = next(
                m.hardware for m in runner.all_accelerators() if m.name == name
            )
            roofline = analyze(result, hardware)
            rows.append(
                [
                    dataset,
                    name,
                    roofline.bound,
                    round(roofline.operational_intensity, 2),
                    round(roofline.achieved_fraction_of_peak, 4),
                ]
            )
    return FigureResult(
        figure_id="Supplementary B",
        title="Roofline classification per accelerator per dataset",
        headers=["dataset", "accelerator", "bound", "MACs_per_byte",
                 "frac_of_peak"],
        rows=rows,
    )


def link_load_analysis(
    config: ExperimentConfig = ExperimentConfig(), dataset: str = "Wikipedia"
) -> FigureResult:
    """Bottleneck-link load of the spatial exchange, Re-Link on vs off."""
    runner = ExperimentRunner(config)
    graph = runner.graph(dataset)
    spec = runner.spec(dataset)
    rows = []
    for relink in (True, False):
        model = DiTileAccelerator(runner.hardware, reconfigurable_noc=relink)
        plan = model.plan(graph, spec)
        matrix = spatial_traffic_matrix(plan, model.hardware)
        report = TrafficMatrixRouter(model.hardware).route_matrix(
            matrix, regular=False
        )
        rows.append(
            [
                "Re-Link" if relink else "static mesh",
                round(report.total_bytes, 1),
                round(report.avg_hops, 3),
                round(report.max_link_load, 1),
                round(
                    report.bottleneck_cycles(
                        model.hardware.noc.link_bytes_per_cycle
                    ),
                    1,
                ),
            ]
        )
    return FigureResult(
        figure_id="Supplementary C",
        title=f"Spatial-exchange link loads on {dataset} (snapshot 0)",
        headers=["interconnect", "bytes", "avg_hops", "max_link_bytes",
                 "bottleneck_cycles"],
        rows=rows,
        notes=["Re-Link bypasses shorten vertical routes and spread load"],
    )


def frontend_overhead(
    config: ExperimentConfig = ExperimentConfig(),
) -> FigureResult:
    """Front-end (Fig. 5a) cycles next to the execution they plan."""
    runner = ExperimentRunner(config)
    front_end = FrontEndModel()
    rows = []
    for dataset in runner.datasets():
        graph = runner.graph(dataset)
        spec = runner.spec(dataset)
        model = runner.ditile()
        plan = model.plan(graph, spec)
        result = model.simulate(graph, spec)
        estimate = front_end.estimate_for_plan(plan, model.hardware.total_tiles)
        share = estimate.total_cycles / (
            estimate.total_cycles + result.execution_cycles
        )
        rows.append(
            [
                dataset,
                round(estimate.total_cycles, 1),
                round(result.execution_cycles, 1),
                round(100 * share, 2),
            ]
        )
    return FigureResult(
        figure_id="Supplementary D",
        title="Front-end planning overhead vs execution",
        headers=["dataset", "frontend_cycles", "execution_cycles",
                 "frontend_share_%"],
        rows=rows,
        paper_values={"control+config energy": "<7% (§7.6)"},
    )
