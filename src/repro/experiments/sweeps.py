"""Parameter sweeps: hardware scaling and workload sensitivity grids.

The paper's headline claims concern scalability ("large-scale DGNN
execution"); these sweeps characterize how the reproduction behaves as the
tile budget, buffer capacity, DRAM bandwidth, snapshot count, and
dissimilarity move — the knobs an architect would actually turn.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence

from ..accel.config import HardwareConfig
from ..core.plan import DGNNSpec
from ..ditile import DiTileAccelerator
from ..graphs.dynamic import DynamicGraph
from .report import FigureResult

__all__ = [
    "tile_scaling_sweep",
    "buffer_scaling_sweep",
    "bandwidth_scaling_sweep",
    "snapshot_count_sweep",
    "gnn_depth_sweep",
]


def _simulate(graph: DynamicGraph, spec: DGNNSpec, hardware: HardwareConfig):
    model = DiTileAccelerator(hardware)
    plan = model.plan(graph, spec)
    result = model.simulate(graph, spec)
    return plan, result


def tile_scaling_sweep(
    graph: DynamicGraph,
    spec: DGNNSpec,
    sides: Sequence[int] = (2, 4, 8),
) -> FigureResult:
    """Execution vs tile-array side length (buffer scaled per tile)."""
    rows = []
    base_cycles: Optional[float] = None
    for side in sides:
        hardware = HardwareConfig(
            grid_rows=side,
            grid_cols=side,
            distributed_buffer_bytes=side * side * 256 * 1024,
        )
        plan, result = _simulate(graph, spec, hardware)
        if base_cycles is None:
            base_cycles = result.execution_cycles
        rows.append(
            [
                f"{side}x{side}",
                side * side,
                round(result.execution_cycles, 1),
                round(base_cycles / result.execution_cycles, 3),
                f"{plan.factors.snapshot_groups}x{plan.factors.vertex_groups}",
                round(result.energy_joules * 1e3, 4),
            ]
        )
    return FigureResult(
        figure_id="Sweep: tiles",
        title="Tile-array scaling",
        headers=["grid", "tiles", "cycles", "speedup_vs_smallest",
                 "chosen_mapping", "energy_mJ"],
        rows=rows,
    )


def buffer_scaling_sweep(
    graph: DynamicGraph,
    spec: DGNNSpec,
    capacities_kib: Sequence[int] = (256, 1024, 4096, 16384),
) -> FigureResult:
    """Tiling factor and DRAM traffic vs distributed-buffer capacity."""
    rows = []
    for capacity in capacities_kib:
        hardware = replace(
            HardwareConfig.small(), distributed_buffer_bytes=capacity * 1024
        )
        plan, result = _simulate(graph, spec, hardware)
        rows.append(
            [
                capacity,
                plan.tiling.alpha,
                round(result.dram_bytes / 2**20, 3),
                round(result.execution_cycles, 1),
            ]
        )
    alphas = [row[1] for row in rows]
    return FigureResult(
        figure_id="Sweep: buffer",
        title="Distributed-buffer capacity scaling",
        headers=["buffer_KiB", "alpha", "dram_MB", "cycles"],
        rows=rows,
        notes=[
            "larger buffers need less tiling (alpha non-increasing: "
            f"{alphas})"
        ],
    )


def bandwidth_scaling_sweep(
    graph: DynamicGraph,
    spec: DGNNSpec,
    bandwidths: Sequence[float] = (16.0, 64.0, 256.0),
) -> FigureResult:
    """Execution time vs off-chip bandwidth (memory-boundedness probe)."""
    rows = []
    for bandwidth in bandwidths:
        base = HardwareConfig.small()
        hardware = replace(
            base, dram=replace(base.dram, bandwidth_bytes_per_cycle=bandwidth)
        )
        _, result = _simulate(graph, spec, hardware)
        rows.append(
            [
                bandwidth,
                round(result.execution_cycles, 1),
                round(result.cycles.off_chip / result.cycles.total, 3),
            ]
        )
    return FigureResult(
        figure_id="Sweep: bandwidth",
        title="Off-chip bandwidth scaling",
        headers=["bytes_per_cycle", "cycles", "offchip_share"],
        rows=rows,
    )


def snapshot_count_sweep(
    graphs: List[DynamicGraph],
    spec: DGNNSpec,
) -> FigureResult:
    """Chosen mapping and cost vs snapshot count ``T``.

    Pass graphs of the same scale with different ``T`` (e.g. from
    ``load_dataset(..., snapshots=T)``).
    """
    rows = []
    for graph in graphs:
        model = DiTileAccelerator()
        plan = model.plan(graph, spec)
        result = model.simulate(graph, spec)
        rows.append(
            [
                graph.num_snapshots,
                f"{plan.factors.snapshot_groups}x{plan.factors.vertex_groups}",
                round(result.execution_cycles, 1),
                round(result.execution_cycles / graph.num_snapshots, 1),
            ]
        )
    return FigureResult(
        figure_id="Sweep: snapshots",
        title="Snapshot-count scaling",
        headers=["T", "chosen_mapping", "cycles", "cycles_per_snapshot"],
        rows=rows,
    )


def gnn_depth_sweep(
    graph: DynamicGraph,
    feature_dim: int,
    hidden_dim: int = 64,
    depths: Sequence[int] = (1, 2, 3),
) -> FigureResult:
    """Cost vs GCN depth ``L``.

    Deeper GNNs widen the invalidation frontier (Eq. 17's receptive
    fields), so both the workload and the reuse opportunity shift with
    ``L``.
    """
    rows = []
    for depth in depths:
        spec = DGNNSpec(
            gcn_dims=(feature_dim, *([hidden_dim] * depth)),
            rnn_hidden_dim=hidden_dim,
        )
        model = DiTileAccelerator()
        plan = model.plan(graph, spec)
        result = model.simulate(graph, spec)
        rows.append(
            [
                depth,
                round(result.total_macs, 1),
                round(result.execution_cycles, 1),
                f"{plan.factors.snapshot_groups}x{plan.factors.vertex_groups}",
            ]
        )
    return FigureResult(
        figure_id="Sweep: depth",
        title="GCN depth scaling",
        headers=["L", "macs", "cycles", "chosen_mapping"],
        rows=rows,
    )
