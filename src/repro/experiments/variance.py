"""Seed-variance analysis of the headline results.

The datasets are synthesized, so every reported ratio carries generator
noise.  This module re-runs the Fig. 9 comparison across seeds and reports
mean and spread of each baseline-vs-DiTile ratio — the error bars the
paper's figures omit.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Sequence

import numpy as np

from .report import FigureResult
from .runner import BASELINE_ORDER, ExperimentConfig, ExperimentRunner

__all__ = ["seed_variance"]


def seed_variance(
    config: ExperimentConfig = ExperimentConfig(),
    dataset: str = "Wikipedia",
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
    metric: str = "time",
) -> FigureResult:
    """Baseline/DiTile ratio statistics across generator seeds.

    ``metric`` is one of ``time``, ``energy``, ``ops``, ``dram``.
    """
    extractors = {
        "time": lambda r: r.execution_cycles,
        "energy": lambda r: r.energy_joules,
        "ops": lambda r: r.total_macs,
        "dram": lambda r: r.dram_bytes,
    }
    if metric not in extractors:
        raise ValueError(f"unknown metric {metric!r}; use {sorted(extractors)}")
    extract = extractors[metric]

    ratios: Dict[str, List[float]] = {name: [] for name in BASELINE_ORDER}
    for seed in seeds:
        runner = ExperimentRunner(replace(config, seed=seed))
        results = runner.compare(dataset)
        ditile = extract(results["DiTile-DGNN"])
        for name in BASELINE_ORDER:
            ratios[name].append(extract(results[name]) / ditile)

    rows = []
    for name in BASELINE_ORDER:
        values = np.array(ratios[name])
        rows.append(
            [
                name,
                round(float(values.mean()), 3),
                round(float(values.std()), 3),
                round(float(values.min()), 3),
                round(float(values.max()), 3),
                round(float(values.std() / values.mean()), 4),
            ]
        )
    return FigureResult(
        figure_id="Variance",
        title=(
            f"{metric} ratio vs DiTile on {dataset} across "
            f"{len(seeds)} generator seeds"
        ),
        headers=["baseline", "mean", "std", "min", "max", "cv"],
        rows=rows,
        notes=["low coefficients of variation mean the headline ratios are "
               "robust to synthesis noise"],
    )
