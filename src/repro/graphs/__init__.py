"""Dynamic-graph substrate: snapshots, deltas, generators, datasets."""

from .snapshot import GraphSnapshot
from .dynamic import DynamicGraph, DynamicGraphStats
from .delta import (
    AdditionOnlyStep,
    SnapshotDelta,
    addition_only_schedule,
    common_core,
    snapshot_delta,
)
from .generators import (
    evolve_snapshot,
    generate_dynamic_graph,
    powerlaw_snapshot,
    random_features,
)
from .datasets import (
    DATASET_ALIASES,
    DatasetProfile,
    TABLE1_DATASETS,
    dataset_names,
    dataset_profile,
    load_dataset,
)
from .continuous import ContinuousDynamicGraph, EdgeEvent
from .io import load_dynamic_graph, load_edge_stream, save_dynamic_graph
from .metrics import (
    StructureMetrics,
    hill_tail_exponent,
    snapshot_metrics,
    temporal_overlap,
)
from .validate import (
    GraphValidationError,
    validate_dynamic_graph,
    validate_snapshot,
)
from .partition import (
    VertexPartition,
    bfs_partition,
    contiguous_vertex_partition,
    edge_cut,
    partition_loads,
    round_robin_partition,
    snapshot_assignment,
)

__all__ = [
    "GraphSnapshot",
    "DynamicGraph",
    "DynamicGraphStats",
    "SnapshotDelta",
    "AdditionOnlyStep",
    "snapshot_delta",
    "common_core",
    "addition_only_schedule",
    "powerlaw_snapshot",
    "evolve_snapshot",
    "generate_dynamic_graph",
    "random_features",
    "DatasetProfile",
    "TABLE1_DATASETS",
    "DATASET_ALIASES",
    "dataset_profile",
    "dataset_names",
    "load_dataset",
    "ContinuousDynamicGraph",
    "EdgeEvent",
    "save_dynamic_graph",
    "load_dynamic_graph",
    "load_edge_stream",
    "StructureMetrics",
    "snapshot_metrics",
    "hill_tail_exponent",
    "temporal_overlap",
    "GraphValidationError",
    "validate_snapshot",
    "validate_dynamic_graph",
    "VertexPartition",
    "bfs_partition",
    "contiguous_vertex_partition",
    "round_robin_partition",
    "snapshot_assignment",
    "edge_cut",
    "partition_loads",
]
