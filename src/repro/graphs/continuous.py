"""Continuous-time dynamic graphs and their discretization (paper §2.1).

The paper distinguishes two dynamic-graph representations: continuous-time
dynamic graphs — "a pair <G, O>, where G represents the initial state of a
static graph, and O is a set of updates" — and discrete-time dynamic
graphs, "a sequence of discrete snapshots sampled at regular intervals"
(Eq. 1).  DiTile-DGNN operates on the discrete-time form; this module
provides the continuous-time form plus the regular-interval sampling that
converts one into the other, so event-stream datasets (the natural format
of real dynamic-graph traces) feed the rest of the library.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .dynamic import DynamicGraph
from .snapshot import GraphSnapshot

__all__ = ["EdgeEvent", "ContinuousDynamicGraph", "window_index"]


def window_index(time: float, origin: float, window: float) -> int:
    """The window an event at ``time`` belongs to.

    Windows partition the stream into half-open intervals anchored at
    ``origin`` (the first event time): window ``k`` covers
    ``(origin + k*window, origin + (k+1)*window]``, except that events at
    exactly ``origin`` belong to window 0.  The closed upper bound matches
    :meth:`ContinuousDynamicGraph.edges_at`, whose prefix is inclusive —
    so an event landing exactly on a boundary is visible in the snapshot
    sampled at that boundary.
    """
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    return max(0, math.ceil((time - origin) / window) - 1)

_ADD = "add"
_REMOVE = "remove"


@dataclass(frozen=True, order=True)
class EdgeEvent:
    """One timestamped update in the stream ``O``."""

    time: float
    src: int
    dst: int
    kind: str = _ADD

    def __post_init__(self) -> None:
        if self.kind not in (_ADD, _REMOVE):
            raise ValueError(f"kind must be 'add' or 'remove', got {self.kind!r}")
        if self.src < 0 or self.dst < 0:
            raise ValueError("vertex ids must be non-negative")


class ContinuousDynamicGraph:
    """The pair ``<G, O>``: an initial snapshot plus a timestamped update set."""

    def __init__(
        self,
        initial: GraphSnapshot,
        events: Iterable[EdgeEvent],
        name: str = "continuous-graph",
    ):
        self.initial = initial
        self.events: List[EdgeEvent] = sorted(events)
        self.name = name
        max_id = max(
            [initial.num_vertices - 1]
            + [max(e.src, e.dst) for e in self.events],
            default=-1,
        )
        self.num_vertices = max(initial.num_vertices, max_id + 1)
        self._times = [e.time for e in self.events]

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_event_arrays(
        cls,
        num_vertices: int,
        times: np.ndarray,
        src: np.ndarray,
        dst: np.ndarray,
        kinds: Optional[Sequence[str]] = None,
        name: str = "continuous-graph",
    ) -> "ContinuousDynamicGraph":
        """Build from parallel arrays (empty initial graph)."""
        times = np.asarray(times, dtype=np.float64)
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if not (len(times) == len(src) == len(dst)):
            raise ValueError("times, src, dst must have equal length")
        if kinds is None:
            kinds = [_ADD] * len(times)
        events = [
            EdgeEvent(float(t), int(s), int(d), k)
            for t, s, d, k in zip(times, src, dst, kinds)
        ]
        return cls(GraphSnapshot.empty(num_vertices), events, name=name)

    @classmethod
    def from_snapshots(
        cls, graph: DynamicGraph, name: Optional[str] = None
    ) -> "ContinuousDynamicGraph":
        """Replay a discrete-time dynamic graph as an event stream.

        The first snapshot becomes the initial graph ``G``; every later
        transition ``t-1 -> t`` contributes its exact edge delta as add /
        remove events stamped at time ``t``.  Discretizing the result with
        a unit window recovers snapshots ``1..T-1``, which is how offline
        Table 1 datasets are fed to the streaming service.
        """
        from .delta import snapshot_delta  # local import avoids a cycle at module load

        events: List[EdgeEvent] = []
        for t in range(1, graph.num_snapshots):
            delta = snapshot_delta(graph[t - 1], graph[t])
            time = float(t)
            events.extend(
                EdgeEvent(time, int(s), int(d), _ADD)
                for s, d in zip(delta.added_src, delta.added_dst)
            )
            events.extend(
                EdgeEvent(time, int(s), int(d), _REMOVE)
                for s, d in zip(delta.removed_src, delta.removed_dst)
            )
        return cls(graph[0], events, name=name or f"{graph.name}[events]")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_events(self) -> int:
        """Updates in ``O``."""
        return len(self.events)

    @property
    def time_span(self) -> Tuple[float, float]:
        """(first, last) event time; (0, 0) for an empty stream."""
        if not self.events:
            return (0.0, 0.0)
        return (self.events[0].time, self.events[-1].time)

    def edges_at(self, time: float) -> set:
        """The edge set after applying every event with ``e.time <= time``."""
        edges = set(self.initial.edge_set())
        stop = bisect.bisect_right(self._times, time)
        for event in self.events[:stop]:
            pair = (event.src, event.dst)
            if event.kind == _ADD:
                edges.add(pair)
            else:
                edges.discard(pair)
        return edges

    def snapshot_at(
        self, time: float, feature_dim: Optional[int] = None
    ) -> GraphSnapshot:
        """The graph state at ``time`` as a :class:`GraphSnapshot`."""
        edges = self.edges_at(time)
        return GraphSnapshot.from_edges(
            self.num_vertices,
            edges,
            feature_dim=feature_dim or self.initial.feature_dim,
        )

    # ------------------------------------------------------------------
    # Discretization (Eq. 1)
    # ------------------------------------------------------------------
    def discretize(
        self,
        num_snapshots: int,
        feature_dim: Optional[int] = None,
    ) -> DynamicGraph:
        """Sample ``num_snapshots`` snapshots at regular intervals.

        Snapshot ``i`` captures the graph state at
        ``t_first + (i + 1) / T * (t_last - t_first)``, so the last
        snapshot includes every event.  With an empty stream, every
        snapshot equals the initial graph.
        """
        if num_snapshots < 1:
            raise ValueError("num_snapshots must be >= 1")
        first, last = self.time_span
        span = last - first
        snapshots = []
        for i in range(num_snapshots):
            if span > 0:
                time = first + (i + 1) / num_snapshots * span
            else:
                time = last
            snapshots.append(self.snapshot_at(time, feature_dim))
        return DynamicGraph(snapshots, name=f"{self.name}[T={num_snapshots}]")

    def num_windows(self, window: float, origin: Optional[float] = None) -> int:
        """Windows of width ``window`` needed to cover the stream (>= 1)."""
        first, last = self.time_span
        anchor = first if origin is None else origin
        if not self.events:
            return 1
        return window_index(last, anchor, window) + 1

    def discretize_windows(
        self,
        window: float,
        feature_dim: Optional[int] = None,
        origin: Optional[float] = None,
    ) -> DynamicGraph:
        """Sample one snapshot per fixed-width time window.

        Unlike :meth:`discretize` (which divides the *observed span* into a
        requested snapshot count), this anchors half-open windows of width
        ``window`` at ``origin`` (default: the first event time) and samples
        the graph state at each window's closing boundary — the same rule
        (:func:`window_index`) the streaming service's ingest stage applies
        online, so the two paths discretize identically.  Windows containing
        no events still produce a snapshot (equal to their predecessor).
        """
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        first, _ = self.time_span
        anchor = first if origin is None else origin
        count = self.num_windows(window, origin=anchor)
        snapshots = [
            self.snapshot_at(anchor + (k + 1) * window, feature_dim)
            for k in range(count)
        ]
        return DynamicGraph(snapshots, name=f"{self.name}[W={window:g}]")

    def __repr__(self) -> str:
        return (
            f"ContinuousDynamicGraph({self.name!r}, V={self.num_vertices}, "
            f"|O|={self.num_events})"
        )
