"""Dataset registry reproducing Table 1 of the paper.

The paper evaluates on six dynamic graphs (PubMed, Reddit, Mobile, Twitter,
Wikipedia, Flickr).  The original traces are external downloads; every model
in the paper consumes only their aggregate shape — vertex/edge counts,
feature width, degree skew, snapshot count, and inter-snapshot
dissimilarity — so we synthesize graphs matching Table 1's published counts
(see DESIGN.md §2 for the substitution argument).

``load_dataset(name, scale=...)`` shrinks vertex/edge counts proportionally
(preserving the vertex-to-edge ratio and degree skew) so the largest graphs
stay tractable on a laptop; benchmarks record the scale they used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .dynamic import DynamicGraph
from .generators import generate_dynamic_graph

__all__ = [
    "DatasetProfile",
    "TABLE1_DATASETS",
    "DATASET_ALIASES",
    "dataset_profile",
    "dataset_names",
    "load_dataset",
]

# Paper defaults: §7.7 cites a 4.1%-13.3% dissimilarity band across real
# dynamic graphs; we centre each dataset inside it.
_DEFAULT_DISSIMILARITY = 0.10
_DEFAULT_SNAPSHOTS = 8


@dataclass(frozen=True)
class DatasetProfile:
    """Table 1 row: published scale parameters of one evaluation dataset."""

    name: str
    abbrev: str
    vertices: int
    edges: int
    feature_dim: int
    description: str
    dissimilarity: float = _DEFAULT_DISSIMILARITY
    snapshots: int = _DEFAULT_SNAPSHOTS

    @property
    def vertex_to_edge_ratio(self) -> float:
        """``V/E`` — the paper links small ratios to GNN/RNN imbalance (§7.4)."""
        return self.vertices / self.edges

    def scaled(self, scale: float) -> "DatasetProfile":
        """A proportionally shrunken profile (``scale <= 1``).

        Vertex and edge counts shrink together so ``V/E`` is preserved; a
        floor keeps tiny scales usable.
        """
        if not 0 < scale <= 1:
            raise ValueError(f"scale must be in (0, 1], got {scale}")
        if scale == 1.0:
            return self
        vertices = max(int(self.vertices * scale), 64)
        edges = max(int(self.edges * scale), vertices * 2)
        return DatasetProfile(
            name=self.name,
            abbrev=self.abbrev,
            vertices=vertices,
            edges=edges,
            feature_dim=self.feature_dim,
            description=self.description,
            dissimilarity=self.dissimilarity,
            snapshots=self.snapshots,
        )


# Table 1 of the paper, verbatim counts.
TABLE1_DATASETS: List[DatasetProfile] = [
    DatasetProfile("PubMed", "PM", 1_917, 88_648, 500, "Citation Graph"),
    DatasetProfile("Reddit", "RD", 55_863, 858_490, 602, "Social Graph"),
    DatasetProfile("Mobile", "MB", 340_751, 2_200_203, 362, "Citation Graph"),
    DatasetProfile("Twitter", "TW", 8_861, 119_872, 768, "Sharing Graph"),
    DatasetProfile("Wikipedia", "WD", 9_227, 157_474, 172, "Citation Graph"),
    DatasetProfile("Flicker", "FK", 2_302_925, 33_140_017, 800, "Social Graph"),
]

DATASET_ALIASES: Dict[str, str] = {}
for _profile in TABLE1_DATASETS:
    DATASET_ALIASES[_profile.name.lower()] = _profile.name
    DATASET_ALIASES[_profile.abbrev.lower()] = _profile.name
# The paper's figures spell Flicker/Flickr inconsistently; accept both.
DATASET_ALIASES["flickr"] = "Flicker"

_BY_NAME: Dict[str, DatasetProfile] = {p.name: p for p in TABLE1_DATASETS}


def dataset_names() -> List[str]:
    """Canonical dataset names in Table 1 order."""
    return [p.name for p in TABLE1_DATASETS]


def dataset_profile(name: str) -> DatasetProfile:
    """Look up a Table 1 profile by name or abbreviation (case-insensitive)."""
    canonical = DATASET_ALIASES.get(name.lower())
    if canonical is None:
        known = ", ".join(sorted(DATASET_ALIASES))
        raise KeyError(f"unknown dataset {name!r}; known: {known}")
    return _BY_NAME[canonical]


def load_dataset(
    name: str,
    scale: float = 1.0,
    snapshots: Optional[int] = None,
    dissimilarity: Optional[float] = None,
    seed: int = 0,
    with_features: bool = False,
) -> DynamicGraph:
    """Synthesize the named dataset as a :class:`DynamicGraph`.

    Parameters
    ----------
    name:
        Table 1 name or abbreviation (``"Wikipedia"`` / ``"WD"``).
    scale:
        Proportional shrink factor for vertex/edge counts (``1.0`` = the
        published size).
    snapshots, dissimilarity:
        Override the profile's snapshot count / target ``Dis``.
    seed:
        RNG seed for reproducible synthesis.
    with_features:
        Attach dense feature matrices (needed by the numeric models only).
    """
    profile = dataset_profile(name).scaled(scale)
    return generate_dynamic_graph(
        num_vertices=profile.vertices,
        num_edges=profile.edges,
        num_snapshots=snapshots if snapshots is not None else profile.snapshots,
        dissimilarity=(
            dissimilarity if dissimilarity is not None else profile.dissimilarity
        ),
        feature_dim=profile.feature_dim,
        seed=seed,
        with_features=with_features,
        name=profile.name,
    )
