"""Snapshot deltas and the deletion-to-addition transformation.

The paper (§7.1) follows CommonGraph/MEGA in observing that *deleting* edges
from an incrementally-maintained GNN state is far more expensive than adding
edges, and transforms deletion operations into additions "by leveraging the
mutually inclusive graph structure across snapshots": instead of evolving
``G^t -> G^{t+1}`` directly, both are reached by *adding* edges to their
common core ``G^t ∩ G^{t+1}``.

This module computes exact edge deltas between snapshots and builds the
addition-only execution schedule used by the Mega-Alg and DiTile-Alg
operation-counting models (:mod:`repro.baselines.algorithms`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .dynamic import DynamicGraph
from .snapshot import GraphSnapshot

__all__ = [
    "SnapshotDelta",
    "snapshot_delta",
    "snapshot_edge_keys",
    "delta_counts",
    "apply_delta",
    "split_delta",
    "merge_deltas",
    "common_core",
    "AdditionOnlyStep",
    "addition_only_schedule",
]


def _edge_keys(snapshot: GraphSnapshot, id_space: int) -> np.ndarray:
    """Edges of ``snapshot`` encoded as sorted int64 keys ``dst*N + src``."""
    src, dst = snapshot.edge_arrays()
    return dst * id_space + src  # CSR order is already sorted by (dst, src)


def snapshot_edge_keys(snapshot: GraphSnapshot, id_space: int) -> np.ndarray:
    """Public :func:`_edge_keys`: sorted int64 edge keys under ``id_space``.

    Any ``id_space > max vertex id`` gives an injective, order-preserving
    encoding, so callers diffing a whole snapshot sequence can compute one
    key array per snapshot against a shared id space instead of one per
    transition (see :func:`repro.baselines.algorithms.measure_quantities`).
    """
    if id_space < max(snapshot.num_vertices, 1):
        raise ValueError(
            f"id_space {id_space} cannot encode {snapshot.num_vertices} vertices"
        )
    return _edge_keys(snapshot, id_space)


def _sorted_isin(values: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Membership of each element of sorted ``values`` in sorted ``table``.

    Both arrays are sorted and duplicate-free (CSR edge keys), so a
    binary-search probe replaces ``np.setdiff1d``'s concatenate-and-sort
    pass — the measured hot path of snapshot-delta extraction.
    """
    if len(table) == 0:
        return np.zeros(len(values), dtype=bool)
    pos = np.searchsorted(table, values)
    pos[pos == len(table)] = len(table) - 1
    return table[pos] == values


def delta_counts(prev_keys: np.ndarray, cur_keys: np.ndarray) -> Tuple[int, int]:
    """``(added, removed)`` edge counts between two sorted key arrays.

    The count-only fast path for callers that need delta *sizes* but not
    the edge endpoints: one membership probe yields the intersection
    cardinality, from which both counts follow.
    """
    shared = int(np.count_nonzero(_sorted_isin(cur_keys, prev_keys)))
    return len(cur_keys) - shared, len(prev_keys) - shared


def _keys_to_arrays(keys: np.ndarray, id_space: int) -> Tuple[np.ndarray, np.ndarray]:
    return keys % id_space, keys // id_space


@dataclass(frozen=True)
class SnapshotDelta:
    """Exact edge-level difference between two snapshots.

    ``added``/``removed`` hold ``(src, dst)`` arrays.  ``touched_vertices``
    is the set of destination vertices incident to any change — the seeds of
    the GNN invalidation frontier.
    """

    added_src: np.ndarray
    added_dst: np.ndarray
    removed_src: np.ndarray
    removed_dst: np.ndarray

    @property
    def num_added(self) -> int:
        """Number of inserted edges."""
        return len(self.added_src)

    @property
    def num_removed(self) -> int:
        """Number of deleted edges."""
        return len(self.removed_src)

    @property
    def num_changes(self) -> int:
        """Total number of edge insertions plus deletions."""
        return self.num_added + self.num_removed

    def touched_vertices(self) -> np.ndarray:
        """Destination vertices whose in-neighbour row changed."""
        return np.unique(np.concatenate([self.added_dst, self.removed_dst]))


def snapshot_delta(prev: GraphSnapshot, cur: GraphSnapshot) -> SnapshotDelta:
    """Exact ``prev -> cur`` edge delta.

    Vertices present in only one snapshot contribute all their edges to the
    corresponding side of the delta.
    """
    id_space = max(prev.num_vertices, cur.num_vertices, 1)
    prev_keys = _edge_keys(prev, id_space)
    cur_keys = _edge_keys(cur, id_space)
    # Both key arrays are sorted and unique, so a searchsorted probe beats
    # np.setdiff1d (which concatenates, re-sorts, and hashes); the output
    # keeps the same ascending (dst, src) order setdiff1d produced.
    added = cur_keys[~_sorted_isin(cur_keys, prev_keys)]
    removed = prev_keys[~_sorted_isin(prev_keys, cur_keys)]
    a_src, a_dst = _keys_to_arrays(added, id_space)
    r_src, r_dst = _keys_to_arrays(removed, id_space)
    return SnapshotDelta(a_src, a_dst, r_src, r_dst)


def apply_delta(
    prev: GraphSnapshot,
    delta: SnapshotDelta,
    timestamp: int = 0,
) -> GraphSnapshot:
    """Materialize the successor snapshot ``prev + delta`` incrementally.

    The inverse of :func:`snapshot_delta`: instead of rebuilding the
    successor's CSR from a full edge list, the previous snapshot's sorted
    edge keys are merged with the delta's additions and purged of its
    removals — the streaming-ingest fast path (:mod:`repro.serving`),
    whose cost scales with ``|E| + |delta|`` array merges rather than
    Python-level edge-set reconstruction.

    Removals of absent edges and additions of present edges are no-ops,
    matching :meth:`ContinuousDynamicGraph.edges_at` set semantics.
    """
    max_id = max(
        [prev.num_vertices - 1]
        + [int(a.max()) for a in (
            delta.added_src, delta.added_dst, delta.removed_src, delta.removed_dst
        ) if len(a)],
    )
    id_space = max(max_id + 1, 1)
    keys = _edge_keys(prev, id_space)
    if delta.num_removed:
        removed = delta.removed_dst * id_space + delta.removed_src
        keys = np.setdiff1d(keys, removed, assume_unique=False)
    if delta.num_added:
        added = delta.added_dst * id_space + delta.added_src
        keys = np.union1d(keys, added)
    src, dst = _keys_to_arrays(keys, id_space)
    return GraphSnapshot.from_edge_arrays(
        max_id + 1, src, dst, feature_dim=prev.feature_dim, timestamp=timestamp
    )


def split_delta(delta: SnapshotDelta, assignment: np.ndarray) -> List[SnapshotDelta]:
    """Split ``delta`` into per-part deltas by the owner of each edge's dst.

    The sharded serving layer's delta-distribution primitive: edge changes
    are owned by the part owning the destination vertex, so the returned
    deltas are disjoint and :func:`merge_deltas` over them recovers the
    exact global delta (in any order — :func:`apply_delta` canonicalizes).
    """
    assignment = np.asarray(assignment, dtype=np.int64)
    num_parts = int(assignment.max()) + 1 if len(assignment) else 1
    out: List[SnapshotDelta] = []
    added_owner = assignment[delta.added_dst]
    removed_owner = assignment[delta.removed_dst]
    for part in range(num_parts):
        add = added_owner == part
        rem = removed_owner == part
        out.append(
            SnapshotDelta(
                added_src=delta.added_src[add],
                added_dst=delta.added_dst[add],
                removed_src=delta.removed_src[rem],
                removed_dst=delta.removed_dst[rem],
            )
        )
    return out


def merge_deltas(deltas: List[SnapshotDelta]) -> SnapshotDelta:
    """Concatenate disjoint per-part deltas into one global delta.

    The coordinator's merge step: parts contribute in list order, which
    callers keep deterministic (shard 0..S-1).  The result is *not*
    re-sorted — :func:`apply_delta` is order-insensitive, so snapshots
    built from a merged delta are bit-identical to the single-partition
    path regardless of how changes were split.
    """
    if not deltas:
        return SnapshotDelta(
            added_src=np.empty(0, dtype=np.int64),
            added_dst=np.empty(0, dtype=np.int64),
            removed_src=np.empty(0, dtype=np.int64),
            removed_dst=np.empty(0, dtype=np.int64),
        )
    return SnapshotDelta(
        added_src=np.concatenate([d.added_src for d in deltas]),
        added_dst=np.concatenate([d.added_dst for d in deltas]),
        removed_src=np.concatenate([d.removed_src for d in deltas]),
        removed_dst=np.concatenate([d.removed_dst for d in deltas]),
    )


def common_core(prev: GraphSnapshot, cur: GraphSnapshot) -> GraphSnapshot:
    """The intersection snapshot ``prev ∩ cur`` (shared edges only).

    Both ``prev`` and ``cur`` are reachable from the core by *additions*
    alone — the key fact behind the deletion-to-addition transform.
    """
    id_space = max(prev.num_vertices, cur.num_vertices, 1)
    shared = np.intersect1d(
        _edge_keys(prev, id_space), _edge_keys(cur, id_space), assume_unique=True
    )
    src, dst = _keys_to_arrays(shared, id_space)
    num_vertices = max(prev.num_vertices, cur.num_vertices)
    return GraphSnapshot.from_edge_arrays(
        num_vertices, src, dst, feature_dim=cur.feature_dim, timestamp=cur.timestamp
    )


@dataclass(frozen=True)
class AdditionOnlyStep:
    """One transition of the addition-only schedule.

    To move the incremental state from snapshot ``t`` to ``t+1`` without
    deletions, the engine rolls back to the common core (whose state it
    retains because the core is a subgraph of snapshot ``t``), then applies
    ``edges_to_add`` insertions.  ``direct_deletions``/``direct_additions``
    record what a naive delta would have done, for cost comparison.
    """

    timestamp: int
    core_edges: int
    edges_to_add: int
    direct_additions: int
    direct_deletions: int

    @property
    def avoided_deletions(self) -> int:
        """Deletions the transform converted into (cheaper) additions."""
        return self.direct_deletions


def addition_only_schedule(graph: DynamicGraph) -> List[AdditionOnlyStep]:
    """The MEGA-style addition-only schedule over all snapshot transitions.

    For each transition ``t-1 -> t``, the engine rebuilds snapshot ``t``
    from the common core by pure additions.  The additions applied are the
    edges of ``t`` absent from the core — i.e. exactly the direct additions
    (edges new in ``t``); the deletions disappear because the core never
    contained them.
    """
    steps: List[AdditionOnlyStep] = []
    for t in range(1, graph.num_snapshots):
        prev, cur = graph[t - 1], graph[t]
        delta = snapshot_delta(prev, cur)
        core_edges = prev.num_edges - delta.num_removed
        steps.append(
            AdditionOnlyStep(
                timestamp=t,
                core_edges=core_edges,
                edges_to_add=delta.num_added,
                direct_additions=delta.num_added,
                direct_deletions=delta.num_removed,
            )
        )
    return steps
