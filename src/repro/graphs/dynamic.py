"""Discrete-time dynamic graph: a sequence of snapshots (paper Eq. 1).

``DG = {G^1, G^2, ..., G^T}``.  On top of the raw snapshot sequence this
module provides the similarity analysis the paper's redundancy-free machinery
depends on: which vertices changed between consecutive snapshots, the
dissimilarity rate ``Dis`` (paper §4.2, Eq. 14), and the L-hop *affected*
sets that bound how far a change propagates through an L-layer GNN.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

import numpy as np

from ..caching import LRUCache
from .snapshot import GraphSnapshot

__all__ = ["DynamicGraph", "DynamicGraphStats"]


@dataclass(frozen=True)
class DynamicGraphStats:
    """Aggregate statistics of a dynamic graph, used by the analytic models."""

    num_snapshots: int
    num_vertices: List[int]
    num_edges: List[int]
    feature_dim: int
    avg_vertices: float
    avg_edges: float
    avg_dissimilarity: float
    dissimilarity: List[float]

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"T={self.num_snapshots} V~{self.avg_vertices:.0f} "
            f"E~{self.avg_edges:.0f} F={self.feature_dim} "
            f"Dis~{self.avg_dissimilarity:.3f}"
        )


class DynamicGraph:
    """A sequence of :class:`GraphSnapshot` sharing one vertex id space.

    All snapshots must agree on ``feature_dim``.  Vertex counts may differ
    between snapshots (vertices may be added over time); vertex ids are
    stable, i.e. vertex ``v`` denotes the same entity in every snapshot that
    contains it.
    """

    #: default bound on the per-transition changed-vertex memo; snapshots
    #: are indexed ``0..T-1``, so this only bites for very long histories
    #: (e.g. graphs grown indefinitely by a streaming service)
    DEFAULT_CHANGED_CACHE_CAPACITY = 1024

    def __init__(
        self,
        snapshots: Sequence[GraphSnapshot],
        name: str = "dynamic-graph",
        changed_cache_capacity: Optional[int] = None,
    ):
        snapshots = list(snapshots)
        if not snapshots:
            raise ValueError("a dynamic graph needs at least one snapshot")
        feature_dims = {s.feature_dim for s in snapshots}
        if len(feature_dims) != 1:
            raise ValueError(f"snapshots disagree on feature_dim: {feature_dims}")
        self.snapshots: List[GraphSnapshot] = [
            GraphSnapshot(
                s.num_vertices, s.indptr, s.indices, s.feature_dim, t, s.features
            )
            for t, s in enumerate(snapshots)
        ]
        self.name = name
        if changed_cache_capacity is None:
            changed_cache_capacity = self.DEFAULT_CHANGED_CACHE_CAPACITY
        self._changed_cache: LRUCache = LRUCache(changed_cache_capacity)

    # ------------------------------------------------------------------
    # Basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.snapshots)

    def __getitem__(self, t: int) -> GraphSnapshot:
        return self.snapshots[t]

    def __iter__(self) -> Iterator[GraphSnapshot]:
        return iter(self.snapshots)

    @property
    def num_snapshots(self) -> int:
        """``T`` in the paper's notation."""
        return len(self.snapshots)

    @property
    def feature_dim(self) -> int:
        """Input feature width, constant across snapshots."""
        return self.snapshots[0].feature_dim

    @property
    def max_vertices(self) -> int:
        """Largest vertex count over all snapshots."""
        return max(s.num_vertices for s in self.snapshots)

    # ------------------------------------------------------------------
    # Change / similarity analysis
    # ------------------------------------------------------------------
    def changed_vertices(self, t: int) -> np.ndarray:
        """Vertices whose in-neighbour row differs between ``t-1`` and ``t``.

        For ``t == 0`` every vertex counts as changed (everything must be
        computed for the first snapshot).  A vertex also counts as changed
        when it exists in only one of the two snapshots, or when its input
        features changed (for feature-carrying graphs).
        """
        cached = self._changed_cache.get(t)
        if cached is not None:
            return cached
        if t == 0:
            result = np.arange(self.snapshots[0].num_vertices, dtype=np.int64)
            self._changed_cache.put(t, result)
            return result
        prev, cur = self.snapshots[t - 1], self.snapshots[t]
        common = min(prev.num_vertices, cur.num_vertices)
        prev_keys = prev.row_keys()[:common]
        cur_keys = cur.row_keys()[:common]
        changed_mask = prev_keys != cur_keys
        if prev.features is not None and cur.features is not None:
            feature_diff = np.any(
                prev.features[:common] != cur.features[:common], axis=1
            )
            changed_mask = changed_mask | feature_diff
        changed = np.flatnonzero(changed_mask).astype(np.int64)
        if cur.num_vertices > common:
            changed = np.concatenate(
                [changed, np.arange(common, cur.num_vertices, dtype=np.int64)]
            )
        self._changed_cache.put(t, changed)
        return changed

    def dissimilarity(self, t: int) -> float:
        """Fraction of snapshot ``t`` vertices changed since ``t-1`` (``Dis_t``)."""
        cur = self.snapshots[t]
        if cur.num_vertices == 0:
            return 0.0
        if t == 0:
            return 1.0
        return len(self.changed_vertices(t)) / cur.num_vertices

    def avg_dissimilarity(self) -> float:
        """Average ``Dis`` over snapshot transitions (excluding the first)."""
        if self.num_snapshots <= 1:
            return 0.0
        return float(
            np.mean([self.dissimilarity(t) for t in range(1, self.num_snapshots)])
        )

    def affected_vertices(self, t: int, layers: int) -> np.ndarray:
        """Vertices whose layer-``layers`` GNN output may change at ``t``.

        A changed vertex invalidates the outputs of every vertex within
        ``layers`` hops *downstream* of it (along out-edges), because an
        L-layer GNN reads the L-hop in-neighbourhood.
        """
        seeds = self.changed_vertices(t)
        return self.snapshots[t].k_hop_affected(seeds, layers)

    def affected_fraction(self, t: int, layers: int) -> float:
        """``len(affected_vertices) / V_t``."""
        cur = self.snapshots[t]
        if cur.num_vertices == 0:
            return 0.0
        return len(self.affected_vertices(t, layers)) / cur.num_vertices

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def stats(self) -> DynamicGraphStats:
        """Aggregate statistics consumed by the analytic cost models."""
        num_vertices = [s.num_vertices for s in self.snapshots]
        num_edges = [s.num_edges for s in self.snapshots]
        dis = [self.dissimilarity(t) for t in range(1, self.num_snapshots)]
        return DynamicGraphStats(
            num_snapshots=self.num_snapshots,
            num_vertices=num_vertices,
            num_edges=num_edges,
            feature_dim=self.feature_dim,
            avg_vertices=float(np.mean(num_vertices)),
            avg_edges=float(np.mean(num_edges)),
            avg_dissimilarity=float(np.mean(dis)) if dis else 0.0,
            dissimilarity=dis,
        )

    def subrange(self, start: int, stop: int) -> "DynamicGraph":
        """A new dynamic graph over snapshots ``start..stop-1``."""
        if not (0 <= start < stop <= self.num_snapshots):
            raise ValueError(f"invalid snapshot range [{start}, {stop})")
        return DynamicGraph(
            self.snapshots[start:stop], name=f"{self.name}[{start}:{stop}]"
        )

    def __repr__(self) -> str:
        return f"DynamicGraph({self.name!r}, T={self.num_snapshots})"
