"""Synthetic dynamic-graph generators.

Real-world dynamic graphs have two properties every model in the paper
depends on: (1) a skewed (power-law) degree distribution, which drives the
workload-balance problem (§5), and (2) strong temporal similarity — only
4.1%–13.3% of vertices change between consecutive snapshots (§7.7, citing
RACE) — which drives the redundancy-free machinery (§3.1, §4.2).

This module synthesizes discrete-time dynamic graphs with both properties
under explicit control: a configuration-model power-law snapshot generator
plus an evolution step that perturbs a target fraction of vertex rows.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .dynamic import DynamicGraph
from .snapshot import GraphSnapshot

__all__ = [
    "powerlaw_snapshot",
    "evolve_snapshot",
    "generate_dynamic_graph",
    "random_features",
]

_DEFAULT_SKEW = 1.0


def _vertex_weights(num_vertices: int, skew: float, rng: np.random.Generator) -> np.ndarray:
    """Zipf-like sampling weights, shuffled so hot vertices have random ids."""
    ranks = np.arange(1, num_vertices + 1, dtype=np.float64)
    weights = ranks ** (-skew)
    rng.shuffle(weights)
    return weights / weights.sum()


def _sample_edges(
    num_vertices: int,
    num_edges: int,
    weights: np.ndarray,
    rng: np.random.Generator,
    forbidden: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Sample ``num_edges`` distinct non-self-loop edge keys ``dst*N + src``.

    ``forbidden`` is an optional sorted key array the samples must avoid.
    Destination endpoints follow the skewed weight distribution (hub
    vertices accumulate in-degree); sources are drawn uniformly.
    """
    max_possible = num_vertices * (num_vertices - 1)
    if num_edges > max_possible:
        raise ValueError(
            f"cannot place {num_edges} distinct edges on {num_vertices} vertices"
        )
    collected = np.empty(0, dtype=np.int64)
    # Oversample to absorb duplicate/self-loop/forbidden rejections.
    while len(collected) < num_edges:
        need = num_edges - len(collected)
        batch = max(int(need * 1.5) + 16, 64)
        dst = rng.choice(num_vertices, size=batch, p=weights)
        src = rng.integers(0, num_vertices, size=batch)
        keys = dst.astype(np.int64) * num_vertices + src
        keys = keys[src != dst]
        keys = np.unique(keys)
        if forbidden is not None and len(forbidden):
            keys = keys[~np.isin(keys, forbidden, assume_unique=False)]
        keys = np.setdiff1d(keys, collected, assume_unique=True)
        collected = np.concatenate([collected, keys[:need]])
    return np.sort(collected)


def powerlaw_snapshot(
    num_vertices: int,
    num_edges: int,
    feature_dim: int = 1,
    skew: float = _DEFAULT_SKEW,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    with_features: bool = False,
) -> GraphSnapshot:
    """One static power-law snapshot with ``num_edges`` directed edges."""
    if num_vertices < 2 and num_edges > 0:
        raise ValueError("need at least 2 vertices to place edges")
    rng = rng if rng is not None else np.random.default_rng(seed)
    if num_vertices == 0:
        return GraphSnapshot.empty(0, feature_dim)
    weights = _vertex_weights(num_vertices, skew, rng)
    keys = (
        _sample_edges(num_vertices, num_edges, weights, rng)
        if num_edges
        else np.empty(0, dtype=np.int64)
    )
    src = keys % num_vertices
    dst = keys // num_vertices
    features = (
        random_features(num_vertices, feature_dim, rng=rng) if with_features else None
    )
    return GraphSnapshot.from_edge_arrays(
        num_vertices, src, dst, feature_dim=feature_dim, features=features
    )


def evolve_snapshot(
    snapshot: GraphSnapshot,
    dissimilarity: float,
    rng: np.random.Generator,
    skew: float = _DEFAULT_SKEW,
) -> GraphSnapshot:
    """Evolve ``snapshot`` so roughly ``dissimilarity * V`` vertex rows change.

    Half of the selected vertices lose one in-edge (when they have any) and
    the other half gain one, keeping the edge count roughly stable — the
    update mix the deletion-to-addition transform (Mega-Alg) exploits.
    Feature rows of selected vertices are re-drawn when features are present.
    """
    if not 0.0 <= dissimilarity <= 1.0:
        raise ValueError(f"dissimilarity must be in [0, 1], got {dissimilarity}")
    num_vertices = snapshot.num_vertices
    num_changed = int(round(dissimilarity * num_vertices))
    if num_changed == 0 or num_vertices < 2:
        return GraphSnapshot(
            num_vertices,
            snapshot.indptr,
            snapshot.indices,
            snapshot.feature_dim,
            snapshot.timestamp + 1,
            snapshot.features,
        )
    selected = rng.choice(num_vertices, size=num_changed, replace=False)
    degrees = snapshot.in_degree()
    half = num_changed // 2
    removers = selected[:half][degrees[selected[:half]] > 0]
    adders = np.setdiff1d(selected, removers, assume_unique=False)

    keep = np.ones(snapshot.num_edges, dtype=bool)
    if len(removers):
        offsets = (rng.random(len(removers)) * degrees[removers]).astype(np.int64)
        keep[snapshot.indptr[removers] + offsets] = False
    src, dst = snapshot.edge_arrays()
    keys = dst * num_vertices + src
    kept_keys = keys[keep]

    new_keys = np.empty(0, dtype=np.int64)
    if len(adders):
        weights = _vertex_weights(num_vertices, skew, rng)
        candidate_src = rng.choice(num_vertices, size=len(adders) * 4, p=weights)
        candidate_dst = np.repeat(adders, 4)
        cand = candidate_dst.astype(np.int64) * num_vertices + candidate_src
        cand = cand[candidate_src != candidate_dst]
        cand = np.unique(cand)
        cand = cand[~np.isin(cand, kept_keys)]
        # Keep at most one new in-edge per adder vertex.
        cand_dst = cand // num_vertices
        _, first = np.unique(cand_dst, return_index=True)
        new_keys = cand[first]

    all_keys = np.concatenate([kept_keys, new_keys])
    new_src = all_keys % num_vertices
    new_dst = all_keys // num_vertices
    features = snapshot.features
    if features is not None:
        features = features.copy()
        features[selected] = random_features(
            len(selected), snapshot.feature_dim, rng=rng
        )
    return GraphSnapshot.from_edge_arrays(
        num_vertices,
        new_src,
        new_dst,
        feature_dim=snapshot.feature_dim,
        timestamp=snapshot.timestamp + 1,
        features=features,
    )


def generate_dynamic_graph(
    num_vertices: int,
    num_edges: int,
    num_snapshots: int,
    dissimilarity: float = 0.1,
    feature_dim: int = 16,
    skew: float = _DEFAULT_SKEW,
    seed: Optional[int] = None,
    with_features: bool = False,
    name: str = "synthetic",
    dissimilarity_jitter: float = 0.25,
) -> DynamicGraph:
    """A full synthetic discrete-time dynamic graph.

    Parameters mirror the knobs of every analytic model in the paper:
    vertex/edge scale, snapshot count ``T``, target per-transition
    dissimilarity ``Dis``, and feature width.  Real update batches vary in
    size, so each transition draws its dissimilarity uniformly from
    ``Dis * [1 - jitter, 1 + jitter]`` — the per-snapshot variation behind
    the paper's Fig. 10 model-vs-actual gap.
    """
    if num_snapshots < 1:
        raise ValueError("num_snapshots must be >= 1")
    if not 0.0 <= dissimilarity_jitter < 1.0:
        raise ValueError("dissimilarity_jitter must be in [0, 1)")
    rng = np.random.default_rng(seed)
    first = powerlaw_snapshot(
        num_vertices,
        num_edges,
        feature_dim=feature_dim,
        skew=skew,
        rng=rng,
        with_features=with_features,
    )
    snapshots = [first]
    for _ in range(num_snapshots - 1):
        low = dissimilarity * (1.0 - dissimilarity_jitter)
        high = dissimilarity * (1.0 + dissimilarity_jitter)
        step_dis = min(float(rng.uniform(low, high)), 1.0)
        snapshots.append(evolve_snapshot(snapshots[-1], step_dis, rng, skew=skew))
    return DynamicGraph(snapshots, name=name)


def random_features(
    num_rows: int,
    feature_dim: int,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Standard-normal feature matrix, for numeric tests and examples."""
    rng = rng if rng is not None else np.random.default_rng(seed)
    return rng.standard_normal((num_rows, feature_dim))
