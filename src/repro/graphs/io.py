"""Graph persistence and edge-stream import.

Real dynamic-graph traces ship as timestamped edge lists; synthesized
graphs are worth caching once generated.  This module provides:

* `.npz` save/load of :class:`~repro.graphs.dynamic.DynamicGraph`
  (structure + optional features, all snapshots in one file);
* CSV edge-stream import into a
  :class:`~repro.graphs.continuous.ContinuousDynamicGraph`
  (``src,dst,time[,op]`` rows), the on-ramp for external datasets.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Union

import numpy as np

from .continuous import ContinuousDynamicGraph, EdgeEvent
from .dynamic import DynamicGraph
from .snapshot import GraphSnapshot

__all__ = ["save_dynamic_graph", "load_dynamic_graph", "load_edge_stream"]

PathLike = Union[str, Path]


def save_dynamic_graph(graph: DynamicGraph, path: PathLike) -> None:
    """Serialize ``graph`` to a compressed ``.npz`` archive."""
    arrays = {
        "num_snapshots": np.array([graph.num_snapshots]),
        "feature_dim": np.array([graph.feature_dim]),
        "name": np.array([graph.name]),
    }
    for t, snapshot in enumerate(graph):
        arrays[f"indptr_{t}"] = snapshot.indptr
        arrays[f"indices_{t}"] = snapshot.indices
        arrays[f"num_vertices_{t}"] = np.array([snapshot.num_vertices])
        if snapshot.features is not None:
            arrays[f"features_{t}"] = snapshot.features
    np.savez_compressed(path, **arrays)


def load_dynamic_graph(path: PathLike) -> DynamicGraph:
    """Load a :func:`save_dynamic_graph` archive."""
    with np.load(path, allow_pickle=False) as data:
        num_snapshots = int(data["num_snapshots"][0])
        feature_dim = int(data["feature_dim"][0])
        name = str(data["name"][0])
        snapshots = []
        for t in range(num_snapshots):
            features = data[f"features_{t}"] if f"features_{t}" in data else None
            snapshots.append(
                GraphSnapshot(
                    num_vertices=int(data[f"num_vertices_{t}"][0]),
                    indptr=data[f"indptr_{t}"],
                    indices=data[f"indices_{t}"],
                    feature_dim=feature_dim,
                    timestamp=t,
                    features=features,
                )
            )
    return DynamicGraph(snapshots, name=name)


def load_edge_stream(
    path: PathLike,
    num_vertices: int = 0,
    name: str = "edge-stream",
    delimiter: str = ",",
    has_header: bool = True,
) -> ContinuousDynamicGraph:
    """Import a CSV edge stream as a continuous-time dynamic graph.

    Expected columns: ``src, dst, time`` with an optional fourth ``op``
    column holding ``add`` or ``remove`` (default ``add``).  ``num_vertices``
    may be left 0 to infer the id space from the stream.
    """
    events = []
    with open(path, newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        for row_number, row in enumerate(reader):
            if has_header and row_number == 0:
                continue
            if not row or row[0].startswith("#"):
                continue
            if len(row) < 3:
                raise ValueError(
                    f"{path}: row {row_number + 1} needs src,dst,time"
                )
            kind = row[3].strip().lower() if len(row) > 3 else "add"
            events.append(
                EdgeEvent(
                    time=float(row[2]),
                    src=int(row[0]),
                    dst=int(row[1]),
                    kind=kind,
                )
            )
    initial = GraphSnapshot.empty(num_vertices)
    return ContinuousDynamicGraph(initial, events, name=name)
