"""Graph-structure metrics used to characterize synthesized workloads.

The analytic models depend on structural properties — degree skew,
density, temporal overlap — so these estimators let tests and experiments
verify that synthesized graphs actually exhibit them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .dynamic import DynamicGraph
from .snapshot import GraphSnapshot

__all__ = ["StructureMetrics", "snapshot_metrics", "hill_tail_exponent",
           "temporal_overlap"]


@dataclass(frozen=True)
class StructureMetrics:
    """Summary structure statistics of one snapshot."""

    num_vertices: int
    num_edges: int
    avg_in_degree: float
    max_in_degree: int
    degree_cv: float  # coefficient of variation (skew proxy)
    tail_exponent: float  # Hill estimator over the top decile
    isolated_fraction: float


def hill_tail_exponent(degrees: np.ndarray, tail_fraction: float = 0.1) -> float:
    """Hill estimator of the degree-distribution tail exponent.

    Returns the estimated power-law alpha of the upper ``tail_fraction``
    of the (positive) degree distribution; ``inf`` when the tail is too
    small to estimate.
    """
    if not 0 < tail_fraction <= 1:
        raise ValueError("tail_fraction must be in (0, 1]")
    positive = np.sort(degrees[degrees > 0])[::-1]
    k = max(int(len(positive) * tail_fraction), 2)
    if len(positive) < k + 1:
        return float("inf")
    tail = positive[:k].astype(np.float64)
    reference = float(positive[k])
    if reference <= 0:
        return float("inf")
    logs = np.log(tail / reference)
    mean_log = logs.mean()
    if mean_log <= 0:
        return float("inf")
    return 1.0 + 1.0 / mean_log


def snapshot_metrics(snapshot: GraphSnapshot) -> StructureMetrics:
    """Structure statistics of one snapshot."""
    degrees = snapshot.in_degree()
    mean = degrees.mean() if snapshot.num_vertices else 0.0
    std = degrees.std() if snapshot.num_vertices else 0.0
    return StructureMetrics(
        num_vertices=snapshot.num_vertices,
        num_edges=snapshot.num_edges,
        avg_in_degree=float(mean),
        max_in_degree=int(degrees.max()) if len(degrees) else 0,
        degree_cv=float(std / mean) if mean > 0 else 0.0,
        tail_exponent=hill_tail_exponent(degrees),
        isolated_fraction=(
            float(np.mean((degrees == 0) & (snapshot.out_degree() == 0)))
            if snapshot.num_vertices
            else 0.0
        ),
    )


def temporal_overlap(graph: DynamicGraph, t: int) -> float:
    """Edge-set Jaccard overlap between snapshots ``t-1`` and ``t``.

    The §3.1 temporal-similarity property: real dynamic graphs keep
    86.7%-95.9% of vertices unchanged; at the edge level this shows up as
    a high Jaccard index between consecutive snapshots.
    """
    if t <= 0 or t >= graph.num_snapshots:
        raise ValueError("t must index a transition (1 <= t < T)")
    previous = graph[t - 1].edge_set()
    current = graph[t].edge_set()
    union = previous | current
    if not union:
        return 1.0
    return len(previous & current) / len(union)
