"""Vertex- and snapshot-partitioning utilities.

The coarse-grained strategies the paper contrasts against (§1, §3.1):

* *snapshot partitioning* (temporal parallelism; ReaDy/DGNN-Booster/RACE
  style) — each tile owns whole snapshots;
* *vertex partitioning* (spatial parallelism; MEGA/AliGraph style) — each
  tile owns a contiguous vertex range of every snapshot.

These serve both as baseline placements and as the degenerate points of the
paper's `Ps`/`Pv` search space.  The balance-aware placement of Algorithm 2
lives in :mod:`repro.core.balance`; here we only provide the mechanical
partitioners plus cut-size accounting used by the communication models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from .snapshot import GraphSnapshot

__all__ = [
    "VertexPartition",
    "contiguous_vertex_partition",
    "round_robin_partition",
    "bfs_partition",
    "hash_vertex_partition",
    "jump_consistent_hash",
    "shard_subgraph",
    "snapshot_assignment",
    "edge_cut",
    "partition_loads",
]


@dataclass(frozen=True)
class VertexPartition:
    """An assignment of vertex ids to ``num_parts`` parts.

    ``assignment[v]`` is the part owning vertex ``v``.
    """

    num_parts: int
    assignment: np.ndarray

    def __post_init__(self) -> None:
        if self.num_parts <= 0:
            raise ValueError("num_parts must be positive")
        if len(self.assignment) and (
            self.assignment.min() < 0 or self.assignment.max() >= self.num_parts
        ):
            raise ValueError("assignment references parts out of range")

    @property
    def num_vertices(self) -> int:
        """Number of vertices covered by the partition."""
        return len(self.assignment)

    def members(self, part: int) -> np.ndarray:
        """Vertex ids owned by ``part``."""
        return np.flatnonzero(self.assignment == part)

    def sizes(self) -> np.ndarray:
        """Vertex count per part."""
        return np.bincount(self.assignment, minlength=self.num_parts)

    def empty_parts(self) -> np.ndarray:
        """Parts owning no vertices (possible whenever parts > vertices).

        Every partitioner here must tolerate — and every consumer must
        accept — empty parts, because the sharded serving layer partitions
        arbitrary vertex spaces over an operator-chosen shard count.
        """
        return np.flatnonzero(self.sizes() == 0)


def contiguous_vertex_partition(num_vertices: int, num_parts: int) -> VertexPartition:
    """Split ``0..V-1`` into ``num_parts`` contiguous, near-equal ranges.

    This is the "natural order" split of BNS-GCN/Graph Ladling the paper
    criticizes (§1): vertex counts are even but workloads are not.
    """
    if num_parts <= 0:
        raise ValueError("num_parts must be positive")
    if num_parts >= num_vertices:
        # One vertex per leading part; trailing parts are (validly) empty.
        # The linspace bounds below would scatter the occupied parts over
        # the range instead, which breaks the "ranges in part order"
        # contract consumers rely on for deterministic tie-breaking.
        assignment = np.arange(num_vertices, dtype=np.int64)
        return VertexPartition(num_parts, assignment)
    bounds = np.linspace(0, num_vertices, num_parts + 1).astype(np.int64)
    assignment = np.zeros(num_vertices, dtype=np.int64)
    for part in range(num_parts):
        assignment[bounds[part] : bounds[part + 1]] = part
    return VertexPartition(num_parts, assignment)


def round_robin_partition(
    order: np.ndarray, num_parts: int, num_vertices: int
) -> VertexPartition:
    """Deal vertices to parts in serpentine round-robin following ``order``.

    With ``order`` sorted by descending workload this is the placement step
    of the paper's Algorithm 2 (line 10).  The deal direction alternates
    each round (0..k-1 then k-1..0) — the standard balanced round-robin
    variant; a one-directional deal hands every round's heaviest item to
    part 0, which systematically overloads it on skewed workloads.
    """
    order = np.asarray(order, dtype=np.int64)
    if len(np.unique(order)) != num_vertices or len(order) != num_vertices:
        raise ValueError("order must be a permutation of 0..num_vertices-1")
    ranks = np.arange(num_vertices, dtype=np.int64)
    rounds, position = np.divmod(ranks, num_parts)
    parts = np.where(rounds % 2 == 0, position, num_parts - 1 - position)
    assignment = np.empty(num_vertices, dtype=np.int64)
    assignment[order] = parts
    return VertexPartition(num_parts, assignment)


def bfs_partition(snapshot: GraphSnapshot, num_parts: int) -> VertexPartition:
    """Locality-aware partition: grow parts by BFS over undirected adjacency.

    A METIS-style lightweight heuristic: parts are grown breadth-first to a
    size cap, so neighbours tend to land together and the edge cut drops
    relative to the natural-order split.  Trades the workload balance of
    Algorithm 2 for communication locality — useful as a comparison point
    for the spatial-communication models.
    """
    if num_parts <= 0:
        raise ValueError("num_parts must be positive")
    n = snapshot.num_vertices
    cap = -(-n // num_parts)
    # Undirected adjacency for growth.
    src, dst = snapshot.edge_arrays()
    all_src = np.concatenate([src, dst])
    all_dst = np.concatenate([dst, src])
    order = np.argsort(all_dst, kind="stable")
    sorted_src = all_src[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(all_dst, minlength=n), out=indptr[1:])

    assignment = np.full(n, -1, dtype=np.int64)
    part = 0
    filled = 0
    from collections import deque

    queue: deque = deque()
    for seed in range(n):
        if assignment[seed] != -1:
            continue
        queue.append(seed)
        while queue:
            v = queue.popleft()
            if assignment[v] != -1:
                continue
            if filled >= cap and part < num_parts - 1:
                part += 1
                filled = 0
            assignment[v] = part
            filled += 1
            for u in sorted_src[indptr[v] : indptr[v + 1]]:
                if assignment[u] == -1:
                    queue.append(int(u))
    return VertexPartition(num_parts, assignment)


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer: a cheap, well-mixed 64-bit integer hash.

    Applied to vertex ids before jump hashing so that the near-sequential
    id spaces real graphs use do not land in correlated buckets.
    """
    x = (x + np.uint64(0x9E3779B97F4A7C15)).astype(np.uint64)
    x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return x ^ (x >> np.uint64(31))


def jump_consistent_hash(keys: np.ndarray, num_buckets: int) -> np.ndarray:
    """Vectorized jump consistent hash (Lamping & Veach, 2014).

    Maps each 64-bit ``key`` to a bucket in ``[0, num_buckets)`` such that
    growing ``num_buckets`` from ``k`` to ``k + 1`` remaps only an expected
    ``1 / (k + 1)`` fraction of keys — and every remapped key moves to the
    *new* bucket ``k``.  That minimal-movement property is what makes the
    sharded serving layer's vertex routing "consistent": resharding moves
    only the vertices the new shard takes over.
    """
    if num_buckets <= 0:
        raise ValueError(f"num_buckets must be positive, got {num_buckets}")
    keys = np.asarray(keys).astype(np.uint64, copy=True)
    n = len(keys)
    bucket = np.zeros(n, dtype=np.int64)
    candidate = np.zeros(n, dtype=np.int64)
    active = candidate < num_buckets
    while np.any(active):
        bucket[active] = candidate[active]
        keys[active] = keys[active] * np.uint64(2862933555777941757) + np.uint64(1)
        draw = ((keys[active] >> np.uint64(33)) + np.uint64(1)).astype(np.float64)
        candidate[active] = (
            (bucket[active] + 1).astype(np.float64) * float(1 << 31) / draw
        ).astype(np.int64)
        active = candidate < num_buckets
    return bucket


def hash_vertex_partition(
    num_vertices: int, num_parts: int, seed: int = 0
) -> VertexPartition:
    """Consistent-hash partition: vertex -> part by seeded jump hash.

    The sharded serving layer's router (``repro.dist``): assignment is a
    pure function of ``(vertex id, seed, num_parts)``, so every process —
    router, shard workers, coordinator — derives the identical mapping
    with no coordination, and ties are broken deterministically by the
    hash itself (no insertion-order or hash-seed dependence).  Empty parts
    are legal whenever ``num_parts > num_vertices``.
    """
    if num_parts <= 0:
        raise ValueError("num_parts must be positive")
    if num_vertices < 0:
        raise ValueError(f"num_vertices must be >= 0, got {num_vertices}")
    ids = np.arange(num_vertices, dtype=np.uint64)
    salted = ids ^ _splitmix64(np.full(num_vertices, seed, dtype=np.uint64))
    assignment = jump_consistent_hash(_splitmix64(salted), num_parts)
    return VertexPartition(num_parts, assignment)


def shard_subgraph(
    snapshot: GraphSnapshot, partition: VertexPartition, part: int
) -> GraphSnapshot:
    """The edges of ``snapshot`` owned by ``part`` (ownership = dst vertex).

    Routing by destination keeps every edge's lifecycle (add, churn,
    remove) on a single shard, so per-shard net deltas compose into the
    exact global delta.  The returned snapshot keeps the *global* vertex
    id space: shard subgraphs from all parts are disjoint and their union
    is ``snapshot`` itself (the coordinator's merge invariant).
    """
    if partition.num_vertices < snapshot.num_vertices:
        raise ValueError("partition does not cover all snapshot vertices")
    if not 0 <= part < partition.num_parts:
        raise ValueError(f"part {part} out of range [0, {partition.num_parts})")
    src, dst = snapshot.edge_arrays()
    owned = partition.assignment[dst] == part
    return GraphSnapshot.from_edge_arrays(
        snapshot.num_vertices,
        src[owned],
        dst[owned],
        feature_dim=snapshot.feature_dim,
        timestamp=snapshot.timestamp,
    )


def snapshot_assignment(num_snapshots: int, num_groups: int) -> List[np.ndarray]:
    """Assign snapshot indices to ``num_groups`` consecutive groups.

    Consecutive snapshots stay together so temporal (RNN) dependencies cross
    group boundaries only ``num_groups - 1`` times — the assumption behind
    the paper's temporal communication model (Eq. 8).
    """
    if num_groups <= 0:
        raise ValueError("num_groups must be positive")
    bounds = np.linspace(0, num_snapshots, num_groups + 1).astype(np.int64)
    return [
        np.arange(bounds[g], bounds[g + 1], dtype=np.int64)
        for g in range(num_groups)
    ]


def edge_cut(snapshot: GraphSnapshot, partition: VertexPartition) -> int:
    """Number of edges whose endpoints live in different parts.

    Each cut edge forces one inter-tile spatial-communication transfer per
    GNN layer (§4.2.2).
    """
    if partition.num_vertices < snapshot.num_vertices:
        raise ValueError("partition does not cover all snapshot vertices")
    src, dst = snapshot.edge_arrays()
    return int(np.sum(partition.assignment[src] != partition.assignment[dst]))


def partition_loads(loads: np.ndarray, partition: VertexPartition) -> np.ndarray:
    """Sum a per-vertex ``loads`` vector within each part."""
    loads = np.asarray(loads, dtype=np.float64)
    if len(loads) != partition.num_vertices:
        raise ValueError("loads length must equal partition.num_vertices")
    return np.bincount(
        partition.assignment, weights=loads, minlength=partition.num_parts
    )
