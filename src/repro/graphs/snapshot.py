"""Static graph snapshot representation.

A :class:`GraphSnapshot` is one frame of a discrete-time dynamic graph
(paper Eq. 1).  It stores the directed adjacency structure in CSR form over
*in*-neighbours, because GNN aggregation (paper Eq. 3) pulls features from
the in-neighbourhood of each destination vertex.  Undirected graphs are
represented by storing both edge directions.

The snapshot is immutable after construction; evolution between snapshots is
expressed by building a new snapshot (see :mod:`repro.graphs.generators` and
:mod:`repro.graphs.delta`).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Tuple

import numpy as np

__all__ = ["GraphSnapshot"]


class GraphSnapshot:
    """One snapshot ``G^t`` of a discrete-time dynamic graph.

    Parameters
    ----------
    num_vertices:
        Number of vertices ``V_t``.  Vertex ids are ``0..num_vertices-1``.
    indptr, indices:
        CSR arrays over *in*-neighbours: the in-neighbours of vertex ``v``
        are ``indices[indptr[v]:indptr[v + 1]]``.  ``indices`` must be sorted
        within each row and free of duplicates (validated).
    feature_dim:
        Width of the per-vertex input feature vectors.
    timestamp:
        Index ``t`` of this snapshot within its dynamic graph.
    features:
        Optional dense ``(num_vertices, feature_dim)`` feature matrix.  The
        analytic models never need it; the numeric DGNN models do.
    """

    __slots__ = (
        "num_vertices",
        "indptr",
        "indices",
        "feature_dim",
        "timestamp",
        "_features",
        "_out_degree",
    )

    def __init__(
        self,
        num_vertices: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        feature_dim: int = 1,
        timestamp: int = 0,
        features: Optional[np.ndarray] = None,
    ) -> None:
        if num_vertices < 0:
            raise ValueError(f"num_vertices must be >= 0, got {num_vertices}")
        if feature_dim <= 0:
            raise ValueError(f"feature_dim must be positive, got {feature_dim}")
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        if indptr.shape != (num_vertices + 1,):
            raise ValueError(
                f"indptr must have shape ({num_vertices + 1},), got {indptr.shape}"
            )
        if indptr[0] != 0 or indptr[-1] != len(indices):
            raise ValueError("indptr must start at 0 and end at len(indices)")
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if len(indices) and (indices.min() < 0 or indices.max() >= num_vertices):
            raise ValueError("indices contains out-of-range vertex ids")
        self.num_vertices = int(num_vertices)
        self.indptr = indptr
        self.indices = indices
        self.feature_dim = int(feature_dim)
        self.timestamp = int(timestamp)
        if features is not None:
            features = np.asarray(features, dtype=np.float64)
            if features.shape != (num_vertices, feature_dim):
                raise ValueError(
                    "features must have shape "
                    f"({num_vertices}, {feature_dim}), got {features.shape}"
                )
        self._features = features
        self._out_degree: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        num_vertices: int,
        edges: Iterable[Tuple[int, int]],
        feature_dim: int = 1,
        timestamp: int = 0,
        features: Optional[np.ndarray] = None,
        undirected: bool = False,
    ) -> "GraphSnapshot":
        """Build a snapshot from ``(src, dst)`` edge pairs.

        Duplicate edges are collapsed.  With ``undirected=True`` the reverse
        of every edge is inserted as well.
        """
        edge_list = list(edges)
        if undirected:
            edge_list = edge_list + [(d, s) for (s, d) in edge_list]
        if edge_list:
            arr = np.asarray(edge_list, dtype=np.int64)
            if arr.ndim != 2 or arr.shape[1] != 2:
                raise ValueError("edges must be (src, dst) pairs")
            src, dst = arr[:, 0], arr[:, 1]
        else:
            src = dst = np.empty(0, dtype=np.int64)
        return cls.from_edge_arrays(
            num_vertices, src, dst, feature_dim, timestamp, features
        )

    @classmethod
    def from_edge_arrays(
        cls,
        num_vertices: int,
        src: np.ndarray,
        dst: np.ndarray,
        feature_dim: int = 1,
        timestamp: int = 0,
        features: Optional[np.ndarray] = None,
    ) -> "GraphSnapshot":
        """Build a snapshot from parallel ``src``/``dst`` arrays (deduplicated)."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape:
            raise ValueError("src and dst must have the same shape")
        if len(src):
            if src.min() < 0 or src.max() >= num_vertices:
                raise ValueError("src contains out-of-range vertex ids")
            if dst.min() < 0 or dst.max() >= num_vertices:
                raise ValueError("dst contains out-of-range vertex ids")
            # Deduplicate on the (dst, src) key so rows come out sorted.
            key = dst * num_vertices + src
            key = np.unique(key)
            dst = key // num_vertices
            src = key % num_vertices
        counts = np.bincount(dst, minlength=num_vertices)
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(num_vertices, indptr, src, feature_dim, timestamp, features)

    @classmethod
    def empty(
        cls, num_vertices: int, feature_dim: int = 1, timestamp: int = 0
    ) -> "GraphSnapshot":
        """A snapshot with no edges."""
        return cls(
            num_vertices,
            np.zeros(num_vertices + 1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            feature_dim,
            timestamp,
        )

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of directed edges (CSR nnz)."""
        return int(len(self.indices))

    @property
    def features(self) -> Optional[np.ndarray]:
        """The dense feature matrix, or ``None`` for structure-only snapshots."""
        return self._features

    def with_features(self, features: np.ndarray) -> "GraphSnapshot":
        """Return a copy of this snapshot carrying ``features``."""
        return GraphSnapshot(
            self.num_vertices,
            self.indptr,
            self.indices,
            self.feature_dim,
            self.timestamp,
            features,
        )

    def in_degree(self, vertex: Optional[int] = None) -> np.ndarray:
        """In-degree of one vertex or of all vertices."""
        degrees = np.diff(self.indptr)
        if vertex is None:
            return degrees
        return degrees[vertex]

    def out_degree(self, vertex: Optional[int] = None) -> np.ndarray:
        """Out-degree of one vertex or of all vertices (computed lazily)."""
        if self._out_degree is None:
            self._out_degree = np.bincount(
                self.indices, minlength=self.num_vertices
            ).astype(np.int64)
        if vertex is None:
            return self._out_degree
        return self._out_degree[vertex]

    def in_neighbors(self, vertex: int) -> np.ndarray:
        """Sorted array of in-neighbours of ``vertex``."""
        return self.indices[self.indptr[vertex] : self.indptr[vertex + 1]]

    def has_edge(self, src: int, dst: int) -> bool:
        """Whether the directed edge ``src -> dst`` exists."""
        row = self.in_neighbors(dst)
        pos = np.searchsorted(row, src)
        return bool(pos < len(row) and row[pos] == src)

    def edge_set(self) -> set:
        """All directed edges as a set of ``(src, dst)`` tuples."""
        dst = np.repeat(np.arange(self.num_vertices), np.diff(self.indptr))
        return set(zip(self.indices.tolist(), dst.tolist()))

    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """All directed edges as parallel ``(src, dst)`` arrays."""
        dst = np.repeat(np.arange(self.num_vertices), np.diff(self.indptr))
        return self.indices.copy(), dst

    def iter_edges(self) -> Iterator[Tuple[int, int]]:
        """Yield ``(src, dst)`` pairs in CSR order."""
        for dst in range(self.num_vertices):
            for src in self.in_neighbors(dst):
                yield int(src), dst

    def row_keys(self) -> np.ndarray:
        """Per-vertex hash of the in-neighbour row, for fast row comparison."""
        keys = np.zeros(self.num_vertices, dtype=np.uint64)
        if self.num_edges == 0:
            return keys
        # A simple order-dependent polynomial hash; rows are sorted so the
        # hash identifies the row as a set.
        mixed = (self.indices.astype(np.uint64) + np.uint64(0x9E3779B97F4A7C15)) * np.uint64(
            0xBF58476D1CE4E5B9
        )
        np.add.at(keys, np.repeat(np.arange(self.num_vertices), np.diff(self.indptr)), mixed)
        degrees = np.diff(self.indptr).astype(np.uint64)
        return keys ^ (degrees * np.uint64(0x94D049BB133111EB))

    # ------------------------------------------------------------------
    # Neighbourhood expansion
    # ------------------------------------------------------------------
    def expand_frontier(self, vertices: np.ndarray) -> np.ndarray:
        """Vertices whose in-neighbourhood intersects ``vertices``.

        In other words: the set of destinations reachable in one hop along
        *out*-edges from ``vertices``.  Used to propagate "changed" sets
        through GNN layers (a vertex's layer-``l`` output depends on its
        ``l``-hop in-neighbourhood).
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        if len(vertices) == 0:
            return np.empty(0, dtype=np.int64)
        member = np.zeros(self.num_vertices, dtype=bool)
        member[vertices] = True
        hit = member[self.indices]
        dst = np.repeat(np.arange(self.num_vertices), np.diff(self.indptr))
        return np.unique(dst[hit])

    def k_hop_affected(self, seeds: np.ndarray, hops: int) -> np.ndarray:
        """Union of ``seeds`` with every vertex within ``hops`` out-steps."""
        affected = np.unique(np.asarray(seeds, dtype=np.int64))
        frontier = affected
        for _ in range(hops):
            frontier = self.expand_frontier(frontier)
            new = np.setdiff1d(frontier, affected, assume_unique=False)
            if len(new) == 0:
                break
            affected = np.union1d(affected, new)
        return affected

    # ------------------------------------------------------------------
    # Linear-algebra helpers for the numeric models
    # ------------------------------------------------------------------
    def normalized_adjacency(self, add_self_loops: bool = True) -> np.ndarray:
        """Dense symmetric-normalized adjacency ``D^-1/2 (A + I) D^-1/2``.

        Only intended for the small graphs used in numeric tests and
        examples; the analytic models never materialize the matrix.
        """
        a = np.zeros((self.num_vertices, self.num_vertices), dtype=np.float64)
        src, dst = self.edge_arrays()
        a[dst, src] = 1.0
        if add_self_loops:
            np.fill_diagonal(a, 1.0)
        degree = a.sum(axis=1)
        inv_sqrt = np.where(degree > 0, 1.0 / np.sqrt(np.maximum(degree, 1e-12)), 0.0)
        return (a * inv_sqrt[:, None]) * inv_sqrt[None, :]

    def aggregate(self, x: np.ndarray, add_self_loops: bool = True) -> np.ndarray:
        """Sparse aggregation ``\\hat{A} x`` without materializing ``\\hat{A}``."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape[0] != self.num_vertices:
            raise ValueError("feature row count must equal num_vertices")
        degree = self.in_degree().astype(np.float64)
        if add_self_loops:
            degree = degree + 1.0
        inv_sqrt = np.where(degree > 0, 1.0 / np.sqrt(np.maximum(degree, 1e-12)), 0.0)
        scaled = x * inv_sqrt[:, None]
        out = np.zeros_like(scaled)
        dst = np.repeat(np.arange(self.num_vertices), np.diff(self.indptr))
        np.add.at(out, dst, scaled[self.indices])
        if add_self_loops:
            out += scaled
        return out * inv_sqrt[:, None]

    # ------------------------------------------------------------------
    # Dunder / misc
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GraphSnapshot):
            return NotImplemented
        return (
            self.num_vertices == other.num_vertices
            and self.feature_dim == other.feature_dim
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
        )

    def __hash__(self) -> int:  # snapshots are used as dict keys in caches
        return hash((self.num_vertices, self.num_edges, self.timestamp))

    def __repr__(self) -> str:
        return (
            f"GraphSnapshot(t={self.timestamp}, V={self.num_vertices}, "
            f"E={self.num_edges}, F={self.feature_dim})"
        )
