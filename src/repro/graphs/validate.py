"""Structural validation of graphs and dynamic graphs.

Deep invariant checks for data imported from external sources (edge
streams, .npz archives) or produced by custom generators: CSR consistency,
sorted duplicate-free rows, id-space bounds, feature alignment, and
cross-snapshot sanity.  Raises :class:`GraphValidationError` with the full
list of violations rather than stopping at the first.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .dynamic import DynamicGraph
from .snapshot import GraphSnapshot

__all__ = ["GraphValidationError", "validate_snapshot", "validate_dynamic_graph"]


class GraphValidationError(ValueError):
    """Raised with every violated invariant listed in ``problems``."""

    def __init__(self, problems: List[str]):
        self.problems = problems
        super().__init__("; ".join(problems))


def _snapshot_problems(snapshot: GraphSnapshot, label: str = "snapshot") -> List[str]:
    problems = []
    indptr, indices = snapshot.indptr, snapshot.indices
    n = snapshot.num_vertices
    if indptr.shape != (n + 1,):
        problems.append(f"{label}: indptr shape {indptr.shape} != ({n + 1},)")
        return problems  # everything else would be misleading
    if indptr[0] != 0:
        problems.append(f"{label}: indptr[0] = {indptr[0]} != 0")
    if indptr[-1] != len(indices):
        problems.append(
            f"{label}: indptr[-1] = {indptr[-1]} != nnz {len(indices)}"
        )
    if np.any(np.diff(indptr) < 0):
        problems.append(f"{label}: indptr not monotone")
    if len(indices):
        if indices.min() < 0 or indices.max() >= n:
            problems.append(f"{label}: neighbour ids out of [0, {n})")
        for v in range(n):
            row = indices[indptr[v] : indptr[v + 1]]
            if len(row) > 1 and np.any(np.diff(row) <= 0):
                problems.append(
                    f"{label}: row {v} not strictly sorted (duplicates?)"
                )
                break
    features = snapshot.features
    if features is not None:
        if features.shape != (n, snapshot.feature_dim):
            problems.append(
                f"{label}: features shape {features.shape} != "
                f"({n}, {snapshot.feature_dim})"
            )
        elif not np.all(np.isfinite(features)):
            problems.append(f"{label}: features contain NaN/inf")
    return problems


def validate_snapshot(snapshot: GraphSnapshot) -> None:
    """Check every snapshot invariant; raise on any violation."""
    problems = _snapshot_problems(snapshot)
    if problems:
        raise GraphValidationError(problems)


def validate_dynamic_graph(graph: DynamicGraph) -> None:
    """Check every snapshot plus cross-snapshot invariants."""
    problems = []
    for t, snapshot in enumerate(graph):
        problems.extend(_snapshot_problems(snapshot, label=f"snapshot {t}"))
        if snapshot.feature_dim != graph.feature_dim:
            problems.append(
                f"snapshot {t}: feature_dim {snapshot.feature_dim} != "
                f"graph feature_dim {graph.feature_dim}"
            )
        if snapshot.timestamp != t:
            problems.append(
                f"snapshot {t}: timestamp {snapshot.timestamp} != index {t}"
            )
    if problems:
        raise GraphValidationError(problems)
