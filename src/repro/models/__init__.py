"""Numeric DGNN models: GCN kernel, RNN kernels, combined model, incremental engine."""

from .gcn import GCNLayer, GCNModel, relu
from .aggregate import gather_rows, mean_rows, normalized_rows, sum_rows
from .variants import GINLayer, SAGELayer, create_gin_model, create_sage_model
from .rnn import GRUCell, LSTMCell, RNNState, sigmoid
from .dgnn import DGNNModel, DGNNOutputs
from .evolvegcn import EvolveGCNModel, EvolveGCNOutputs
from .incremental import IncrementalDGNN, IncrementalStats
from .workload import (
    KernelOps,
    dynamic_vertex_workload,
    gcn_ops,
    gcn_ops_subset,
    label_aggregation,
    rnn_ops,
    vertex_workload,
)

__all__ = [
    "GCNLayer",
    "GCNModel",
    "relu",
    "gather_rows",
    "normalized_rows",
    "mean_rows",
    "sum_rows",
    "SAGELayer",
    "GINLayer",
    "create_sage_model",
    "create_gin_model",
    "LSTMCell",
    "GRUCell",
    "RNNState",
    "sigmoid",
    "DGNNModel",
    "DGNNOutputs",
    "EvolveGCNModel",
    "EvolveGCNOutputs",
    "IncrementalDGNN",
    "IncrementalStats",
    "KernelOps",
    "gcn_ops",
    "gcn_ops_subset",
    "rnn_ops",
    "label_aggregation",
    "vertex_workload",
    "dynamic_vertex_workload",
]
