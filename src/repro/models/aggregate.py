"""Row-subset aggregation primitives shared by the GNN layer variants.

Each helper computes the aggregation phase for a *subset* of destination
rows — the operation the redundancy-free incremental engine performs when
only some rows are invalidated.  Passing all rows reproduces the full
aggregation (property-tested).
"""

from __future__ import annotations

import numpy as np

from ..graphs.snapshot import GraphSnapshot

__all__ = ["gather_rows", "normalized_rows", "mean_rows", "sum_rows"]


def gather_rows(snapshot: GraphSnapshot, rows: np.ndarray):
    """CSR gather for ``rows``: (concatenated neighbour ids, segment ids, lengths)."""
    rows = np.asarray(rows, dtype=np.int64)
    starts = snapshot.indptr[rows]
    stops = snapshot.indptr[rows + 1]
    lengths = stops - starts
    if lengths.sum() == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), lengths
    gathered = np.concatenate(
        [snapshot.indices[a:b] for a, b in zip(starts, stops)]
    )
    segments = np.repeat(np.arange(len(rows)), lengths)
    return gathered, segments, lengths


def normalized_rows(
    snapshot: GraphSnapshot, x: np.ndarray, rows: np.ndarray
) -> np.ndarray:
    """GCN aggregation ``(D^-1/2 (A+I) D^-1/2 x)[rows]`` (paper Eq. 3)."""
    rows = np.asarray(rows, dtype=np.int64)
    degree = snapshot.in_degree().astype(np.float64) + 1.0  # self loops
    inv_sqrt = 1.0 / np.sqrt(degree)
    scaled = x * inv_sqrt[:, None]
    out = scaled[rows].copy()  # self-loop contribution
    gathered, segments, lengths = gather_rows(snapshot, rows)
    if len(gathered):
        np.add.at(out, segments, scaled[gathered])
    return out * inv_sqrt[rows, None]


def mean_rows(snapshot: GraphSnapshot, x: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """GraphSAGE mean aggregation over in-neighbours (self excluded).

    Rows with no in-neighbours aggregate to zero.
    """
    rows = np.asarray(rows, dtype=np.int64)
    out = np.zeros((len(rows), x.shape[1]))
    gathered, segments, lengths = gather_rows(snapshot, rows)
    if len(gathered):
        np.add.at(out, segments, x[gathered])
    divisor = np.maximum(lengths, 1).astype(np.float64)
    return out / divisor[:, None]


def sum_rows(snapshot: GraphSnapshot, x: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """GIN sum aggregation over in-neighbours (self handled by epsilon)."""
    rows = np.asarray(rows, dtype=np.int64)
    out = np.zeros((len(rows), x.shape[1]))
    gathered, segments, _ = gather_rows(snapshot, rows)
    if len(gathered):
        np.add.at(out, segments, x[gathered])
    return out
