"""The combined DGNN model (paper Eq. 2): ``z^t = GNN(G^t)``, ``h^t = RNN(h^{t-1}, z^t)``.

This is the numeric reference implementation — a full recompute of every
snapshot.  The redundancy-free engine in :mod:`repro.models.incremental`
must produce bit-identical embeddings to this model; that equivalence is the
core correctness property of the reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from ..graphs.dynamic import DynamicGraph
from .gcn import GCNModel
from .rnn import GRUCell, LSTMCell, RNNState

__all__ = ["DGNNModel", "DGNNOutputs"]

RNNCell = Union[LSTMCell, GRUCell]


@dataclass
class DGNNOutputs:
    """Per-snapshot outputs of a DGNN run.

    ``embeddings[t]`` is ``z^t`` (GNN output) and ``hidden[t]`` is ``h^t``
    (RNN output) for snapshot ``t``.
    """

    embeddings: List[np.ndarray]
    hidden: List[np.ndarray]

    @property
    def num_snapshots(self) -> int:
        """Number of processed snapshots."""
        return len(self.embeddings)

    def final_hidden(self) -> np.ndarray:
        """``h^T`` — the hidden state after the last snapshot."""
        return self.hidden[-1]


class DGNNModel:
    """GCN kernel + recurrent kernel, run snapshot-by-snapshot.

    All snapshots must share one vertex count (the generators guarantee
    this); vertices absent in early real-world traces are modelled as
    isolated vertices, which leaves the maths unchanged.
    """

    def __init__(self, gnn: GCNModel, rnn: RNNCell):
        if gnn.out_dim != rnn.in_dim:
            raise ValueError(
                f"GNN output width {gnn.out_dim} != RNN input width {rnn.in_dim}"
            )
        self.gnn = gnn
        self.rnn = rnn

    @classmethod
    def create(
        cls,
        feature_dim: int,
        hidden_dims: Sequence[int],
        rnn_hidden_dim: int,
        rnn_kind: str = "lstm",
        seed: Optional[int] = None,
    ) -> "DGNNModel":
        """Random-initialized DGCN: GCN widths ``feature_dim -> hidden_dims``
        feeding an LSTM/GRU with ``rnn_hidden_dim`` units."""
        gnn = GCNModel.create([feature_dim, *hidden_dims], seed=seed)
        if rnn_kind == "lstm":
            rnn: RNNCell = LSTMCell.create(gnn.out_dim, rnn_hidden_dim, seed=seed)
        elif rnn_kind == "gru":
            rnn = GRUCell.create(gnn.out_dim, rnn_hidden_dim, seed=seed)
        else:
            raise ValueError(f"unknown rnn_kind {rnn_kind!r}; use 'lstm' or 'gru'")
        return cls(gnn, rnn)

    @property
    def num_gnn_layers(self) -> int:
        """``L`` — number of GCN layers."""
        return self.gnn.num_layers

    def run(
        self,
        graph: DynamicGraph,
        features: Optional[Sequence[np.ndarray]] = None,
        initial_state: Optional[RNNState] = None,
    ) -> DGNNOutputs:
        """Full (non-incremental) inference over every snapshot.

        ``features`` optionally overrides the per-snapshot feature matrices;
        otherwise the snapshots must carry features.
        """
        vertex_counts = {s.num_vertices for s in graph}
        if len(vertex_counts) != 1:
            raise ValueError(
                "DGNNModel requires a shared vertex count across snapshots; "
                "pad absent vertices as isolated vertices"
            )
        num_vertices = vertex_counts.pop()
        state = (
            initial_state.copy()
            if initial_state is not None
            else self.rnn.initial_state(num_vertices)
        )
        embeddings: List[np.ndarray] = []
        hidden: List[np.ndarray] = []
        for t, snapshot in enumerate(graph):
            x = self._snapshot_features(graph, features, t)
            z = self.gnn.forward(snapshot, x)
            state = self.rnn.step(z, state)
            embeddings.append(z)
            hidden.append(state.hidden.copy())
        return DGNNOutputs(embeddings, hidden)

    def _snapshot_features(
        self,
        graph: DynamicGraph,
        features: Optional[Sequence[np.ndarray]],
        t: int,
    ) -> np.ndarray:
        if features is not None:
            return np.asarray(features[t], dtype=np.float64)
        snapshot_features = graph[t].features
        if snapshot_features is None:
            raise ValueError(
                f"snapshot {t} carries no features; pass the features argument "
                "or generate the graph with with_features=True"
            )
        return snapshot_features
