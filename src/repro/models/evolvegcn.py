"""EvolveGCN-style weight-evolving DGNN (Pareja et al., cited as [35]).

The paper's evaluation model recurses over vertex *features* (Fig. 1);
EvolveGCN — the paper's reference for the "classic DGCN model" — instead
evolves the GCN *weights* with a recurrent cell: ``W_l^t = RNN(W_l^{t-1})``
and ``Z^t = GCN(G^t; W^t)``.  This variant exercises a different corner of
the design space (the RNN workload is independent of the vertex count),
and its per-snapshot GCN passes still benefit from the same structural
reuse — so it is a natural extension model for the library.

Weight evolution uses a GRU applied column-wise to each weight matrix
(the EvolveGCN-O formulation with the weight treated as the hidden state).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..graphs.dynamic import DynamicGraph
from .gcn import GCNLayer, GCNModel
from .rnn import GRUCell, RNNState

__all__ = ["EvolveGCNModel", "EvolveGCNOutputs"]


@dataclass
class EvolveGCNOutputs:
    """Per-snapshot embeddings plus the evolved weight trajectories."""

    embeddings: List[np.ndarray]
    weights: List[List[np.ndarray]]  # weights[t][l]

    @property
    def num_snapshots(self) -> int:
        """Number of processed snapshots."""
        return len(self.embeddings)


class EvolveGCNModel:
    """GCN whose layer weights evolve through a GRU across snapshots."""

    def __init__(self, initial: GCNModel, cells: Sequence[GRUCell]):
        if len(cells) != initial.num_layers:
            raise ValueError("one recurrent cell per GCN layer required")
        for layer, cell in zip(initial.layers, cells):
            if cell.in_dim != layer.out_dim or cell.hidden_dim != layer.out_dim:
                raise ValueError(
                    "cell dims must match the layer output width "
                    f"({layer.out_dim})"
                )
        self.initial = initial
        self.cells = list(cells)

    @classmethod
    def create(cls, dims: Sequence[int], seed: Optional[int] = None) -> "EvolveGCNModel":
        """Random-initialized model with widths ``dims[0] -> ... -> dims[-1]``."""
        gnn = GCNModel.create(dims, seed=seed)
        rng = np.random.default_rng(seed)
        cells = [
            GRUCell.create(d_out, d_out, seed=int(rng.integers(2**31)))
            for d_out in dims[1:]
        ]
        return cls(gnn, cells)

    @property
    def num_layers(self) -> int:
        """GCN depth ``L``."""
        return self.initial.num_layers

    def evolve_weights(
        self, weights: List[np.ndarray]
    ) -> List[np.ndarray]:
        """One recurrent step on each layer's weight matrix.

        Each weight matrix (``d_in x d_out``) is treated as ``d_in`` rows
        of hidden state; the GRU input is the current weight itself
        (EvolveGCN-O: the weight is both input and hidden state).
        """
        evolved = []
        for weight, cell in zip(weights, self.cells):
            state = RNNState(weight.copy())
            evolved.append(cell.step(weight, state).hidden)
        return evolved

    def run(
        self,
        graph: DynamicGraph,
        features: Optional[Sequence[np.ndarray]] = None,
    ) -> EvolveGCNOutputs:
        """Inference across every snapshot with evolving weights."""
        weights = [layer.weight.copy() for layer in self.initial.layers]
        embeddings: List[np.ndarray] = []
        trajectory: List[List[np.ndarray]] = []
        for t, snapshot in enumerate(graph):
            if t > 0:
                weights = self.evolve_weights(weights)
            if features is not None:
                x = np.asarray(features[t], dtype=np.float64)
            else:
                if snapshot.features is None:
                    raise ValueError(
                        f"snapshot {t} carries no features; pass features="
                    )
                x = snapshot.features
            out = x
            for weight, layer in zip(weights, self.initial.layers):
                evolved_layer = GCNLayer(weight, activation=layer.activation)
                out = evolved_layer.forward(snapshot, out)
            embeddings.append(out)
            trajectory.append([w.copy() for w in weights])
        return EvolveGCNOutputs(embeddings, trajectory)
