"""Graph Convolutional Network kernel (paper Eq. 3).

Each layer computes ``x_l = ReLU(\\hat{A} x_{l-1} W_l)`` where ``\\hat{A}``
is the symmetric-normalized adjacency of the current snapshot.  The paper
splits this into the *aggregation* phase (the ``\\hat{A} x`` product,
edge-dominated) and the *combination* phase (the ``(.) W_l`` product,
vertex-dominated) — a split the op-counting and communication models track
separately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..graphs.snapshot import GraphSnapshot

__all__ = ["GCNLayer", "GCNModel", "relu"]


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


@dataclass
class GCNLayer:
    """One GCN layer: weight matrix plus optional bias and activation flag."""

    weight: np.ndarray
    bias: Optional[np.ndarray] = None
    activation: bool = True

    def __post_init__(self) -> None:
        self.weight = np.asarray(self.weight, dtype=np.float64)
        if self.weight.ndim != 2:
            raise ValueError("weight must be a 2-D matrix")
        if self.bias is not None:
            self.bias = np.asarray(self.bias, dtype=np.float64)
            if self.bias.shape != (self.weight.shape[1],):
                raise ValueError("bias shape must match weight output dim")

    @property
    def in_dim(self) -> int:
        """Input feature width."""
        return self.weight.shape[0]

    @property
    def out_dim(self) -> int:
        """Output feature width."""
        return self.weight.shape[1]

    def combine(self, aggregated: np.ndarray) -> np.ndarray:
        """Combination phase: ``ReLU(aggregated @ W + b)``."""
        out = aggregated @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return relu(out) if self.activation else out

    def forward(self, snapshot: GraphSnapshot, x: np.ndarray) -> np.ndarray:
        """Full layer: aggregation followed by combination."""
        return self.combine(snapshot.aggregate(x))

    def forward_rows(
        self, snapshot: GraphSnapshot, x: np.ndarray, rows: np.ndarray
    ) -> np.ndarray:
        """Layer output for a subset of destination rows (incremental path)."""
        from .aggregate import normalized_rows

        return self.combine(normalized_rows(snapshot, x, rows))


class GCNModel:
    """A stack of GNN layers — the paper's GNN kernel.

    The output of the last layer is ``z^t``, the per-vertex embedding fed
    to the RNN kernel (paper Eq. 2).  Any layer implementing the protocol
    (``in_dim``/``out_dim``/``forward``/``forward_rows``) composes here —
    see :mod:`repro.models.variants` for GraphSAGE and GIN layers.
    """

    def __init__(self, layers: Sequence[GCNLayer]):
        layers = list(layers)
        if not layers:
            raise ValueError("GCNModel needs at least one layer")
        for prev, nxt in zip(layers, layers[1:]):
            if prev.out_dim != nxt.in_dim:
                raise ValueError(
                    f"layer dims mismatch: {prev.out_dim} -> {nxt.in_dim}"
                )
        self.layers: List[GCNLayer] = layers

    @classmethod
    def create(
        cls,
        dims: Sequence[int],
        seed: Optional[int] = None,
        final_activation: bool = True,
    ) -> "GCNModel":
        """Random-initialized model with widths ``dims[0] -> ... -> dims[-1]``.

        Weights use Glorot-style scaling so activations stay well-ranged in
        the numeric tests.
        """
        if len(dims) < 2:
            raise ValueError("dims needs an input and at least one output width")
        rng = np.random.default_rng(seed)
        layers = []
        for i, (d_in, d_out) in enumerate(zip(dims, dims[1:])):
            scale = np.sqrt(2.0 / (d_in + d_out))
            weight = rng.standard_normal((d_in, d_out)) * scale
            is_last = i == len(dims) - 2
            layers.append(
                GCNLayer(weight, activation=final_activation or not is_last)
            )
        return cls(layers)

    @property
    def num_layers(self) -> int:
        """``L`` in the paper's notation."""
        return len(self.layers)

    @property
    def in_dim(self) -> int:
        """Input feature width of the first layer."""
        return self.layers[0].in_dim

    @property
    def out_dim(self) -> int:
        """Embedding width ``|z|`` of the last layer."""
        return self.layers[-1].out_dim

    def forward(self, snapshot: GraphSnapshot, x: np.ndarray) -> np.ndarray:
        """Run all layers on one snapshot, returning ``z^t``."""
        out = np.asarray(x, dtype=np.float64)
        for layer in self.layers:
            out = layer.forward(snapshot, out)
        return out

    def forward_all_layers(
        self, snapshot: GraphSnapshot, x: np.ndarray
    ) -> List[np.ndarray]:
        """Per-layer outputs ``[x_1, ..., x_L]`` (used by the incremental engine)."""
        outputs = []
        out = np.asarray(x, dtype=np.float64)
        for layer in self.layers:
            out = layer.forward(snapshot, out)
            outputs.append(out)
        return outputs
