"""Exact redundancy-free (incremental) DGNN inference.

The paper's key algorithmic observation (§3.1): 86.7%–95.9% of vertices are
unchanged between consecutive snapshots, so their GNN outputs can be
*reused* instead of recomputed.  This engine implements that reuse exactly:

* at snapshot ``t`` it identifies the changed-vertex seeds (structure or
  feature changes),
* propagates the invalidation one hop per GCN layer (a layer-``l`` output
  depends on the ``l``-hop in-neighbourhood),
* recomputes only the invalidated rows of each layer, reusing the remaining
  rows from snapshot ``t-1``.

The result is bit-identical to a full recompute (property-tested in
``tests/test_incremental.py``), while the recorded
:class:`IncrementalStats` quantify how much work reuse saved — the numbers
feeding the DiTile-Alg operation model.

The RNN kernel is always advanced for every vertex: an LSTM's state evolves
even under constant input, so exact cross-snapshot reuse of hidden state is
impossible (see DESIGN.md §2).  The accelerator-side *accounting* of the
paper's "selective RNN processing" lives in
:mod:`repro.baselines.algorithms`, not here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..graphs.dynamic import DynamicGraph
from .dgnn import DGNNModel, DGNNOutputs

__all__ = ["IncrementalStats", "IncrementalDGNN"]


@dataclass
class IncrementalStats:
    """Work accounting of one incremental run.

    ``recomputed_rows[t][l]`` is the number of layer-``l`` rows recomputed
    at snapshot ``t``; ``total_rows`` is ``V`` (rows a full recompute would
    touch per layer).
    """

    total_rows: int
    recomputed_rows: List[List[int]] = field(default_factory=list)
    changed_seeds: List[int] = field(default_factory=list)

    def reuse_fraction(self) -> float:
        """Fraction of layer-rows *not* recomputed over the whole run."""
        total = sum(len(per_layer) for per_layer in self.recomputed_rows)
        if total == 0 or self.total_rows == 0:
            return 0.0
        recomputed = sum(sum(per_layer) for per_layer in self.recomputed_rows)
        return 1.0 - recomputed / (total * self.total_rows)


class IncrementalDGNN:
    """Redundancy-free DGNN inference engine.

    Wraps a :class:`DGNNModel`; :meth:`run` matches
    :meth:`DGNNModel.run` exactly while recomputing only invalidated rows.
    """

    def __init__(self, model: DGNNModel):
        self.model = model
        self.stats: Optional[IncrementalStats] = None

    def run(
        self,
        graph: DynamicGraph,
        features: Optional[Sequence[np.ndarray]] = None,
    ) -> DGNNOutputs:
        """Incremental inference over every snapshot of ``graph``."""
        vertex_counts = {s.num_vertices for s in graph}
        if len(vertex_counts) != 1:
            raise ValueError("incremental engine requires a shared vertex count")
        num_vertices = vertex_counts.pop()
        gnn = self.model.gnn
        rnn = self.model.rnn
        stats = IncrementalStats(total_rows=num_vertices)

        layer_outputs: List[np.ndarray] = []  # layer l output at previous t
        state = rnn.initial_state(num_vertices)
        embeddings: List[np.ndarray] = []
        hidden: List[np.ndarray] = []

        for t, snapshot in enumerate(graph):
            x = self.model._snapshot_features(graph, features, t)
            if t == 0:
                layer_outputs = gnn.forward_all_layers(snapshot, x)
                stats.changed_seeds.append(num_vertices)
                stats.recomputed_rows.append([num_vertices] * gnn.num_layers)
            else:
                seeds = graph.changed_vertices(t)
                stats.changed_seeds.append(len(seeds))
                per_layer_counts = []
                affected = seeds
                prev_input = x
                for l, layer in enumerate(gnn.layers):
                    # Rows of layer l whose value may differ from t-1: the
                    # seeds plus everything within l+1 out-hops (degree
                    # renormalization makes even feature-unchanged seeds
                    # perturb their out-neighbours).
                    affected = snapshot.k_hop_affected(seeds, l + 1)
                    per_layer_counts.append(len(affected))
                    if len(affected):
                        updated = layer.forward_rows(snapshot, prev_input, affected)
                        new_output = layer_outputs[l].copy()
                        new_output[affected] = updated
                    else:
                        new_output = layer_outputs[l].copy()
                    prev_input = new_output
                    layer_outputs[l] = new_output
                stats.recomputed_rows.append(per_layer_counts)
            z = layer_outputs[-1]
            state = rnn.step(z, state)
            embeddings.append(z.copy())
            hidden.append(state.hidden.copy())

        self.stats = stats
        return DGNNOutputs(embeddings, hidden)
