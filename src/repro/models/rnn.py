"""Recurrent kernels: LSTM (paper Eq. 4) and GRU.

The RNN kernel consumes the GNN embedding ``z^t_v`` of every vertex and its
previous hidden state ``h^{t-1}_v`` to produce ``h^t_v``.  The paper uses
LSTM in evaluation and notes the design "can also be efficiently applied to
other RNN variants, such as gated recurrent units (GRUs)" — both are
implemented here behind a common interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = ["RNNState", "LSTMCell", "GRUCell", "sigmoid"]


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically-stable logistic function."""
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


@dataclass
class RNNState:
    """Per-vertex recurrent state: hidden ``h`` and (LSTM only) cell ``c``."""

    hidden: np.ndarray
    cell: Optional[np.ndarray] = None

    def copy(self) -> "RNNState":
        """Deep copy, for checkpointing in the incremental engine."""
        return RNNState(
            self.hidden.copy(), None if self.cell is None else self.cell.copy()
        )


@dataclass
class LSTMCell:
    """Long short-term memory cell over per-vertex rows (paper Eq. 4).

    Eight weight matrices: four input projections ``W_i, W_f, W_o, W_c``
    (applied to ``z^t``) and four hidden projections ``U_i, U_f, U_o, U_c``
    (applied to ``h^{t-1}``).
    """

    w_input: np.ndarray  # (4, in_dim, hidden_dim): W_i, W_f, W_o, W_c
    w_hidden: np.ndarray  # (4, hidden_dim, hidden_dim): U_i, U_f, U_o, U_c
    bias: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.w_input = np.asarray(self.w_input, dtype=np.float64)
        self.w_hidden = np.asarray(self.w_hidden, dtype=np.float64)
        if self.w_input.ndim != 3 or self.w_input.shape[0] != 4:
            raise ValueError("w_input must have shape (4, in_dim, hidden_dim)")
        if self.w_hidden.shape != (4, self.hidden_dim, self.hidden_dim):
            raise ValueError("w_hidden must have shape (4, hidden, hidden)")
        if self.bias is None:
            self.bias = np.zeros((4, self.hidden_dim))
        self.bias = np.asarray(self.bias, dtype=np.float64)
        if self.bias.shape != (4, self.hidden_dim):
            raise ValueError("bias must have shape (4, hidden_dim)")

    @classmethod
    def create(
        cls, in_dim: int, hidden_dim: int, seed: Optional[int] = None
    ) -> "LSTMCell":
        """Random-initialized cell with Glorot-style scaling."""
        rng = np.random.default_rng(seed)
        scale_in = np.sqrt(1.0 / (in_dim + hidden_dim))
        scale_h = np.sqrt(1.0 / (2 * hidden_dim))
        return cls(
            w_input=rng.standard_normal((4, in_dim, hidden_dim)) * scale_in,
            w_hidden=rng.standard_normal((4, hidden_dim, hidden_dim)) * scale_h,
        )

    @property
    def in_dim(self) -> int:
        """Input (GNN embedding) width."""
        return self.w_input.shape[1]

    @property
    def hidden_dim(self) -> int:
        """Hidden state width."""
        return self.w_input.shape[2]

    def initial_state(self, num_rows: int) -> RNNState:
        """Zero hidden and cell state for ``num_rows`` vertices."""
        return RNNState(
            np.zeros((num_rows, self.hidden_dim)),
            np.zeros((num_rows, self.hidden_dim)),
        )

    def step(self, z: np.ndarray, state: RNNState) -> RNNState:
        """One timestep over all rows: ``(z^t, h^{t-1}, c^{t-1}) -> (h^t, c^t)``."""
        z = np.asarray(z, dtype=np.float64)
        h_prev, c_prev = state.hidden, state.cell
        if c_prev is None:
            raise ValueError("LSTM state requires a cell component")
        gates = [
            z @ self.w_input[k] + h_prev @ self.w_hidden[k] + self.bias[k]
            for k in range(4)
        ]
        i_gate = sigmoid(gates[0])
        f_gate = sigmoid(gates[1])
        o_gate = sigmoid(gates[2])
        c_tilde = np.tanh(gates[3])
        c_new = f_gate * c_prev + i_gate * c_tilde
        h_new = o_gate * np.tanh(c_new)
        return RNNState(h_new, c_new)

    def matmul_count(self) -> int:
        """Matrix multiplications per step (eight for LSTM, per Eq. 4)."""
        return 8


@dataclass
class GRUCell:
    """Gated recurrent unit over per-vertex rows.

    Six weight matrices: three input projections (update, reset, candidate)
    and three hidden projections.
    """

    w_input: np.ndarray  # (3, in_dim, hidden_dim)
    w_hidden: np.ndarray  # (3, hidden_dim, hidden_dim)
    bias: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.w_input = np.asarray(self.w_input, dtype=np.float64)
        self.w_hidden = np.asarray(self.w_hidden, dtype=np.float64)
        if self.w_input.ndim != 3 or self.w_input.shape[0] != 3:
            raise ValueError("w_input must have shape (3, in_dim, hidden_dim)")
        if self.w_hidden.shape != (3, self.hidden_dim, self.hidden_dim):
            raise ValueError("w_hidden must have shape (3, hidden, hidden)")
        if self.bias is None:
            self.bias = np.zeros((3, self.hidden_dim))
        self.bias = np.asarray(self.bias, dtype=np.float64)

    @classmethod
    def create(
        cls, in_dim: int, hidden_dim: int, seed: Optional[int] = None
    ) -> "GRUCell":
        """Random-initialized cell."""
        rng = np.random.default_rng(seed)
        scale_in = np.sqrt(1.0 / (in_dim + hidden_dim))
        scale_h = np.sqrt(1.0 / (2 * hidden_dim))
        return cls(
            w_input=rng.standard_normal((3, in_dim, hidden_dim)) * scale_in,
            w_hidden=rng.standard_normal((3, hidden_dim, hidden_dim)) * scale_h,
        )

    @property
    def in_dim(self) -> int:
        """Input (GNN embedding) width."""
        return self.w_input.shape[1]

    @property
    def hidden_dim(self) -> int:
        """Hidden state width."""
        return self.w_input.shape[2]

    def initial_state(self, num_rows: int) -> RNNState:
        """Zero hidden state (GRU has no cell state)."""
        return RNNState(np.zeros((num_rows, self.hidden_dim)), None)

    def step(self, z: np.ndarray, state: RNNState) -> RNNState:
        """One timestep over all rows."""
        z = np.asarray(z, dtype=np.float64)
        h_prev = state.hidden
        update = sigmoid(z @ self.w_input[0] + h_prev @ self.w_hidden[0] + self.bias[0])
        reset = sigmoid(z @ self.w_input[1] + h_prev @ self.w_hidden[1] + self.bias[1])
        candidate = np.tanh(
            z @ self.w_input[2] + (reset * h_prev) @ self.w_hidden[2] + self.bias[2]
        )
        h_new = (1.0 - update) * h_prev + update * candidate
        return RNNState(h_new, None)

    def matmul_count(self) -> int:
        """Matrix multiplications per step (six for GRU)."""
        return 6
