"""GNN layer variants: GraphSAGE and GIN (paper §2.2).

"While many GNN variants have been proposed such as GraphSAGE [17] and
Graph Isomorphism Networks (GINs) [44], their key computations can be
abstracted in the form of adjacency matrices."  Both variants implement
the same layer protocol as :class:`~repro.models.gcn.GCNLayer`
(``forward`` for full passes, ``forward_rows`` for the incremental
engine), so they compose into :class:`~repro.models.gcn.GCNModel` stacks
and :class:`~repro.models.dgnn.DGNNModel` unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..graphs.snapshot import GraphSnapshot
from .aggregate import mean_rows, sum_rows
from .gcn import GCNModel, relu

__all__ = ["SAGELayer", "GINLayer", "create_sage_model", "create_gin_model"]


@dataclass
class SAGELayer:
    """GraphSAGE layer with a mean aggregator.

    ``out = ReLU(x W_self + mean(x[neighbours]) W_neigh)`` — the
    concat-then-project formulation with the projection split into two
    weight blocks.
    """

    w_self: np.ndarray
    w_neigh: np.ndarray
    activation: bool = True

    def __post_init__(self) -> None:
        self.w_self = np.asarray(self.w_self, dtype=np.float64)
        self.w_neigh = np.asarray(self.w_neigh, dtype=np.float64)
        if self.w_self.shape != self.w_neigh.shape:
            raise ValueError("w_self and w_neigh must share a shape")
        if self.w_self.ndim != 2:
            raise ValueError("weights must be 2-D matrices")

    @property
    def in_dim(self) -> int:
        """Input feature width."""
        return self.w_self.shape[0]

    @property
    def out_dim(self) -> int:
        """Output feature width."""
        return self.w_self.shape[1]

    def forward(self, snapshot: GraphSnapshot, x: np.ndarray) -> np.ndarray:
        """Full layer pass."""
        return self.forward_rows(snapshot, x, np.arange(snapshot.num_vertices))

    def forward_rows(
        self, snapshot: GraphSnapshot, x: np.ndarray, rows: np.ndarray
    ) -> np.ndarray:
        """Layer output for a subset of destination rows."""
        aggregated = mean_rows(snapshot, x, rows)
        out = x[rows] @ self.w_self + aggregated @ self.w_neigh
        return relu(out) if self.activation else out


@dataclass
class GINLayer:
    """Graph Isomorphism Network layer.

    ``out = MLP((1 + eps) * x + sum(x[neighbours]))`` with a two-layer
    ReLU MLP.
    """

    w1: np.ndarray
    w2: np.ndarray
    epsilon: float = 0.0
    activation: bool = True

    def __post_init__(self) -> None:
        self.w1 = np.asarray(self.w1, dtype=np.float64)
        self.w2 = np.asarray(self.w2, dtype=np.float64)
        if self.w1.ndim != 2 or self.w2.ndim != 2:
            raise ValueError("weights must be 2-D matrices")
        if self.w1.shape[1] != self.w2.shape[0]:
            raise ValueError("MLP widths must chain: w1 out == w2 in")

    @property
    def in_dim(self) -> int:
        """Input feature width."""
        return self.w1.shape[0]

    @property
    def out_dim(self) -> int:
        """Output feature width."""
        return self.w2.shape[1]

    def forward(self, snapshot: GraphSnapshot, x: np.ndarray) -> np.ndarray:
        """Full layer pass."""
        return self.forward_rows(snapshot, x, np.arange(snapshot.num_vertices))

    def forward_rows(
        self, snapshot: GraphSnapshot, x: np.ndarray, rows: np.ndarray
    ) -> np.ndarray:
        """Layer output for a subset of destination rows."""
        aggregated = sum_rows(snapshot, x, rows)
        pre = (1.0 + self.epsilon) * x[rows] + aggregated
        hidden = relu(pre @ self.w1)
        out = hidden @ self.w2
        return relu(out) if self.activation else out


def _glorot(rng: np.random.Generator, d_in: int, d_out: int) -> np.ndarray:
    scale = np.sqrt(2.0 / (d_in + d_out))
    return rng.standard_normal((d_in, d_out)) * scale


def create_sage_model(
    dims: Sequence[int], seed: Optional[int] = None
) -> GCNModel:
    """A GraphSAGE stack with widths ``dims[0] -> ... -> dims[-1]``."""
    if len(dims) < 2:
        raise ValueError("dims needs an input and at least one output width")
    rng = np.random.default_rng(seed)
    layers = [
        SAGELayer(_glorot(rng, d_in, d_out), _glorot(rng, d_in, d_out))
        for d_in, d_out in zip(dims, dims[1:])
    ]
    return GCNModel(layers)


def create_gin_model(
    dims: Sequence[int],
    epsilon: float = 0.1,
    seed: Optional[int] = None,
) -> GCNModel:
    """A GIN stack with widths ``dims[0] -> ... -> dims[-1]``.

    Each layer's internal MLP uses a hidden width equal to its output
    width.
    """
    if len(dims) < 2:
        raise ValueError("dims needs an input and at least one output width")
    rng = np.random.default_rng(seed)
    layers = [
        GINLayer(
            _glorot(rng, d_in, d_out), _glorot(rng, d_out, d_out), epsilon
        )
        for d_in, d_out in zip(dims, dims[1:])
    ]
    return GCNModel(layers)
