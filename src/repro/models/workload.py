"""Operation counting and the paper's vertex-workload model (Eq. 17).

Two families of primitives live here:

* **MAC/op counting** for the GNN and RNN kernels — the raw material of the
  Fig. 7 arithmetic-operation comparison and of the simulator's compute-time
  model.  Counts are in multiply-accumulate operations (one MAC = one
  multiply + one add).

* **Vertex workload estimation** (Eq. 17): the recursive receptive-field
  size ``L^t_i = sum_{l=1..L} sum_{l'=1..l} N^{l'}(v)`` computed by the
  paper's label-aggregation technique — every vertex starts with label 1,
  labels propagate along edges and accumulate at destinations, one round per
  GCN layer.  Label aggregation counts *walks*, exactly what the hardware
  unit described in §5 accumulates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..graphs.dynamic import DynamicGraph
from ..graphs.snapshot import GraphSnapshot

__all__ = [
    "KernelOps",
    "gcn_ops",
    "gcn_ops_subset",
    "rnn_ops",
    "label_aggregation",
    "vertex_workload",
    "dynamic_vertex_workload",
]


@dataclass(frozen=True)
class KernelOps:
    """MAC counts of one kernel invocation, split by phase."""

    aggregation: int
    combination: int

    @property
    def total(self) -> int:
        """Aggregation + combination MACs."""
        return self.aggregation + self.combination

    def __add__(self, other: "KernelOps") -> "KernelOps":
        return KernelOps(
            self.aggregation + other.aggregation,
            self.combination + other.combination,
        )


def gcn_ops(snapshot: GraphSnapshot, layer_dims: Sequence[int]) -> KernelOps:
    """MACs of a full L-layer GCN pass over ``snapshot``.

    ``layer_dims`` is ``[d_0, d_1, ..., d_L]``.  Aggregation moves
    ``d_{l-1}``-wide rows across every edge (plus the self loop);
    combination is a dense ``V x d_{l-1} x d_l`` product.
    """
    if len(layer_dims) < 2:
        raise ValueError("layer_dims needs at least input and one output width")
    v, e = snapshot.num_vertices, snapshot.num_edges
    aggregation = 0
    combination = 0
    for d_in, d_out in zip(layer_dims, layer_dims[1:]):
        aggregation += (e + v) * d_in  # +v for self loops
        combination += v * d_in * d_out
    return KernelOps(aggregation, combination)


def gcn_ops_subset(
    snapshot: GraphSnapshot,
    layer_dims: Sequence[int],
    rows_per_layer: Sequence[np.ndarray],
) -> KernelOps:
    """MACs of a GCN pass that recomputes only ``rows_per_layer[l]`` at layer ``l``.

    This is the incremental-engine cost: aggregation touches only the
    in-edges of recomputed rows, combination only those rows.
    """
    if len(rows_per_layer) != len(layer_dims) - 1:
        raise ValueError("need one row subset per layer")
    degrees = snapshot.in_degree()
    aggregation = 0
    combination = 0
    for (d_in, d_out), rows in zip(
        zip(layer_dims, layer_dims[1:]), rows_per_layer
    ):
        rows = np.asarray(rows, dtype=np.int64)
        touched_edges = int(degrees[rows].sum()) + len(rows)  # +self loops
        aggregation += touched_edges * d_in
        combination += len(rows) * d_in * d_out
    return KernelOps(aggregation, combination)


def rnn_ops(
    num_vertices: int, in_dim: int, hidden_dim: int, num_matmuls: int = 8
) -> KernelOps:
    """MACs of one recurrent step over ``num_vertices`` rows.

    LSTM (Eq. 4) performs four input and four hidden matrix products
    (``num_matmuls=8``); GRU performs six.  Element-wise gate work is folded
    into the combination count (one MAC per element per gate).
    """
    input_projections = num_matmuls // 2
    hidden_projections = num_matmuls - input_projections
    matmul = num_vertices * (
        input_projections * in_dim * hidden_dim
        + hidden_projections * hidden_dim * hidden_dim
    )
    elementwise = num_vertices * hidden_dim * num_matmuls // 2
    return KernelOps(aggregation=0, combination=matmul + elementwise)


def label_aggregation(snapshot: GraphSnapshot, num_layers: int) -> np.ndarray:
    """Per-layer propagated label counts, ``(num_layers, V)``.

    Row ``l`` holds ``walks^{l+1}(v)``: the number of length-``l+1`` walks
    terminating at ``v`` — what the paper's label-aggregation hardware
    accumulates after ``l+1`` propagation rounds.
    """
    if num_layers < 1:
        raise ValueError("num_layers must be >= 1")
    v = snapshot.num_vertices
    dst = np.repeat(np.arange(v), np.diff(snapshot.indptr))
    labels = np.ones(v, dtype=np.float64)
    rounds = np.zeros((num_layers, v), dtype=np.float64)
    for l in range(num_layers):
        # bincount's summation is exact here (walk counts are integers well
        # below 2**53), so it matches np.add.at bit-for-bit while running
        # one vectorized pass instead of a per-edge scatter loop.
        propagated = np.bincount(dst, weights=labels[snapshot.indices], minlength=v)
        rounds[l] = propagated
        labels = propagated
    return rounds


def vertex_workload(snapshot: GraphSnapshot, num_layers: int) -> np.ndarray:
    """Eq. 17 workload ``L^t_v`` for every vertex of one snapshot.

    ``L^t_v = sum_{l=1..L} sum_{l'=1..l} walks^{l'}(v)
            = sum_{l'=1..L} (L - l' + 1) * walks^{l'}(v)``.
    """
    rounds = label_aggregation(snapshot, num_layers)
    weights = np.arange(num_layers, 0, -1, dtype=np.float64)  # L, L-1, ..., 1
    return weights @ rounds


def dynamic_vertex_workload(graph: DynamicGraph, num_layers: int) -> np.ndarray:
    """Eq. 17 summed over all snapshots: ``vload[v]`` of Algorithm 2.

    Vertices missing from a snapshot contribute zero for that snapshot.
    """
    vload = np.zeros(graph.max_vertices, dtype=np.float64)
    for snapshot in graph:
        vload[: snapshot.num_vertices] += vertex_workload(snapshot, num_layers)
    return vload
