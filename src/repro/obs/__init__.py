"""``repro.obs`` — tracing, metrics, and phase-breakdown profiling.

A deterministic-safe instrumentation layer over the planner, the
accelerator simulator, and the serving pipeline (see
``docs/observability.md``):

* **Spans** (:mod:`repro.obs.span` / :mod:`repro.obs.tracer`) — nested,
  per-thread phases with identifying attributes (snapshot index,
  ``alpha``/``Ps``/``Pv``, plan decision) and *deterministic counters*
  (cycles, bytes, MACs) kept strictly apart from wall-clock telemetry.
* **Metrics** (:mod:`repro.obs.metrics`) — counter/gauge registry
  (queue depth, plan-cache hit rate).
* **Exporters** (:mod:`repro.obs.export`) — Chrome trace-event JSON
  (Perfetto / ``chrome://tracing``) and a JSONL span log, with a
  dependency-free schema validator.
* **Phase report** (:mod:`repro.obs.report`) — time and counters per
  phase with %-of-parent, mirroring the paper's Fig. 7-9 decomposition.

With no tracer installed every instrumented call site is a no-op behind
one global ``None`` check — bench counters are bit-identical with
tracing on or off.
"""

from .distributed import (
    ShardSpanBatch,
    TraceContext,
    aggregate_shard_counters,
    decode_records,
    encode_records,
    latest_shard_metrics,
    shard_phase_totals,
    shard_span_lines,
    write_shard_span_jsonl,
)
from .export import (
    chrome_trace_events,
    validate_trace_events,
    validate_trace_file,
    write_chrome_trace,
    write_span_jsonl,
)
from .flamegraph import collapsed_stacks, write_flamegraph
from .metrics import Counter, Gauge, MetricsRegistry
from .report import PhaseNode, PhaseReport, build_phase_report
from .session import TraceSession, export_all
from .slo import SLOMonitor, SLOReport, SLOTarget, default_targets
from .span import NOOP_SPAN, NoopSpan, Span, SpanRecord
from .tracer import (
    Tracer,
    active_tracer,
    counter_add,
    gauge_set,
    install,
    span,
    tracing,
    tracing_enabled,
    uninstall,
)

__all__ = [
    "Span",
    "SpanRecord",
    "NoopSpan",
    "NOOP_SPAN",
    "Tracer",
    "active_tracer",
    "tracing_enabled",
    "install",
    "uninstall",
    "tracing",
    "span",
    "counter_add",
    "gauge_set",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "chrome_trace_events",
    "write_chrome_trace",
    "write_span_jsonl",
    "validate_trace_events",
    "validate_trace_file",
    "PhaseNode",
    "PhaseReport",
    "build_phase_report",
    "TraceSession",
    "export_all",
    "TraceContext",
    "ShardSpanBatch",
    "encode_records",
    "decode_records",
    "shard_span_lines",
    "write_shard_span_jsonl",
    "latest_shard_metrics",
    "aggregate_shard_counters",
    "shard_phase_totals",
    "collapsed_stacks",
    "write_flamegraph",
    "SLOTarget",
    "SLOMonitor",
    "SLOReport",
    "default_targets",
]
