"""Cross-process distributed tracing: shard workers -> one merged trace.

The sharded service (:mod:`repro.dist`) forks one worker per shard, so a
process-global tracer on the coordinator sees nothing a worker does.
This module closes that gap without new channels:

* A :class:`TraceContext` — trace id, the coordinator's parent span id,
  shard id, generation — is handed to each worker at spawn time and
  rides every trace message the worker sends back.
* Each worker runs its **own** :class:`~repro.obs.tracer.Tracer` and
  :class:`~repro.obs.metrics.MetricsRegistry` (the inherited coordinator
  tracer is uninstalled right after fork), drains finished spans at
  every window boundary, and flushes them — plus a cumulative metrics
  snapshot — over the established coordinator queue as a
  :class:`ShardSpanBatch` payload inside a ``ShardTraceMessage``.
* The coordinator attaches the batches to its tracer
  (:meth:`~repro.obs.tracer.Tracer.add_shard_batch`); the exporters then
  stitch one multi-track Chrome trace (``pid`` = shard, ``tid`` = the
  worker's stage thread) and the aggregators below fold per-shard
  registries into global counters with per-shard breakdowns.

Determinism contract: everything a worker puts in a batch except the
span timestamps is a pure function of its routed event slice, and the
worker loop is single-threaded, so batches — and therefore the
*canonical* merged span log (:func:`shard_span_lines`, which carries no
wall-clock fields) — are byte-identical across runs.  Timestamps live
only in the Chrome trace, which is telemetry.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .metrics import MetricsRegistry
from .span import SpanRecord

__all__ = [
    "COORDINATOR_PID",
    "TraceContext",
    "ShardSpanBatch",
    "encode_records",
    "decode_records",
    "shard_pid",
    "shard_trace_events",
    "shard_span_lines",
    "write_shard_span_jsonl",
    "latest_shard_metrics",
    "aggregate_shard_counters",
    "merged_metrics_registry",
    "shard_phase_totals",
    "resolve_context",
]

#: the coordinator's Chrome-trace process track; shard ``s`` gets ``s + 1``
COORDINATOR_PID = 0


def shard_pid(shard: int) -> int:
    """The Chrome-trace ``pid`` of shard ``shard``'s worker process."""
    return shard + 1


@dataclass(frozen=True)
class TraceContext:
    """The identity a trace carries across the process boundary."""

    #: the traced run (the coordinator session id — unique per service)
    trace_id: str
    #: span id of the coordinator span the worker's spans nest under
    parent_span_id: int
    #: which shard of the vertex space this context belongs to
    shard: int
    #: worker incarnation (restarts bump it; stale batches are dropped)
    generation: int


@dataclass(frozen=True)
class ShardSpanBatch:
    """One window boundary's flush from one shard worker.

    Everything in here is picklable scalars/tuples — the batch crosses
    the coordinator queue, never shared memory (span payloads are tiny
    next to edge arrays).  ``metrics`` is the worker registry's
    *cumulative* snapshot at flush time, so the last batch of a
    generation carries the generation's full totals.
    """

    context: TraceContext
    #: the window whose boundary triggered the flush; the final flush
    #: (after the last window) uses the one-past-last index so it sorts
    #: after every window flush
    window: int
    #: serialized :class:`SpanRecord` dicts, in span-id (creation) order
    spans: Tuple[Dict[str, object], ...]
    #: cumulative ``MetricsRegistry.as_dict()`` snapshot
    metrics: Dict[str, Dict[str, Dict[str, float]]]
    #: worker thread-index -> name mapping (Chrome metadata)
    thread_names: Tuple[str, ...]
    #: the worker tracer's wall-clock epoch (telemetry; aligns timelines)
    epoch_s: float


# ---------------------------------------------------------------------------
# Span (de)serialization
# ---------------------------------------------------------------------------
def encode_records(records: List[SpanRecord]) -> Tuple[Dict[str, object], ...]:
    """Serialize spans for the queue (plain dicts of scalars)."""
    return tuple(record.as_dict() for record in records)


def decode_records(spans: Tuple[Dict[str, object], ...]) -> List[SpanRecord]:
    """Rebuild :class:`SpanRecord`\\ s from a batch's serialized spans."""
    return [
        SpanRecord(
            name=str(span["name"]),
            span_id=int(span["span_id"]),  # type: ignore[arg-type]
            parent_id=(
                int(span["parent_id"])  # type: ignore[arg-type]
                if span["parent_id"] is not None
                else None
            ),
            thread=int(span["thread"]),  # type: ignore[arg-type]
            depth=int(span["depth"]),  # type: ignore[arg-type]
            start_us=int(span["start_us"]),  # type: ignore[arg-type]
            duration_us=int(span["duration_us"]),  # type: ignore[arg-type]
            attrs=dict(span["attrs"]),  # type: ignore[call-overload]
            counters=dict(span["counters"]),  # type: ignore[call-overload]
        )
        for span in spans
    ]


# ---------------------------------------------------------------------------
# Chrome-trace stitching
# ---------------------------------------------------------------------------
def shard_trace_events(tracer) -> List[Dict[str, object]]:
    """Chrome trace events for every shard batch attached to ``tracer``.

    Each shard becomes its own process track: ``pid = shard + 1`` with a
    ``process_name`` metadata event, worker threads keep their stable
    ``tid``\\ s, and span timestamps are re-based from the worker's epoch
    onto the coordinator tracer's so all tracks share one timeline.
    """
    events: List[Dict[str, object]] = []
    named: set = set()
    for batch in tracer.shard_batches:
        ctx = batch.context
        pid = shard_pid(ctx.shard)
        if pid not in named:
            named.add(pid)
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": f"shard{ctx.shard}"},
                }
            )
        for index, name in enumerate(batch.thread_names):
            key = (pid, index)
            if key in named:
                continue
            named.add(key)
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": index,
                    "args": {"name": name},
                }
            )
        offset_us = int((batch.epoch_s - tracer.epoch_s) * 1e6)
        for record in decode_records(batch.spans):
            args: Dict[str, object] = dict(record.attrs)
            args["trace_id"] = ctx.trace_id
            args["generation"] = ctx.generation
            for counter, value in sorted(record.counters.items()):
                args[f"counter.{counter}"] = value
            events.append(
                {
                    "name": record.name,
                    "cat": "repro",
                    "ph": "X",
                    "pid": pid,
                    "tid": record.thread,
                    "ts": max(record.start_us + offset_us, 0),
                    "dur": record.duration_us,
                    "args": args,
                }
            )
    return events


# ---------------------------------------------------------------------------
# Canonical merged span log
# ---------------------------------------------------------------------------
def shard_span_lines(tracer) -> List[str]:
    """The canonical merged shard-span log, one JSON line per span.

    The *deterministic* view of a distributed trace: spans from every
    shard batch, ordered by ``(shard, generation, span id)``, carrying
    only workload-derived fields — name, shard, generation, local span
    and parent ids, depth, attrs, counters — and **no wall-clock
    fields**.  Two traced runs over the same stream produce byte-equal
    logs (the regression test in ``tests/test_obs_dist.py``); wall-clock
    telemetry belongs to the Chrome trace.
    """
    lines: List[str] = []
    for batch in tracer.shard_batches:
        ctx = batch.context
        for record in decode_records(batch.spans):
            lines.append(
                json.dumps(
                    {
                        "shard": ctx.shard,
                        "generation": ctx.generation,
                        "name": record.name,
                        "span_id": record.span_id,
                        "parent_id": record.parent_id,
                        "depth": record.depth,
                        "attrs": {
                            key: record.attrs[key] for key in sorted(record.attrs)
                        },
                        "counters": {
                            key: record.counters[key]
                            for key in sorted(record.counters)
                        },
                    },
                    sort_keys=True,
                )
            )
    return lines


def write_shard_span_jsonl(tracer, path):
    """Write :func:`shard_span_lines` to ``path`` (one JSON object/line)."""
    from pathlib import Path

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = shard_span_lines(tracer)
    path.write_text("\n".join(lines) + ("\n" if lines else ""))
    return path


# ---------------------------------------------------------------------------
# Metrics aggregation
# ---------------------------------------------------------------------------
def latest_shard_metrics(tracer) -> Dict[int, Dict[str, Dict[str, Dict[str, float]]]]:
    """Each shard's most recent cumulative metrics snapshot.

    Snapshots are cumulative per generation, so the latest batch of the
    *highest* generation is the shard's best view of its totals.  On a
    restart-free run (every generation 0, every window merged exactly
    once) these totals reconcile exactly with
    :class:`~repro.dist.stats.ShardedStats` — the attribution test; a
    crashed generation's replayed windows make them approximate, which
    the restart counter flags.
    """
    latest: Dict[int, Tuple[Tuple[int, int], Dict]] = {}
    for batch in tracer.shard_batches:
        ctx = batch.context
        key = (ctx.generation, batch.window)
        held = latest.get(ctx.shard)
        if held is None or key >= held[0]:
            latest[ctx.shard] = (key, batch.metrics)
    return {shard: snapshot for shard, (_, snapshot) in sorted(latest.items())}


def aggregate_shard_counters(tracer) -> Dict[str, Dict[str, float]]:
    """Global counters summed across every shard's latest registry.

    Returns ``{counter: {"total": ..., "events": ..., "shard<N>": ...}}``
    — the global fold plus the per-shard breakdown the load-balance view
    is built from (cut-edge traffic, ingested events, segment counts).
    """
    merged: Dict[str, Dict[str, float]] = {}
    for shard, snapshot in latest_shard_metrics(tracer).items():
        for name, counter in snapshot.get("counters", {}).items():
            into = merged.setdefault(name, {"total": 0.0, "events": 0.0})
            into["total"] += counter["total"]
            into["events"] += counter["events"]
            into[f"shard{shard}"] = counter["total"]
    return {name: merged[name] for name in sorted(merged)}


def merged_metrics_registry(tracer) -> MetricsRegistry:
    """A registry holding the aggregated cross-shard counters.

    Convenience for report code that wants the global counters in the
    ordinary :class:`MetricsRegistry` shape.
    """
    registry = MetricsRegistry()
    for name, fold in aggregate_shard_counters(tracer).items():
        counter = registry.counter(name)
        counter.total = fold["total"]
        counter.events = int(fold["events"])
    return registry


# ---------------------------------------------------------------------------
# Per-shard phase totals (the load-balance axis)
# ---------------------------------------------------------------------------
def shard_phase_totals(tracer) -> Dict[str, Dict[int, int]]:
    """``{span name: {shard: summed duration_us}}`` over all shard batches.

    The raw material of the :class:`~repro.obs.report.PhaseReport`
    imbalance view: per-shard stage time, whose max/mean ratio is the
    paper's load-balance axis for the distributed pipeline.
    """
    totals: Dict[str, Dict[int, int]] = {}
    for batch in tracer.shard_batches:
        shard = batch.context.shard
        for record in decode_records(batch.spans):
            per_shard = totals.setdefault(record.name, {})
            per_shard[shard] = per_shard.get(shard, 0) + record.duration_us
    return totals


def resolve_context(
    trace_id: str, parent_span_id: Optional[int], shard: int, generation: int
) -> TraceContext:
    """Build a worker's :class:`TraceContext` (``None`` parent -> 0)."""
    return TraceContext(
        trace_id=trace_id,
        parent_span_id=parent_span_id if parent_span_id is not None else 0,
        shard=shard,
        generation=generation,
    )
