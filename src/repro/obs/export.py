"""Trace exporters: Chrome trace-event JSON and JSONL span logs.

The Chrome format is the ``chrome://tracing`` / Perfetto interchange
format — a ``traceEvents`` list of complete (``"ph": "X"``) duration
events plus thread-name metadata (``"ph": "M"``) events.  Open the file
at https://ui.perfetto.dev (or ``chrome://tracing``) to see the planner,
simulator, and serving phases on their threads' timelines.

:func:`validate_trace_events` is a dependency-free structural check of
that schema; CI runs it on the smoke trace artifact so an exporter
regression cannot silently produce files Perfetto rejects.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from .distributed import COORDINATOR_PID, shard_trace_events
from .span import SpanRecord
from .tracer import Tracer

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "chrome_trace_events",
    "write_chrome_trace",
    "write_span_jsonl",
    "validate_trace_events",
    "validate_trace_file",
]

#: exported trace schema: 1 = single-process (one implicit pid track),
#: 2 = multi-process (coordinator pid 0 + one pid per shard, every pid
#: carrying a ``process_name`` metadata event)
TRACE_SCHEMA_VERSION = 2


def chrome_trace_events(tracer: Tracer) -> Dict[str, object]:
    """The tracer's spans as a Chrome trace-event JSON object.

    The coordinator's own spans land on ``pid`` 0; spans flushed back by
    shard workers (:mod:`repro.obs.distributed`) land on ``pid`` =
    shard + 1, each pid with its ``process_name``/``thread_name``
    metadata — one multi-track timeline for the whole distributed run.
    """
    events: List[Dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": COORDINATOR_PID,
            "tid": 0,
            "args": {"name": "coordinator"},
        }
    ]
    for index, name in enumerate(tracer.thread_names()):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": COORDINATOR_PID,
                "tid": index,
                "args": {"name": name},
            }
        )
    for record in tracer.records:
        args: Dict[str, object] = dict(record.attrs)
        # Namespaced so a counter can never shadow a same-named attribute.
        for counter, value in sorted(record.counters.items()):
            args[f"counter.{counter}"] = value
        events.append(
            {
                "name": record.name,
                "cat": "repro",
                "ph": "X",
                "pid": COORDINATOR_PID,
                "tid": record.thread,
                "ts": record.start_us,
                "dur": record.duration_us,
                "args": args,
            }
        )
    shard_events = shard_trace_events(tracer)
    events.extend(shard_events)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "tracer": tracer.name,
            "schema": TRACE_SCHEMA_VERSION,
            "spans": len(tracer.records),
            "shard_batches": len(tracer.shard_batches),
        },
    }


def write_chrome_trace(tracer: Tracer, path: Union[str, Path]) -> Path:
    """Write the Chrome trace-event JSON for ``tracer`` to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace_events(tracer), indent=1))
    return path


def write_span_jsonl(tracer: Tracer, path: Union[str, Path]) -> Path:
    """Write one JSON object per finished span to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = [json.dumps(r.as_dict()) for r in tracer.records]
    path.write_text("\n".join(lines) + ("\n" if lines else ""))
    return path


# ---------------------------------------------------------------------------
# Schema validation
# ---------------------------------------------------------------------------
def _check_event(event: object, index: int, errors: List[str]) -> None:
    where = f"traceEvents[{index}]"
    if not isinstance(event, dict):
        errors.append(f"{where}: not an object")
        return
    phase = event.get("ph")
    if phase not in ("X", "M"):
        errors.append(f"{where}: unsupported or missing phase {phase!r}")
        return
    if not isinstance(event.get("name"), str) or not event["name"]:
        errors.append(f"{where}: missing/empty name")
    for key in ("pid", "tid"):
        if not isinstance(event.get(key), int):
            errors.append(f"{where}: {key} must be an integer")
    if "args" in event and not isinstance(event["args"], dict):
        errors.append(f"{where}: args must be an object")
    if phase == "M":
        if event.get("name") not in ("thread_name", "process_name"):
            errors.append(
                f"{where}: metadata event must be thread_name or "
                f"process_name, got {event.get('name')!r}"
            )
        args = event.get("args")
        if not isinstance(args, dict) or not isinstance(
            args.get("name"), str
        ):
            errors.append(f"{where}: metadata args.name must be a string")
    if phase == "X":
        for key in ("ts", "dur"):
            value = event.get(key)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                errors.append(f"{where}: {key} must be a number")
            elif value < 0:
                errors.append(f"{where}: {key} must be >= 0, got {value}")


def validate_trace_events(payload: object) -> List[str]:
    """Structural errors in a Chrome trace-event payload (empty = valid).

    Schema 2 (multi-process) adds a per-process rule: when duration
    events span more than one ``pid`` track, every such track must carry
    a ``process_name`` metadata event — a merged distributed trace in
    which a shard's track renders as a bare pid number is a bug, not a
    cosmetic nit.
    """
    errors: List[str] = []
    if not isinstance(payload, dict):
        return ["top level must be an object with a traceEvents list"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    span_pids = set()
    named_pids = set()
    for index, event in enumerate(events):
        _check_event(event, index, errors)
        if isinstance(event, dict) and isinstance(event.get("pid"), int):
            if event.get("ph") == "X":
                span_pids.add(event["pid"])
            elif (
                event.get("ph") == "M"
                and event.get("name") == "process_name"
            ):
                named_pids.add(event["pid"])
    if len(span_pids) > 1:
        for pid in sorted(span_pids - named_pids):
            errors.append(
                f"multi-process trace: pid {pid} has duration events but "
                "no process_name metadata event"
            )
    return errors


def validate_trace_file(path: Union[str, Path]) -> List[str]:
    """Validate a trace-event JSON file on disk (empty list = valid)."""
    path = Path(path)
    try:
        payload: Optional[object] = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable trace ({exc})"]
    return validate_trace_events(payload)
