"""Collapsed-stack flamegraph export (Brendan Gregg's folded format).

One line per unique span ancestry path — ``frame;frame;frame value`` —
where ``value`` is the path's **self time** in microseconds (the span's
duration minus its children's, so a flamegraph renderer can stack the
frames without double-counting).  The folded log feeds ``flamegraph.pl``
or speedscope directly and complements the Chrome trace: the trace shows
*when* each phase ran, the flamegraph shows *where* the time went in
aggregate.

Multi-process runs fold in too: spans flushed back by shard workers
(:mod:`repro.obs.distributed`) appear under a synthetic
``shard<N>`` root frame, so coordinator and worker time share one
flamegraph with per-shard attribution.

Self times are wall-clock telemetry — byte-stability is the canonical
span log's job, not this exporter's.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List

from .distributed import decode_records
from .span import SpanRecord, span_paths

__all__ = ["collapsed_stacks", "write_flamegraph", "FLAMEGRAPH_FILENAME"]

#: default artifact name inside a trace session directory
FLAMEGRAPH_FILENAME = "flame.folded"


def _fold(
    into: Dict[str, int], records: List[SpanRecord], prefix: str = ""
) -> None:
    """Accumulate ``records``' self times into ``into`` by folded path."""
    paths = span_paths(records)
    child_us: Dict[int, int] = {}
    for record in records:
        if record.parent_id is not None:
            child_us[record.parent_id] = (
                child_us.get(record.parent_id, 0) + record.duration_us
            )
    for record in records:
        self_us = max(record.duration_us - child_us.get(record.span_id, 0), 0)
        folded = paths[record.span_id].replace("/", ";")
        if prefix:
            folded = f"{prefix};{folded}"
        into[folded] = into.get(folded, 0) + self_us


def collapsed_stacks(tracer) -> List[str]:
    """Folded-format lines for ``tracer``'s whole run, sorted by path.

    Coordinator (in-process) spans fold under their natural roots; each
    shard worker's spans fold under ``shard<N>``.  Shard batches are
    grouped per ``(shard, generation)`` before path resolution so a
    parent flushed in an earlier window batch still anchors its
    children's paths.
    """
    folded: Dict[str, int] = {}
    _fold(folded, tracer.records)
    grouped: Dict[tuple, List[SpanRecord]] = {}
    for batch in tracer.shard_batches:
        key = (batch.context.shard, batch.context.generation)
        grouped.setdefault(key, []).extend(decode_records(batch.spans))
    for (shard, _generation), records in sorted(grouped.items()):
        _fold(folded, records, prefix=f"shard{shard}")
    return [f"{path} {value}" for path, value in sorted(folded.items())]


def write_flamegraph(tracer, path) -> Path:
    """Write :func:`collapsed_stacks` to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = collapsed_stacks(tracer)
    path.write_text("\n".join(lines) + ("\n" if lines else ""))
    return path
