"""Counter / gauge registry of the observability layer.

Counters accumulate deterministic event counts (plans computed, cache
hits); gauges sample instantaneous levels (queue depth, plan-cache hit
rate).  Neither carries timestamps — sampled values are pure functions of
the workload, so traced and untraced runs agree on them exactly.  The
registry is thread-safe: serving samples gauges from the dispatch loop
while workers execute.
"""

from __future__ import annotations

import threading
from typing import Dict, List

__all__ = ["Counter", "Gauge", "MetricsRegistry"]


class Counter:
    """A monotonically accumulating named count."""

    __slots__ = ("name", "total", "events", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.total = 0.0
        self.events = 0
        self._lock = threading.Lock()

    def add(self, value: float = 1.0) -> None:
        """Accumulate ``value`` (one event)."""
        with self._lock:
            self.total += float(value)
            self.events += 1

    def as_dict(self) -> Dict[str, float]:
        """Flat representation for reports."""
        with self._lock:
            return {"total": self.total, "events": float(self.events)}


class Gauge:
    """A sampled level: remembers last/min/max/mean over its samples."""

    __slots__ = ("name", "last", "min", "max", "sum", "samples", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.last = 0.0
        self.min = 0.0
        self.max = 0.0
        self.sum = 0.0
        self.samples = 0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Record one sample of the level."""
        value = float(value)
        with self._lock:
            if self.samples == 0:
                self.min = value
                self.max = value
            else:
                self.min = min(self.min, value)
                self.max = max(self.max, value)
            self.last = value
            self.sum += value
            self.samples += 1

    @property
    def mean(self) -> float:
        """Average over all samples (0 with no samples)."""
        with self._lock:
            return self.sum / self.samples if self.samples else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Flat representation for reports."""
        with self._lock:
            mean = self.sum / self.samples if self.samples else 0.0
            return {
                "last": self.last,
                "min": self.min,
                "max": self.max,
                "mean": mean,
                "samples": float(self.samples),
            }


class MetricsRegistry:
    """Name-keyed counters and gauges for one traced run."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = Counter(name)
                self._counters[name] = counter
            return counter

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        with self._lock:
            gauge = self._gauges.get(name)
            if gauge is None:
                gauge = Gauge(name)
                self._gauges[name] = gauge
            return gauge

    def counter_names(self) -> List[str]:
        """Registered counter names, sorted."""
        with self._lock:
            return sorted(self._counters)

    def gauge_names(self) -> List[str]:
        """Registered gauge names, sorted."""
        with self._lock:
            return sorted(self._gauges)

    def as_dict(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        """``{"counters": {...}, "gauges": {...}}``, names sorted."""
        return {
            "counters": {
                name: self.counter(name).as_dict()
                for name in self.counter_names()
            },
            "gauges": {
                name: self.gauge(name).as_dict() for name in self.gauge_names()
            },
        }
