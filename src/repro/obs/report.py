"""Phase-breakdown report: where time and deterministic counters went.

Aggregates finished spans by ancestry path (``simulate/snapshot/compute``)
into a tree of phases, each carrying

* ``count`` — how many spans landed in the phase,
* ``total_us`` — summed wall time (telemetry),
* ``counters`` — summed deterministic counters (cycles, bytes, MACs).

The text renderer prints the tree sorted by time within each parent with
a ``%parent`` column — the Fig. 7-9 style decomposition for an arbitrary
run.  Counter sums are exact: the attribution tests assert they reconcile
with :class:`~repro.accel.metrics.SimulationResult` totals.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .distributed import aggregate_shard_counters, shard_phase_totals
from .span import SpanRecord, span_paths
from .tracer import Tracer

__all__ = ["PhaseNode", "PhaseReport", "build_phase_report"]


def _child_key(sort: str):
    """Child ordering for renderers: ``"time"`` (descending, name tie-break)
    or ``"name"`` (run-to-run stable — wall times vary, names do not)."""
    if sort == "name":
        return lambda n: n.name
    return lambda n: (-n.total_us, n.name)


@dataclass
class PhaseNode:
    """Aggregate of every span that shares one ancestry path."""

    name: str
    path: str
    count: int = 0
    total_us: int = 0
    counters: Dict[str, float] = field(default_factory=dict)
    children: List["PhaseNode"] = field(default_factory=list)

    def absorb(self, record: SpanRecord) -> None:
        """Fold one span into this phase."""
        self.count += 1
        self.total_us += record.duration_us
        for counter, value in sorted(record.counters.items()):
            self.counters[counter] = self.counters.get(counter, 0.0) + value

    def child(self, name: str) -> "PhaseNode":
        """The named child phase (created on first use)."""
        for node in self.children:
            if node.name == name:
                return node
        path = name if not self.path else f"{self.path}/{name}"
        node = PhaseNode(name=name, path=path)
        self.children.append(node)
        return node

    def as_dict(self, sort: str = "time") -> Dict[str, object]:
        """JSON representation (children sorted by ``sort``)."""
        return {
            "name": self.name,
            "path": self.path,
            "count": self.count,
            "total_us": self.total_us,
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "children": [
                c.as_dict(sort)
                for c in sorted(self.children, key=_child_key(sort))
            ],
        }


@dataclass
class PhaseReport:
    """The aggregated phase tree of one traced run."""

    root: PhaseNode
    metrics: Dict[str, Dict[str, Dict[str, float]]] = field(default_factory=dict)
    #: per-shard stage-time view (multi-process runs): phase name ->
    #: ``{"per_shard": {shard: us}, "max_us", "mean_us", "imbalance"}``.
    #: ``imbalance`` is max/mean stage time — the paper's load-balance
    #: axis; 1.0 = perfectly balanced shards
    shards: Dict[str, Dict[str, object]] = field(default_factory=dict)
    #: global counters folded across every shard's flushed registry,
    #: each with its per-shard breakdown (``shard<N>`` keys)
    shard_counters: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def phase(self, path: str) -> Optional[PhaseNode]:
        """Look a phase up by its ``a/b/c`` path (``None`` if absent)."""
        node = self.root
        if not path:
            return node
        for part in path.split("/"):
            found = None
            for child in node.children:
                if child.name == part:
                    found = child
                    break
            if found is None:
                return None
            node = found
        return node

    def counter_total(self, path: str, counter: str) -> float:
        """A phase's summed counter (0.0 when the phase is absent)."""
        node = self.phase(path)
        if node is None:
            return 0.0
        return node.counters.get(counter, 0.0)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render_text(self, sort: str = "time") -> str:
        """The human-readable phase table (the ``repro trace`` output).

        ``sort="time"`` orders siblings by descending wall time (the
        profiling view); ``sort="name"`` orders them alphabetically, a
        row order that is stable across runs of the same workload.
        """
        key = _child_key(sort)
        lines = [
            f"{'phase':<44} {'count':>6} {'time_ms':>10} {'%parent':>8}  counters"
        ]

        def fmt_counters(counters: Dict[str, float]) -> str:
            return "  ".join(
                f"{name}={counters[name]:.6g}" for name in sorted(counters)
            )

        def walk(node: PhaseNode, parent_us: Optional[int], indent: int) -> None:
            share = (
                f"{100.0 * node.total_us / parent_us:.1f}%"
                if parent_us
                else "-"
            )
            label = ("  " * indent) + node.name
            lines.append(
                f"{label:<44} {node.count:>6} {node.total_us / 1e3:>10.3f} "
                f"{share:>8}  {fmt_counters(node.counters)}"
            )
            for child in sorted(node.children, key=key):
                walk(child, node.total_us, indent + 1)

        for top in sorted(self.root.children, key=key):
            walk(top, None, 0)
        if self.shards:
            lines.append("")
            lines.append(
                f"{'shard phase':<28} {'max_ms':>10} {'mean_ms':>10} "
                f"{'imbalance':>10}  per-shard ms"
            )
            for name in sorted(self.shards):
                view = self.shards[name]
                per_shard = view["per_shard"]
                detail = "  ".join(
                    f"s{shard}={per_shard[shard] / 1e3:.3f}"
                    for shard in sorted(per_shard)
                )
                lines.append(
                    f"{name:<28} {view['max_us'] / 1e3:>10.3f} "
                    f"{view['mean_us'] / 1e3:>10.3f} "
                    f"{view['imbalance']:>10.2f}  {detail}"
                )
        if self.shard_counters:
            lines.append("")
            lines.append(
                f"{'shard counter':<28} {'total':>12} {'events':>8}  per-shard"
            )
            for name in sorted(self.shard_counters):
                fold = self.shard_counters[name]
                detail = "  ".join(
                    f"{key_}={fold[key_]:.6g}"
                    for key_ in sorted(fold)
                    if key_.startswith("shard")
                )
                lines.append(
                    f"{name:<28} {fold['total']:>12.6g} "
                    f"{fold['events']:>8.0f}  {detail}"
                )
        gauges = self.metrics.get("gauges", {})
        if gauges:
            lines.append("")
            lines.append(f"{'gauge':<44} {'last':>10} {'min':>10} {'max':>10} {'mean':>10}")
            for name in sorted(gauges):
                g = gauges[name]
                lines.append(
                    f"{name:<44} {g['last']:>10.4g} {g['min']:>10.4g} "
                    f"{g['max']:>10.4g} {g['mean']:>10.4g}"
                )
        counters = self.metrics.get("counters", {})
        if counters:
            lines.append("")
            lines.append(f"{'counter':<44} {'total':>10} {'events':>10}")
            for name in sorted(counters):
                c = counters[name]
                lines.append(
                    f"{name:<44} {c['total']:>10.6g} {c['events']:>10.0f}"
                )
        return "\n".join(lines)

    def render_json(self, sort: str = "name") -> str:
        """The machine-readable report (name-sorted rows by default, so
        two reports of the same workload have rows in the same order)."""
        return json.dumps(
            {
                "phases": self.root.as_dict(sort),
                "metrics": self.metrics,
                "shards": {k: self.shards[k] for k in sorted(self.shards)},
                "shard_counters": {
                    k: self.shard_counters[k]
                    for k in sorted(self.shard_counters)
                },
            },
            indent=1,
        )


def build_phase_report(tracer: Tracer) -> PhaseReport:
    """Aggregate a tracer's finished spans into a :class:`PhaseReport`.

    Multi-process runs additionally get the per-shard imbalance view
    (max/mean stage time per shard-span name) and the cross-shard
    counter fold with per-shard breakdowns.
    """
    records = tracer.records
    paths = span_paths(records)
    root = PhaseNode(name="", path="")
    for record in records:
        node = root
        for part in paths[record.span_id].split("/"):
            node = node.child(part)
        node.absorb(record)
    shards: Dict[str, Dict[str, object]] = {}
    for name, per_shard in sorted(shard_phase_totals(tracer).items()):
        values = [per_shard[s] for s in sorted(per_shard)]
        mean_us = sum(values) / len(values)
        max_us = max(values)
        shards[name] = {
            "per_shard": {s: per_shard[s] for s in sorted(per_shard)},
            "max_us": max_us,
            "mean_us": mean_us,
            "imbalance": (max_us / mean_us) if mean_us > 0 else 0.0,
        }
    return PhaseReport(
        root=root,
        metrics=tracer.metrics.as_dict(),
        shards=shards,
        shard_counters=aggregate_shard_counters(tracer),
    )
