"""Phase-breakdown report: where time and deterministic counters went.

Aggregates finished spans by ancestry path (``simulate/snapshot/compute``)
into a tree of phases, each carrying

* ``count`` — how many spans landed in the phase,
* ``total_us`` — summed wall time (telemetry),
* ``counters`` — summed deterministic counters (cycles, bytes, MACs).

The text renderer prints the tree sorted by time within each parent with
a ``%parent`` column — the Fig. 7-9 style decomposition for an arbitrary
run.  Counter sums are exact: the attribution tests assert they reconcile
with :class:`~repro.accel.metrics.SimulationResult` totals.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .span import SpanRecord, span_paths
from .tracer import Tracer

__all__ = ["PhaseNode", "PhaseReport", "build_phase_report"]


@dataclass
class PhaseNode:
    """Aggregate of every span that shares one ancestry path."""

    name: str
    path: str
    count: int = 0
    total_us: int = 0
    counters: Dict[str, float] = field(default_factory=dict)
    children: List["PhaseNode"] = field(default_factory=list)

    def absorb(self, record: SpanRecord) -> None:
        """Fold one span into this phase."""
        self.count += 1
        self.total_us += record.duration_us
        for counter, value in sorted(record.counters.items()):
            self.counters[counter] = self.counters.get(counter, 0.0) + value

    def child(self, name: str) -> "PhaseNode":
        """The named child phase (created on first use)."""
        for node in self.children:
            if node.name == name:
                return node
        path = name if not self.path else f"{self.path}/{name}"
        node = PhaseNode(name=name, path=path)
        self.children.append(node)
        return node

    def as_dict(self) -> Dict[str, object]:
        """JSON representation (children sorted by time, descending)."""
        return {
            "name": self.name,
            "path": self.path,
            "count": self.count,
            "total_us": self.total_us,
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "children": [
                c.as_dict()
                for c in sorted(
                    self.children, key=lambda n: (-n.total_us, n.name)
                )
            ],
        }


@dataclass
class PhaseReport:
    """The aggregated phase tree of one traced run."""

    root: PhaseNode
    metrics: Dict[str, Dict[str, Dict[str, float]]] = field(default_factory=dict)

    def phase(self, path: str) -> Optional[PhaseNode]:
        """Look a phase up by its ``a/b/c`` path (``None`` if absent)."""
        node = self.root
        if not path:
            return node
        for part in path.split("/"):
            found = None
            for child in node.children:
                if child.name == part:
                    found = child
                    break
            if found is None:
                return None
            node = found
        return node

    def counter_total(self, path: str, counter: str) -> float:
        """A phase's summed counter (0.0 when the phase is absent)."""
        node = self.phase(path)
        if node is None:
            return 0.0
        return node.counters.get(counter, 0.0)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render_text(self) -> str:
        """The human-readable phase table (the ``repro trace`` output)."""
        lines = [
            f"{'phase':<44} {'count':>6} {'time_ms':>10} {'%parent':>8}  counters"
        ]

        def fmt_counters(counters: Dict[str, float]) -> str:
            return "  ".join(
                f"{name}={counters[name]:.6g}" for name in sorted(counters)
            )

        def walk(node: PhaseNode, parent_us: Optional[int], indent: int) -> None:
            share = (
                f"{100.0 * node.total_us / parent_us:.1f}%"
                if parent_us
                else "-"
            )
            label = ("  " * indent) + node.name
            lines.append(
                f"{label:<44} {node.count:>6} {node.total_us / 1e3:>10.3f} "
                f"{share:>8}  {fmt_counters(node.counters)}"
            )
            for child in sorted(
                node.children, key=lambda n: (-n.total_us, n.name)
            ):
                walk(child, node.total_us, indent + 1)

        for top in sorted(
            self.root.children, key=lambda n: (-n.total_us, n.name)
        ):
            walk(top, None, 0)
        gauges = self.metrics.get("gauges", {})
        if gauges:
            lines.append("")
            lines.append(f"{'gauge':<44} {'last':>10} {'min':>10} {'max':>10} {'mean':>10}")
            for name in sorted(gauges):
                g = gauges[name]
                lines.append(
                    f"{name:<44} {g['last']:>10.4g} {g['min']:>10.4g} "
                    f"{g['max']:>10.4g} {g['mean']:>10.4g}"
                )
        counters = self.metrics.get("counters", {})
        if counters:
            lines.append("")
            lines.append(f"{'counter':<44} {'total':>10} {'events':>10}")
            for name in sorted(counters):
                c = counters[name]
                lines.append(
                    f"{name:<44} {c['total']:>10.6g} {c['events']:>10.0f}"
                )
        return "\n".join(lines)

    def render_json(self) -> str:
        """The machine-readable report."""
        return json.dumps(
            {"phases": self.root.as_dict(), "metrics": self.metrics}, indent=1
        )


def build_phase_report(tracer: Tracer) -> PhaseReport:
    """Aggregate a tracer's finished spans into a :class:`PhaseReport`."""
    records = tracer.records
    paths = span_paths(records)
    root = PhaseNode(name="", path="")
    for record in records:
        node = root
        for part in paths[record.span_id].split("/"):
            node = node.child(part)
        node.absorb(record)
    return PhaseReport(root=root, metrics=tracer.metrics.as_dict())
