"""Trace sessions: install a tracer, run a workload, export everything.

The CLI's ``repro trace``, the ``--trace`` flags, and the bench runner's
``--trace DIR`` all go through :class:`TraceSession`: it installs a fresh
tracer for the duration of a ``with`` block and, on exit, writes

* ``trace.json`` — Chrome trace-event JSON (open in Perfetto; schema 2
  carries one pid track per process on multi-process runs),
* ``spans.jsonl`` — the raw span log, one JSON object per line,
* ``phases.json`` — the aggregated phase-breakdown report,
* ``flame.folded`` — the collapsed-stack flamegraph log,
* ``shard_spans.jsonl`` — the canonical merged shard-span log, written
  only when shard workers flushed batches (multi-process runs);
  byte-identical across runs of the same workload,

then validates the trace-event file against the schema so a broken
export fails the run rather than producing an unloadable artifact.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Union

from .distributed import write_shard_span_jsonl
from .export import validate_trace_file, write_chrome_trace, write_span_jsonl
from .flamegraph import FLAMEGRAPH_FILENAME, write_flamegraph
from .report import PhaseReport, build_phase_report
from .tracer import Tracer, install, uninstall

__all__ = ["TraceSession", "export_all"]

#: filenames a session writes into its output directory
TRACE_FILENAME = "trace.json"
SPANS_FILENAME = "spans.jsonl"
PHASES_FILENAME = "phases.json"
SHARD_SPANS_FILENAME = "shard_spans.jsonl"


def export_all(
    tracer: Tracer,
    out_dir: Union[str, Path],
    stem: Optional[str] = None,
) -> Dict[str, Path]:
    """Write trace + span log + phase report for ``tracer`` into ``out_dir``.

    ``stem`` prefixes the filenames (``<stem>.trace.json`` ...), which the
    bench runner uses to keep one trace per case in a single directory.
    Raises ``ValueError`` if the written trace fails schema validation.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    prefix = f"{stem}." if stem else ""
    report = build_phase_report(tracer)
    written = {
        "trace": write_chrome_trace(tracer, out_dir / f"{prefix}{TRACE_FILENAME}"),
        "spans": write_span_jsonl(tracer, out_dir / f"{prefix}{SPANS_FILENAME}"),
        "flame": write_flamegraph(
            tracer, out_dir / f"{prefix}{FLAMEGRAPH_FILENAME}"
        ),
    }
    phases = out_dir / f"{prefix}{PHASES_FILENAME}"
    phases.write_text(report.render_json())
    written["phases"] = phases
    if tracer.shard_batches:
        written["shard_spans"] = write_shard_span_jsonl(
            tracer, out_dir / f"{prefix}{SHARD_SPANS_FILENAME}"
        )
    errors = validate_trace_file(written["trace"])
    if errors:
        raise ValueError(
            f"exported trace {written['trace']} failed schema validation: "
            + "; ".join(errors)
        )
    return written


class TraceSession:
    """Context manager: trace a block of work and export on exit.

    ::

        with TraceSession("traces") as session:
            runner.compare("pubmed")
        print(session.report.render_text())

    Exports are skipped when the block raises, so a failing workload does
    not leave a half-written trace behind.
    """

    def __init__(
        self,
        out_dir: Optional[Union[str, Path]] = None,
        name: str = "repro",
        stem: Optional[str] = None,
    ):
        self.out_dir = Path(out_dir) if out_dir is not None else None
        self.stem = stem
        self.tracer = Tracer(name)
        self.report: Optional[PhaseReport] = None
        self.written: Dict[str, Path] = {}

    def __enter__(self) -> "TraceSession":
        install(self.tracer)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        uninstall()
        if exc_type is None:
            self.report = build_phase_report(self.tracer)
            if self.out_dir is not None:
                self.written = export_all(self.tracer, self.out_dir, self.stem)
        return False
