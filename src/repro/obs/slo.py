"""Declarative SLO monitoring over serving statistics.

An :class:`SLOTarget` names one service-level objective — a metric of
:class:`~repro.serving.stats.ServiceStats` (or its sharded subclass), a
direction, and a threshold.  :class:`SLOMonitor` evaluates a set of
targets against a finished run's stats into structured
:class:`HealthRecord`\\ s: one run-level record per target, plus one
record per served window for the latency target, so a report shows not
just *that* p95 latency breached but *which* windows breached it.

The monitor reads only the telemetry layer (wall-clock latencies,
shed/restart counters, overlap ratio) — never the deterministic
simulation results — so attaching it can never perturb parity.  Exit
semantics mirror ``repro lint``: healthy -> 0, any violated target -> 1
(``repro slo`` and ``--slo-json`` on serve/chaos).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "SLOTarget",
    "HealthRecord",
    "SLOReport",
    "SLOMonitor",
    "default_targets",
    "SLO_FILENAME",
]

#: default artifact name when a trace session exports an SLO report
SLO_FILENAME = "slo.json"

#: direction of an objective: "max" = observed must stay at or under the
#: threshold, "min" = observed must stay at or over it
_OPS: Dict[str, Callable[[float, float], bool]] = {
    "max": lambda observed, threshold: observed <= threshold,
    "min": lambda observed, threshold: observed >= threshold,
}


@dataclass(frozen=True)
class SLOTarget:
    """One declarative service-level objective."""

    #: stats metric this objective constrains (a key of
    #: ``ServiceStats.as_dict()`` plus ``shed_rate``/``restarts``)
    metric: str
    #: "max" (ceiling) or "min" (floor)
    op: str
    threshold: float
    #: short human label for reports; defaults to the metric name
    label: str = ""

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"op must be 'max' or 'min', got {self.op!r}")

    @property
    def name(self) -> str:
        return self.label or self.metric

    def ok(self, observed: float) -> bool:
        """Whether ``observed`` meets this objective."""
        return _OPS[self.op](observed, self.threshold)


@dataclass(frozen=True)
class HealthRecord:
    """One target evaluated against one scope (the run or one window)."""

    metric: str
    op: str
    threshold: float
    observed: float
    ok: bool
    #: the window index this record scopes to; ``None`` = whole run
    window: Optional[int] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "metric": self.metric,
            "op": self.op,
            "threshold": self.threshold,
            "observed": self.observed,
            "ok": self.ok,
            "window": self.window,
        }


def default_targets(
    p95_latency_s: float = 0.5,
    shed_rate: float = 0.0,
    restart_budget: float = 0.0,
    overlap_floor: float = 0.0,
) -> Tuple[SLOTarget, ...]:
    """The standard target set (the ``repro slo`` CLI's knobs).

    * ``p95_window_latency`` — 95th-percentile close-to-result window
      latency at or under ``p95_latency_s`` seconds;
    * ``shed_rate`` — fraction of closed windows dropped by load
      shedding at or under ``shed_rate``;
    * ``restart_budget`` — shard-worker restarts plus durable resumes
      at or under ``restart_budget`` (0 for single-process,
      non-durable runs);
    * ``overlap_floor`` — pipeline overlap ratio at or over
      ``overlap_floor`` (0.0 disables the floor: a zero-window run
      legitimately overlaps nothing).
    """
    return (
        SLOTarget("p95_latency_s", "max", p95_latency_s, "p95_window_latency"),
        SLOTarget("shed_rate", "max", shed_rate),
        SLOTarget("restarts", "max", restart_budget, "restart_budget"),
        SLOTarget("overlap_ratio", "min", overlap_floor, "overlap_floor"),
    )


@dataclass
class SLOReport:
    """Every health record one evaluation produced."""

    targets: Tuple[SLOTarget, ...]
    records: List[HealthRecord] = field(default_factory=list)

    @property
    def run_records(self) -> List[HealthRecord]:
        """The run-level record of each target, in target order."""
        return [r for r in self.records if r.window is None]

    @property
    def window_records(self) -> List[HealthRecord]:
        """Per-window records (latency target), in window order."""
        return [r for r in self.records if r.window is not None]

    @property
    def violations(self) -> List[HealthRecord]:
        """Run-level records that missed their objective."""
        return [r for r in self.run_records if not r.ok]

    @property
    def healthy(self) -> bool:
        """Whether every run-level objective was met."""
        return not self.violations

    @property
    def exit_code(self) -> int:
        """Process exit code: 0 healthy, 1 violated (the lint contract)."""
        return 0 if self.healthy else 1

    def as_dict(self) -> Dict[str, object]:
        return {
            "healthy": self.healthy,
            "targets": [
                {
                    "metric": t.metric,
                    "op": t.op,
                    "threshold": t.threshold,
                    "label": t.name,
                }
                for t in self.targets
            ],
            "run": [r.as_dict() for r in self.run_records],
            "windows": [r.as_dict() for r in self.window_records],
        }

    def render_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def render_text(self) -> str:
        """Fixed-width report, one line per run-level objective."""
        lines = [f"SLO {'OK' if self.healthy else 'VIOLATED'}"]
        for record in self.run_records:
            target = next(
                (t for t in self.targets if t.metric == record.metric), None
            )
            label = target.name if target is not None else record.metric
            bound = "<=" if record.op == "max" else ">="
            status = "ok " if record.ok else "FAIL"
            lines.append(
                f"  [{status}] {label:<20} {record.observed:>12.6g} "
                f"{bound} {record.threshold:g}"
            )
        breached = [r for r in self.window_records if not r.ok]
        if breached:
            worst = sorted(breached, key=lambda r: -r.observed)[:5]
            shown = ", ".join(
                f"w{r.window}={1e3 * r.observed:.2f}ms" for r in worst
            )
            lines.append(
                f"  {len(breached)} window(s) over the latency target "
                f"(worst: {shown})"
            )
        return "\n".join(lines)

    def write(self, path) -> Path:
        """Write the JSON report to ``path``; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.render_json() + "\n")
        return path


class SLOMonitor:
    """Evaluates declarative targets against a run's service stats."""

    def __init__(self, targets: Optional[Tuple[SLOTarget, ...]] = None):
        self.targets = tuple(targets) if targets is not None else default_targets()

    # ------------------------------------------------------------------
    # Metric extraction
    # ------------------------------------------------------------------
    @staticmethod
    def observe(stats, metric: str) -> float:
        """Read ``metric`` off ``stats`` (property, field, or derived).

        ``restarts`` reads 0 on single-process stats so one target set
        covers sharded and unsharded runs alike.  Durable resumes count
        against the same budget: a crash-and-recover cycle is a process
        restart from the operator's point of view, whether the process
        that died was a shard worker or the whole service.
        """
        if metric == "restarts":
            return float(
                getattr(stats, "restarts", 0) + getattr(stats, "resumes", 0)
            )
        value = getattr(stats, metric, None)
        if value is None:
            raise KeyError(f"unknown SLO metric {metric!r}")
        return float(value)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, stats) -> SLOReport:
        """Evaluate every target against ``stats``.

        Emits one run-level :class:`HealthRecord` per target; latency
        targets additionally emit one record per served window (the
        window's own latency against the p95 threshold), so breaching
        windows are identifiable by index.
        """
        report = SLOReport(targets=self.targets)
        for target in self.targets:
            observed = self.observe(stats, target.metric)
            report.records.append(
                HealthRecord(
                    metric=target.metric,
                    op=target.op,
                    threshold=target.threshold,
                    observed=observed,
                    ok=target.ok(observed),
                )
            )
            if target.metric == "p95_latency_s":
                for record in stats.records:
                    report.records.append(
                        HealthRecord(
                            metric=target.metric,
                            op=target.op,
                            threshold=target.threshold,
                            observed=record.latency_s,
                            ok=target.ok(record.latency_s),
                            window=record.index,
                        )
                    )
        return report
