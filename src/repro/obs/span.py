"""Span model of the tracing layer.

A *span* is one timed phase of work — a planner stage, one snapshot's
simulation, a serving window's plan resolution.  Spans nest (per thread)
and carry two distinct payloads that the rest of the layer keeps strictly
apart:

* ``attrs`` — identifying attributes (snapshot index, tile-group id,
  ``alpha``/``Ps``/``Pv``, plan decision, ...);
* ``counters`` — *deterministic* quantities attributed to the phase
  (cycles, bytes moved, MACs).  Counters are pure functions of the
  workload: the phase-breakdown report sums them per phase and the
  attribution tests check they reconcile with the simulator's totals.

Wall-clock timestamps (``start_us`` / ``duration_us``) are telemetry.
They are read through :func:`repro.serving.stats.wall_clock` — the repo's
single sanctioned wall-clock seam — and never mix into ``counters``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

__all__ = ["AttrValue", "SpanRecord", "Span", "NoopSpan", "NOOP_SPAN"]

#: attribute values allowed on a span (kept JSON-serializable by design)
AttrValue = Union[str, int, float, bool, None]


@dataclass
class SpanRecord:
    """One finished span, as stored by the tracer and fed to exporters."""

    name: str
    span_id: int
    parent_id: Optional[int]
    thread: int  # stable per-thread index assigned by the tracer
    depth: int  # nesting depth on its thread (0 = thread root)
    start_us: int  # microseconds since the tracer's epoch (telemetry)
    duration_us: int  # telemetry; never a deterministic quantity
    attrs: Dict[str, AttrValue] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """JSONL-exporter representation (one line per span)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread": self.thread,
            "depth": self.depth,
            "start_us": self.start_us,
            "duration_us": self.duration_us,
            "attrs": dict(self.attrs),
            "counters": dict(self.counters),
        }


class Span:
    """A live span; use as a context manager (``with tracer.span(...)``)."""

    __slots__ = ("_tracer", "name", "attrs", "counters", "_start_us", "_open")

    #: live spans record; the no-op twin reports False so call sites can
    #: guard expensive attribute computation behind one boolean check
    enabled = True

    def __init__(self, tracer, name: str, attrs: Dict[str, AttrValue]):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.counters: Dict[str, float] = {}
        self._start_us = 0
        self._open = False

    # ------------------------------------------------------------------
    # Payload
    # ------------------------------------------------------------------
    def set_attr(self, key: str, value: AttrValue) -> "Span":
        """Attach one identifying attribute."""
        self.attrs[key] = value
        return self

    def add(self, counter: str, value: float) -> "Span":
        """Accumulate a deterministic counter attributed to this phase."""
        self.counters[counter] = self.counters.get(counter, 0.0) + float(value)
        return self

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "Span":
        self._start_us = self._tracer._begin(self)
        self._open = True
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._end(self, self._start_us)
        self._open = False
        return False

    def __repr__(self) -> str:
        return f"Span({self.name!r}, attrs={self.attrs!r}, counters={self.counters!r})"


class NoopSpan:
    """The disabled-mode span: every operation is a cheap no-op.

    A single shared instance (:data:`NOOP_SPAN`) is handed out by
    :func:`repro.obs.span` when no tracer is installed, so a disabled hot
    path pays one module-global ``None`` check plus two trivial method
    calls — and allocates nothing.
    """

    __slots__ = ()

    enabled = False

    def set_attr(self, key: str, value: AttrValue) -> "NoopSpan":
        return self

    def add(self, counter: str, value: float) -> "NoopSpan":
        return self

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def __repr__(self) -> str:
        return "NoopSpan()"


#: the shared disabled-mode span
NOOP_SPAN = NoopSpan()


def span_paths(records: List[SpanRecord]) -> Dict[int, str]:
    """``span_id -> "a/b/c"`` ancestry paths for a record set.

    The phase-breakdown report and exporters aggregate by path so that a
    ``compute`` span under ``simulate/snapshot`` never merges with an
    unrelated ``compute`` elsewhere.
    """
    by_id = {r.span_id: r for r in records}
    paths: Dict[int, str] = {}

    def resolve(record: SpanRecord) -> str:
        cached = paths.get(record.span_id)
        if cached is not None:
            return cached
        parent = by_id.get(record.parent_id) if record.parent_id else None
        path = record.name if parent is None else f"{resolve(parent)}/{record.name}"
        paths[record.span_id] = path
        return path

    for record in records:
        resolve(record)
    return paths
