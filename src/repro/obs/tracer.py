"""The tracer and the process-global tracing switch.

Design constraints (see ``docs/observability.md``):

* **Zero-cost-when-off.**  Instrumented call sites go through the
  module-level :func:`span` / :func:`counter_add` / :func:`gauge_set`
  helpers.  With no tracer installed these are one global ``None`` check
  plus a trivial no-op — no allocation, no clock read — so the bench
  suite's deterministic counters are bit-identical with tracing on or
  off (asserted by ``tests/test_obs_integration.py``).
* **Determinism-safe.**  The only wall-clock read is
  :func:`repro.serving.stats.wall_clock` — the same sanctioned seam the
  serving telemetry uses — and timestamps live only in span telemetry
  fields, never in the deterministic counters.
* **Thread-safe.**  The serving layer runs ingest, dispatch, and worker
  threads concurrently.  Span nesting is tracked per thread
  (``threading.local``); finished records append under one lock; each
  thread gets a stable small index for the Chrome trace ``tid``.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable, Dict, Iterator, List, Optional

from .metrics import MetricsRegistry
from .span import NOOP_SPAN, AttrValue, Span, SpanRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .distributed import ShardSpanBatch

__all__ = [
    "Tracer",
    "active_tracer",
    "tracing_enabled",
    "install",
    "uninstall",
    "tracing",
    "span",
    "counter_add",
    "gauge_set",
]


def _sanctioned_clock() -> Callable[[], float]:
    """The repo's single wall-clock seam, imported lazily.

    Instrumented modules (``core/``, ``accel/``) import ``repro.obs`` at
    module level while ``repro.serving`` imports them back; binding the
    clock at :class:`Tracer` construction time (tracing is only ever
    switched on long after import) keeps the layers acyclic without
    duplicating the DET001-sanctioned wall-clock read.
    """
    from ..serving.stats import wall_clock

    return wall_clock


class Tracer:
    """Collects spans and metrics for one traced run."""

    def __init__(self, name: str = "repro"):
        self.name = name
        self.metrics = MetricsRegistry()
        wall_clock = _sanctioned_clock()
        self._clock = wall_clock
        self._epoch = wall_clock()
        self._lock = threading.Lock()
        self._records: List[SpanRecord] = []
        self._local = threading.local()
        self._next_span_id = 1
        self._threads: Dict[int, int] = {}  # thread ident -> stable index
        self._thread_names: List[str] = []  # index -> name at first span
        # Span batches flushed back by shard worker processes (see
        # repro.obs.distributed): the coordinator's tracer carries them so
        # every exporter sees the whole multi-process run.
        self._shard_batches: List["ShardSpanBatch"] = []

    # ------------------------------------------------------------------
    # Span creation
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: AttrValue) -> Span:
        """A new span, to be entered with ``with``."""
        return Span(self, name, attrs)

    def _now_us(self) -> int:
        return int((self._clock() - self._epoch) * 1e6)

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _thread_index(self) -> int:
        ident = threading.get_ident()
        index = self._threads.get(ident)
        if index is None:
            with self._lock:
                index = self._threads.get(ident)
                if index is None:
                    index = len(self._threads)
                    self._threads[ident] = index
                    self._thread_names.append(threading.current_thread().name)
        return index

    def _begin(self, live: Span) -> int:
        stack = self._stack()
        with self._lock:
            span_id = self._next_span_id
            self._next_span_id += 1
        parent_id = stack[-1][0] if stack else None
        stack.append((span_id, parent_id, len(stack)))
        return self._now_us()

    def _end(self, live: Span, start_us: int) -> None:
        end_us = self._now_us()
        stack = self._stack()
        span_id, parent_id, depth = stack.pop()
        record = SpanRecord(
            name=live.name,
            span_id=span_id,
            parent_id=parent_id,
            thread=self._thread_index(),
            depth=depth,
            start_us=start_us,
            duration_us=max(end_us - start_us, 0),
            attrs=live.attrs,
            counters=live.counters,
        )
        with self._lock:
            self._records.append(record)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def epoch_s(self) -> float:
        """The tracer's wall-clock zero, in :func:`wall_clock` seconds.

        Span timestamps are microseconds past this epoch.  The clock is
        ``time.perf_counter`` (CLOCK_MONOTONIC), which is comparable
        across processes on one host — what lets the coordinator place
        shard-worker spans on its own timeline (telemetry only)."""
        return self._epoch

    def current_span_id(self) -> Optional[int]:
        """The innermost open span's id on the calling thread (or None).

        The trace-context seam: the coordinator reads this inside its
        ``dist.serve`` span to hand workers the parent span id their
        flushed spans nest under."""
        stack = self._stack()
        return stack[-1][0] if stack else None

    @property
    def records(self) -> List[SpanRecord]:
        """Finished spans, ordered by start time (ties by span id)."""
        with self._lock:
            records = list(self._records)
        return sorted(records, key=lambda r: (r.start_us, r.span_id))

    def drain(self) -> List[SpanRecord]:
        """Remove and return every finished span, in span-id order.

        The shard-worker flush primitive: the worker drains its local
        tracer at each window boundary and ships the batch back to the
        coordinator, so span memory never grows with the run length.
        Span-id order is creation order — deterministic for the
        single-threaded worker loop."""
        with self._lock:
            records, self._records = self._records, []
        return sorted(records, key=lambda r: r.span_id)

    # ------------------------------------------------------------------
    # Shard batches (multi-process runs)
    # ------------------------------------------------------------------
    def add_shard_batch(self, batch: "ShardSpanBatch") -> None:
        """Attach one shard worker's flushed span batch to this tracer."""
        with self._lock:
            self._shard_batches.append(batch)

    @property
    def shard_batches(self) -> List["ShardSpanBatch"]:
        """Every attached shard batch, in deterministic merge order
        (shard, then generation, then window)."""
        with self._lock:
            batches = list(self._shard_batches)
        return sorted(
            batches, key=lambda b: (b.context.shard, b.context.generation, b.window)
        )

    def thread_names(self) -> List[str]:
        """Stable-index -> thread-name mapping (Chrome trace metadata)."""
        with self._lock:
            return list(self._thread_names)

    def find(self, name: str) -> List[SpanRecord]:
        """All finished spans with exactly this name (test helper)."""
        return [r for r in self.records if r.name == name]

    def __repr__(self) -> str:
        return f"Tracer({self.name!r}, spans={len(self._records)})"


# ---------------------------------------------------------------------------
# The process-global switch
# ---------------------------------------------------------------------------
_ACTIVE: Optional[Tracer] = None


def active_tracer() -> Optional[Tracer]:
    """The installed tracer, or ``None`` when tracing is off."""
    return _ACTIVE


def tracing_enabled() -> bool:
    """Whether a tracer is currently installed."""
    return _ACTIVE is not None


def install(tracer: Tracer) -> Tracer:
    """Make ``tracer`` the process-global tracer (error if one is active)."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError(
            f"a tracer is already installed ({_ACTIVE!r}); uninstall it first"
        )
    _ACTIVE = tracer
    return tracer


def uninstall() -> Optional[Tracer]:
    """Remove and return the installed tracer (no-op when none)."""
    global _ACTIVE
    tracer, _ACTIVE = _ACTIVE, None
    return tracer


@contextmanager
def tracing(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Install a tracer for the duration of a ``with`` block."""
    active = install(tracer if tracer is not None else Tracer())
    try:
        yield active
    finally:
        uninstall()


def span(name: str, **attrs: AttrValue):
    """A span on the installed tracer, or the shared no-op when off.

    The instrumentation entry point: ``with obs.span("tiling") as sp:``.
    Disabled cost: one global read and a shared-singleton return.
    """
    tracer = _ACTIVE
    if tracer is None:
        return NOOP_SPAN
    return tracer.span(name, **attrs)


def counter_add(name: str, value: float) -> None:
    """Bump a named counter on the installed tracer's metrics registry."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.metrics.counter(name).add(value)


def gauge_set(name: str, value: float) -> None:
    """Record a gauge sample on the installed tracer's metrics registry."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.metrics.gauge(name).set(value)
