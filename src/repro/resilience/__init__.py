"""``repro.resilience`` — fault injection and fault tolerance, both halves.

**Hardware half** (:mod:`repro.resilience.faults`): a seeded, immutable
:class:`FaultModel` (failed tiles, links, Re-Link bypasses) consumed by
:mod:`repro.accel.routing` (detours around dead links, bypass fallbacks),
:mod:`repro.accel.noc` (degraded path counts and hop averages) and
:mod:`repro.accel.simulator` (compute remapping onto surviving tiles plus
a per-class reroute-penalty breakdown).

**Serving half** (:mod:`repro.resilience.policies` /
:mod:`repro.resilience.chaos`): retry with exponential backoff and a
per-window deadline, a circuit breaker that serves the last-good plan
through replan storms, and a seeded :class:`ChaosSchedule` (worker
crashes, injected latency, poison events) driving end-to-end chaos tests.

All fault hooks are **off by default**; with ``faults=None`` and no chaos
schedule the fault-free path is bit-identical to the unfaulted code (the
bench counters gate this in CI).  See ``docs/resilience.md``.
"""

from .chaos import (
    ChaosReport,
    ChaosSchedule,
    InjectedFault,
    ShardKillSchedule,
    run_chaos,
)
from .faults import FaultModel, FaultSpecError, parse_fault_spec
from .policies import BreakerConfig, CircuitBreaker, RetryPolicy

__all__ = [
    "FaultModel",
    "FaultSpecError",
    "parse_fault_spec",
    "RetryPolicy",
    "BreakerConfig",
    "CircuitBreaker",
    "ChaosSchedule",
    "ShardKillSchedule",
    "ChaosReport",
    "InjectedFault",
    "run_chaos",
]
