"""Chaos harness: seeded worker crashes, injected latency, poison events.

A :class:`ChaosSchedule` is a *pure function* from ``(seed, site)`` to a
fault decision — no mutable state, no wall clock — so two runs with the
same seed and schedule inject exactly the same faults at exactly the same
logical sites (window index x attempt, event position).  That is what
makes end-to-end chaos runs replayable: the deterministic portion of the
outcome (:class:`ChaosReport`) is byte-identical across runs.

Three fault families:

* **crashes** — :meth:`ChaosSchedule.crashes` decides per (window,
  attempt) whether the worker raises :class:`InjectedFault` instead of
  simulating; the service's retry policy absorbs them (or records a
  permanent window failure once the budget is spent);
* **latency** — :meth:`ChaosSchedule.latency` returns extra seconds a
  worker sleeps before simulating (wall-clock telemetry moves, results
  don't);
* **poison events** — :meth:`ChaosSchedule.inject` wraps an event stream
  and splices in malformed :class:`~repro.graphs.continuous.EdgeEvent`\\ s
  (non-finite timestamps, out-of-range vertex ids) that the hardened
  ingest quarantines into its dead-letter queue.

A fourth, sharded-only family lives in :class:`ShardKillSchedule`:
**real SIGKILLs** of shard worker processes at scheduled windows.
Unlike the cooperative ``crash_windows`` hook (the worker ``_exit``\\ s
itself at a clean point), the victim gets no chance to clean up — the
coordinator must reclaim its orphaned shared-memory segments and
half-written queue state through the same restart path a production
OOM kill would exercise.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, TYPE_CHECKING

import numpy as np

from ..graphs.continuous import EdgeEvent
from .policies import BreakerConfig, RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (serving imports us)
    from ..core.plan import DGNNSpec
    from ..ditile import DiTileAccelerator
    from ..graphs.continuous import ContinuousDynamicGraph
    from ..serving.service import ServiceConfig, ServingReport

__all__ = [
    "InjectedFault",
    "ChaosSchedule",
    "ShardKillSchedule",
    "ChaosReport",
    "run_chaos",
]

# Decision domains, mixed into the seed so the draw streams are independent.
_CRASH = 1
_LATENCY = 2
_POISON = 3
_POISON_KIND = 4
_SIGKILL = 5


class InjectedFault(RuntimeError):
    """A deliberately injected worker failure (chaos testing only)."""


@dataclass(frozen=True)
class ChaosSchedule:
    """Seeded fault-injection schedule for one service run."""

    seed: int = 0
    #: probability a given (window, attempt) execution crashes
    crash_rate: float = 0.0
    #: probability a given (window, attempt) execution is delayed
    latency_rate: float = 0.0
    #: injected delay, in seconds, when latency fires
    latency_s: float = 0.0
    #: probability a poison event is spliced in after a stream position
    poison_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("crash_rate", "latency_rate", "poison_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.latency_s < 0:
            raise ValueError("latency_s must be >= 0")

    @property
    def is_quiet(self) -> bool:
        """Whether this schedule can never inject anything."""
        return (
            self.crash_rate == 0.0
            and self.latency_rate == 0.0
            and self.poison_rate == 0.0
        )

    def describe(self) -> str:
        """Human-readable one-liner (the ``repro chaos serve`` header)."""
        if self.is_quiet:
            return f"seed={self.seed}, quiet"
        return (
            f"seed={self.seed}, crash={self.crash_rate:g}, "
            f"latency={self.latency_rate:g}x{self.latency_s:g}s, "
            f"poison={self.poison_rate:g}"
        )

    # ------------------------------------------------------------------
    # Decision draws (stateless, keyed by logical site)
    # ------------------------------------------------------------------
    def _u(self, domain: int, *key: int) -> float:
        return float(np.random.default_rng((self.seed, domain, *key)).random())

    def crashes(self, window_index: int, attempt: int) -> bool:
        """Whether execution attempt ``attempt`` of a window crashes."""
        if self.crash_rate == 0.0:
            return False
        return self._u(_CRASH, window_index, attempt) < self.crash_rate

    def latency(self, window_index: int, attempt: int) -> float:
        """Extra seconds this execution attempt is delayed (0 if none)."""
        if self.latency_rate == 0.0 or self.latency_s == 0.0:
            return 0.0
        if self._u(_LATENCY, window_index, attempt) < self.latency_rate:
            return self.latency_s
        return 0.0

    def poison_after(
        self, position: int, time: float, num_vertices: Optional[int]
    ) -> Optional[EdgeEvent]:
        """The malformed event spliced in after stream position ``position``.

        Alternates (by seeded draw) between a non-finite-timestamp event
        and an out-of-range-vertex event; without ``num_vertices`` only
        the timestamp form is produced.
        """
        if self.poison_rate == 0.0:
            return None
        if self._u(_POISON, position) >= self.poison_rate:
            return None
        bad_vertex = (
            num_vertices is not None
            and self._u(_POISON_KIND, position) < 0.5
        )
        if bad_vertex:
            assert num_vertices is not None
            return EdgeEvent(time, num_vertices + position % 7, 0, "add")
        return EdgeEvent(float("nan"), 0, 0, "add")

    def inject(
        self, events: Iterable[EdgeEvent], num_vertices: Optional[int] = None
    ) -> Iterator[EdgeEvent]:
        """Yield ``events`` with scheduled poison events spliced in."""
        for position, event in enumerate(events):
            yield event
            poison = self.poison_after(position, event.time, num_vertices)
            if poison is not None:
                yield poison


@dataclass(frozen=True)
class ShardKillSchedule:
    """Scheduled real SIGKILLs of shard workers (sharded runs only).

    Each ``(shard, window)`` pair makes the coordinator deliver an
    uncatchable ``SIGKILL`` to the shard's generation-0 worker right
    before gathering that window, then restart it through the normal
    restart path.  The kill sites are part of the schedule — not drawn
    at run time — so repeated runs kill identically and the resulting
    :class:`ChaosReport` (restart and sigkill counts included)
    byte-compares.
    """

    kills: Tuple[Tuple[int, int], ...] = ()

    @classmethod
    def sample(
        cls,
        seed: int,
        shards: int,
        num_windows: int,
        kills: int = 1,
        margin: int = 10,
    ) -> "ShardKillSchedule":
        """Draw ``kills`` distinct kill sites from a seeded rng.

        Windows are drawn from ``[0, num_windows - margin)`` — a killed
        worker must still have windows left to serve, or its death can
        race the end of the stream and the restart count stops being
        deterministic.  With too few windows for the margin, no kills
        are scheduled.
        """
        if shards < 1 or kills < 1:
            return cls()
        horizon = num_windows - margin
        if horizon <= 0:
            return cls()
        rng = np.random.default_rng((seed, _SIGKILL))
        sites = [(s, w) for s in range(shards) for w in range(horizon)]
        take = min(kills, len(sites))
        picked = rng.choice(len(sites), size=take, replace=False)
        return cls(kills=tuple(sorted(sites[i] for i in picked)))

    def describe(self) -> str:
        """Human-readable one-liner (the ``repro chaos serve`` header)."""
        if not self.kills:
            return "no kills scheduled"
        sites = ", ".join(f"shard{s}@w{w}" for s, w in self.kills)
        return f"SIGKILL {sites}"


@dataclass
class ChaosReport:
    """The *deterministic* outcome of one chaos run.

    Everything here is a pure function of (stream, spec, config,
    schedule): simulated cycles, plan decisions, retry/failure/quarantine
    counts.  Wall-clock telemetry (latencies, throughput) is deliberately
    excluded so :meth:`to_json` byte-compares across identical runs.
    """

    windows: int = 0
    windows_failed: int = 0
    retries: int = 0
    quarantined_events: int = 0
    breaker_trips: int = 0
    breaker_hits: int = 0
    #: shard-worker restarts (sharded runs; cooperative crashes + kills)
    restarts: int = 0
    #: real SIGKILLs delivered by a :class:`ShardKillSchedule`
    sigkills: int = 0
    #: 1 when the run resumed from a durable checkpoint
    resumes: int = 0
    #: windows restored from the checkpoint on a resumed run
    recovered_windows: int = 0
    plan_decisions: List[str] = field(default_factory=list)
    per_window_cycles: List[float] = field(default_factory=list)
    failures: List[Dict[str, object]] = field(default_factory=list)

    @property
    def total_cycles(self) -> float:
        """Accelerator cycles over all successfully served windows."""
        return sum(self.per_window_cycles)

    def as_dict(self) -> Dict[str, object]:
        """Flat JSON-ready mapping (stable key order via :meth:`to_json`)."""
        return {
            "windows": self.windows,
            "windows_failed": self.windows_failed,
            "retries": self.retries,
            "quarantined_events": self.quarantined_events,
            "breaker_trips": self.breaker_trips,
            "breaker_hits": self.breaker_hits,
            "restarts": self.restarts,
            "sigkills": self.sigkills,
            "resumes": self.resumes,
            "recovered_windows": self.recovered_windows,
            "plan_decisions": list(self.plan_decisions),
            "per_window_cycles": list(self.per_window_cycles),
            "failures": list(self.failures),
            "total_cycles": self.total_cycles,
        }

    def to_json(self) -> str:
        """Canonical serialization for byte-identity comparisons."""
        return json.dumps(self.as_dict(), sort_keys=True, indent=2)

    def summary(self) -> str:
        """Human-readable chaos outcome."""
        line = (
            f"chaos outcome      {self.windows} windows served, "
            f"{self.windows_failed} failed permanently, "
            f"{self.retries} retries, "
            f"{self.quarantined_events} events quarantined, "
            f"breaker {self.breaker_trips} trips / "
            f"{self.breaker_hits} short-circuits"
        )
        if self.restarts or self.sigkills:
            line += (
                f", {self.restarts} restarts"
                f" ({self.sigkills} sigkilled)"
            )
        if self.resumes:
            line += f", resumed with {self.recovered_windows} recovered"
        return line


def chaos_report_from(report: "ServingReport") -> ChaosReport:
    """Extract the deterministic portion of a :class:`ServingReport`."""
    stats = report.stats
    return ChaosReport(
        windows=len(report.results),
        windows_failed=stats.windows_failed,
        retries=stats.retries,
        quarantined_events=stats.quarantined_events,
        breaker_trips=stats.breaker_trips,
        breaker_hits=stats.plan_breaker_hits,
        restarts=getattr(stats, "restarts", 0),
        sigkills=getattr(stats, "sigkills", 0),
        resumes=getattr(stats, "resumes", 0),
        recovered_windows=getattr(stats, "recovered_windows", 0),
        plan_decisions=[r.plan_decision for r in stats.records],
        per_window_cycles=[r.execution_cycles for r in report.results],
        failures=[
            {"index": f.index, "attempts": f.attempts, "error": f.error}
            for f in stats.failures
        ],
    )


def run_chaos(
    stream: "ContinuousDynamicGraph",
    spec: "DGNNSpec",
    schedule: ChaosSchedule,
    config: Optional["ServiceConfig"] = None,
    model: Optional["DiTileAccelerator"] = None,
    shards: int = 0,
    shard_kills: Optional[ShardKillSchedule] = None,
) -> "tuple[ServingReport, ChaosReport]":
    """End-to-end chaos run: serve ``stream`` under ``schedule``.

    Starts from ``config`` (or a resilient default with retry, breaker
    and quarantine enabled), forces the schedule in, and returns both the
    full :class:`~repro.serving.service.ServingReport` and the
    deterministic :class:`ChaosReport` distilled from it.

    ``shards >= 1`` runs the chaos campaign through the sharded
    multi-process service (:class:`~repro.dist.ShardedService`) instead
    — worker teardown is guaranteed by its ``try/finally`` shutdown, so
    a failed run never leaks orphan shard processes.  Poison injection
    happens before routing and crash/latency decisions are keyed by
    ``(window, attempt)`` at the coordinator, so the resulting
    :class:`ChaosReport` is byte-identical for every shard count.
    """
    from dataclasses import replace

    from ..serving.service import ServiceConfig, StreamingService

    if config is None:
        config = ServiceConfig(
            retry=RetryPolicy(max_attempts=4, backoff_s=0.0005),
            breaker=BreakerConfig(),
            quarantine=True,
        )
    config = replace(config, chaos=schedule)
    if config.retry is None:
        raise ValueError(
            "chaos runs need a retry policy; a bare crash would abort the "
            "stream instead of degrading gracefully"
        )
    if shards >= 1:
        # Imported lazily: repro.dist pulls in the serving layer, which
        # imports this module — a top-level import would be circular.
        from ..dist import ShardedConfig, ShardedService

        sharded = ShardedService(
            model,
            ShardedConfig(
                shards=shards,
                service=config,
                sigkill_windows=(
                    shard_kills.kills if shard_kills is not None else ()
                ),
                # SIGKILLed generations need restart headroom on top of
                # the default budget.
                max_restarts=2
                + (len(shard_kills.kills) if shard_kills is not None else 0),
            ),
        )
        report = sharded.serve(stream, spec)
        return report, chaos_report_from(report)
    if shard_kills is not None and shard_kills.kills:
        raise ValueError("shard_kills requires shards >= 1 (worker processes)")
    service = StreamingService(model, config)
    report = service.serve(stream, spec)
    return report, chaos_report_from(report)
