"""Deterministic hardware fault model for the reconfigurable tile array.

The paper's vertical-ring Re-Link bypasses (§6) are exactly the mechanism
a deployment leans on when tiles or links fail; this module describes
*which* elements have failed so the routing, NoC and simulator layers can
model the degraded array:

* **failed tiles** — the tile's PEs and router are dead; its share of the
  compute is remapped onto the surviving tiles, and routes treat all of
  its incident links as down;
* **failed links** — one undirected physical link (a ring segment or a
  mesh edge) is down; rings route the long way around, meshes detour;
* **failed Re-Link bypasses** — one column's vertical bypass is down;
  irregular traffic in that column falls back to the plain vertical ring.

Fault sets are **seeded and nested**: :meth:`FaultModel.sample` draws one
uniform per element from a fixed-order stream, so raising the fault rate
under the same seed only ever *adds* failures.  That nesting is what the
fault-sweep monotonicity guarantee (more faults never means fewer cycles)
rests on.

Everything here is pure data — no wall clock, no global RNG — so the
fault-free path (``FaultModel.none()`` or ``faults=None``) stays
bit-identical to the unfaulted code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from ..accel.config import HardwareConfig

__all__ = ["FaultModel", "FaultSpecError", "parse_fault_spec"]

Link = Tuple[int, int]


class FaultSpecError(ValueError):
    """A ``--faults`` specification string could not be parsed."""


def _normalize(a: int, b: int) -> Link:
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class FaultModel:
    """One immutable set of failed array elements."""

    failed_tiles: FrozenSet[int] = field(default_factory=frozenset)
    failed_links: FrozenSet[Link] = field(default_factory=frozenset)
    failed_relinks: FrozenSet[int] = field(default_factory=frozenset)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def none(cls) -> "FaultModel":
        """The fault-free array."""
        return cls()

    @classmethod
    def sample(
        cls,
        hardware: HardwareConfig,
        tile_rate: float = 0.0,
        link_rate: float = 0.0,
        relink_rate: float = 0.0,
        seed: int = 0,
    ) -> "FaultModel":
        """Seeded element-wise failure sampling.

        One uniform is drawn per element (tiles, then the sorted link
        universe, then Re-Link columns) regardless of the rates, and an
        element fails when its uniform falls below its kind's rate — so
        for a fixed seed the fault set at rate ``r1 <= r2`` is a subset
        of the fault set at ``r2`` (nested sweeps, monotone degradation).
        """
        for name, rate in (
            ("tile_rate", tile_rate),
            ("link_rate", link_rate),
            ("relink_rate", relink_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        rng = np.random.default_rng(seed)
        tiles = hardware.total_tiles
        u_tiles = rng.random(tiles)
        failed_tiles = frozenset(
            t for t in range(tiles) if u_tiles[t] < tile_rate
        )
        links = hardware.all_links()
        u_links = rng.random(len(links))
        failed_links = frozenset(
            link for link, u in zip(links, u_links) if u < link_rate
        )
        u_relinks = rng.random(hardware.grid_cols)
        failed_relinks = frozenset(
            c for c in range(hardware.grid_cols) if u_relinks[c] < relink_rate
        )
        return cls(failed_tiles, failed_links, failed_relinks)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def is_clean(self) -> bool:
        """Whether nothing has failed (the fast-path guard)."""
        return not (self.failed_tiles or self.failed_links or self.failed_relinks)

    def tile_failed(self, tile: int) -> bool:
        """Whether ``tile``'s PEs and router are dead."""
        return tile in self.failed_tiles

    def link_failed(self, a: int, b: int) -> bool:
        """Whether the physical link ``a <-> b`` is unusable.

        A link incident to a failed tile is down even if the wire itself
        is fine — the dead router can't forward.
        """
        if a in self.failed_tiles or b in self.failed_tiles:
            return True
        return _normalize(a, b) in self.failed_links

    def relink_failed(self, col: int) -> bool:
        """Whether column ``col``'s Re-Link bypass is down."""
        return col in self.failed_relinks

    def live_tiles(self, hardware: HardwareConfig) -> int:
        """Surviving tiles (at least 1; an all-dead array is rejected)."""
        dead = sum(
            1 for t in self.failed_tiles if 0 <= t < hardware.total_tiles
        )
        live = hardware.total_tiles - dead
        if live < 1:
            raise ValueError("fault model kills every tile in the array")
        return live

    def tile_remap(self, hardware: HardwareConfig) -> Dict[int, int]:
        """Deterministic spare mapping: each failed tile's traffic endpoint
        moves to the nearest live tile in row-major scan order (searching
        outward from the failed index, lower index first on ties)."""
        self.live_tiles(hardware)  # validates at least one survivor
        total = hardware.total_tiles
        remap: Dict[int, int] = {}
        for dead in sorted(self.failed_tiles):
            if not 0 <= dead < total:
                continue
            for offset in range(1, total):
                for candidate in (dead - offset, dead + offset):
                    if 0 <= candidate < total and candidate not in self.failed_tiles:
                        remap[dead] = candidate
                        break
                if dead in remap:
                    break
        return remap

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        """Flat failure tallies for reports."""
        return {
            "failed_tiles": len(self.failed_tiles),
            "failed_links": len(self.failed_links),
            "failed_relinks": len(self.failed_relinks),
        }

    def describe(self) -> str:
        """One-line human-readable summary."""
        if self.is_clean:
            return "fault-free"
        tiles = ",".join(str(t) for t in sorted(self.failed_tiles)) or "-"
        links = (
            ",".join(f"{a}-{b}" for a, b in sorted(self.failed_links)) or "-"
        )
        relinks = ",".join(str(c) for c in sorted(self.failed_relinks)) or "-"
        return f"tiles[{tiles}] links[{links}] relinks[{relinks}]"


def _parse_ids(value: str, what: str) -> FrozenSet[int]:
    try:
        return frozenset(int(part) for part in value.split("|") if part)
    except ValueError as exc:
        raise FaultSpecError(f"bad {what} list {value!r}: {exc}") from None


def _parse_links(value: str) -> FrozenSet[Link]:
    links = set()
    for part in value.split("|"):
        if not part:
            continue
        pieces = part.split("-")
        if len(pieces) != 2:
            raise FaultSpecError(
                f"bad link {part!r}: expected 'srcTile-dstTile'"
            )
        try:
            a, b = int(pieces[0]), int(pieces[1])
        except ValueError as exc:
            raise FaultSpecError(f"bad link {part!r}: {exc}") from None
        links.add(_normalize(a, b))
    return frozenset(links)


def parse_fault_spec(
    spec: str, hardware: Optional[HardwareConfig] = None
) -> FaultModel:
    """Parse a ``--faults`` specification into a :class:`FaultModel`.

    Two mutually exclusive forms, as comma-separated ``key=value`` pairs:

    * **sampled** — ``rate=0.1,seed=11`` (or individual ``tile_rate=``,
      ``link_rate=``, ``relink_rate=``); requires ``hardware`` so the
      element universe is known.  ``rate=R`` sets link and Re-Link rates
      to ``R`` and the tile rate to ``R/4`` (routers and wires fail more
      often than whole tiles).
    * **explicit** — ``tiles=3|7,links=0-1|4-8,relinks=2`` naming the
      failed elements outright.
    """
    if not spec or not spec.strip():
        raise FaultSpecError("empty fault spec")
    pairs: Dict[str, str] = {}
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        if "=" not in chunk:
            raise FaultSpecError(f"expected key=value, got {chunk!r}")
        key, value = chunk.split("=", 1)
        pairs[key.strip()] = value.strip()
    rate_keys = {"rate", "tile_rate", "link_rate", "relink_rate"}
    explicit_keys = {"tiles", "links", "relinks"}
    unknown = set(pairs) - rate_keys - explicit_keys - {"seed"}
    if unknown:
        raise FaultSpecError(f"unknown fault-spec keys: {sorted(unknown)}")
    has_rates = bool(rate_keys & set(pairs))
    has_explicit = bool(explicit_keys & set(pairs))
    if has_rates and has_explicit:
        raise FaultSpecError("mix of sampled rates and explicit elements")
    if has_rates:
        if hardware is None:
            raise FaultSpecError("sampled fault specs need a hardware config")
        try:
            base = float(pairs.get("rate", 0.0))
            tile_rate = float(pairs.get("tile_rate", base / 4.0))
            link_rate = float(pairs.get("link_rate", base))
            relink_rate = float(pairs.get("relink_rate", base))
            seed = int(pairs.get("seed", 0))
        except ValueError as exc:
            raise FaultSpecError(f"bad numeric value: {exc}") from None
        return FaultModel.sample(
            hardware,
            tile_rate=tile_rate,
            link_rate=link_rate,
            relink_rate=relink_rate,
            seed=seed,
        )
    if not has_explicit:
        raise FaultSpecError(
            "fault spec names neither rates nor explicit elements"
        )
    if "seed" in pairs:
        raise FaultSpecError("seed only applies to sampled fault specs")
    return FaultModel(
        failed_tiles=_parse_ids(pairs.get("tiles", ""), "tile"),
        failed_links=_parse_links(pairs.get("links", "")),
        failed_relinks=_parse_ids(pairs.get("relinks", ""), "relink"),
    )
