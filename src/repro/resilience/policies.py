"""Fault-tolerance policies of the serving layer: retry and circuit breaking.

Both policies are deliberately *deterministic state machines*: given the
same sequence of failures (e.g. from a seeded
:class:`~repro.resilience.chaos.ChaosSchedule`), retry counts and breaker
transitions replay identically, which the chaos determinism tests assert.
Wall-clock only enters through backoff *sleeps* — delays, never decisions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["RetryPolicy", "BreakerConfig", "CircuitBreaker"]


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential-backoff retry budget for one window execution.

    ``deadline_s`` bounds the *total* wall time a window may spend across
    attempts (measured by the dispatcher against the sanctioned
    :func:`~repro.serving.stats.wall_clock`); ``None`` means attempts are
    the only bound, which keeps retry behaviour fully deterministic.
    """

    max_attempts: int = 3
    backoff_s: float = 0.001
    multiplier: float = 2.0
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_s < 0:
            raise ValueError("backoff_s must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")

    def backoff(self, attempt: int) -> float:
        """Sleep before retry number ``attempt`` (1-based failed attempts)."""
        if attempt < 1:
            return 0.0
        return self.backoff_s * self.multiplier ** (attempt - 1)


@dataclass(frozen=True)
class BreakerConfig:
    """Tunables of the plan-manager circuit breaker.

    ``threshold`` consecutive scheduler invocations (misses or drift
    re-plans, i.e. a replan storm) trip the breaker open; while open, the
    next ``cooldown`` resolutions are served from the last-good plan
    without touching the scheduler, after which the breaker half-opens
    and one real resolution is allowed through.
    """

    threshold: int = 4
    cooldown: int = 8

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ValueError("threshold must be >= 1")
        if self.cooldown < 1:
            raise ValueError("cooldown must be >= 1")


class CircuitBreaker:
    """Deterministic closed -> open -> half-open breaker state machine."""

    def __init__(self, config: BreakerConfig = BreakerConfig()):
        self.config = config
        self.trips = 0
        self._consecutive = 0
        self._open_remaining = 0

    @property
    def is_open(self) -> bool:
        """Whether resolutions are currently being short-circuited."""
        return self._open_remaining > 0

    def allow(self) -> bool:
        """Whether the expensive operation (scheduler) may run now."""
        return self._open_remaining == 0

    def record_success(self) -> None:
        """A cheap resolution succeeded (cache hit): the storm is over."""
        self._consecutive = 0

    def record_invocation(self) -> None:
        """The expensive operation ran; trips the breaker on a storm."""
        self._consecutive += 1
        if self._consecutive >= self.config.threshold:
            self._open_remaining = self.config.cooldown
            self._consecutive = 0
            self.trips += 1

    def record_short_circuit(self) -> None:
        """One degraded serve while open; counts down to half-open."""
        if self._open_remaining > 0:
            self._open_remaining -= 1

    def __repr__(self) -> str:
        state = "open" if self.is_open else "closed"
        return (
            f"CircuitBreaker({state}, trips={self.trips}, "
            f"consecutive={self._consecutive}, "
            f"open_remaining={self._open_remaining})"
        )
