"""Online streaming-inference service layer.

Turns the offline batch pipeline (event stream -> discretize -> plan ->
simulate) into a three-stage online service:

1. **Ingest** (:mod:`repro.serving.ingest`) — consumes
   :class:`~repro.graphs.continuous.EdgeEvent` streams, assigns events to
   fixed-width time windows, and materializes each window's snapshot
   *incrementally* from the previous one via
   :func:`~repro.graphs.delta.apply_delta` instead of rebuilding from
   scratch.
2. **Plan management** (:mod:`repro.serving.plan_manager`) — caches
   :class:`~repro.core.plan.ExecutionPlan`\\ s in an LRU keyed by a
   quantized workload signature, re-invoking the scheduler only when a
   drift detector observes the workload has moved beyond a threshold.
3. **Execution** (:mod:`repro.serving.executor` /
   :mod:`repro.serving.pipeline` / :mod:`repro.serving.service`) —
   batches pending windows, keeps up to ``pipeline_depth`` batches in
   flight on a small worker pool (plan resolution for the next batch
   overlaps execution of the previous one, PiPAD-style), and applies
   bounded-queue backpressure between stages.

Serving is *deterministic*: the per-window
:class:`~repro.accel.metrics.SimulationResult`\\ s are identical to the
offline reference (:func:`~repro.serving.service.serve_offline`) on the
same discretized stream, regardless of worker count, batching, or queue
timing.

Graceful degradation (all off by default — see ``docs/resilience.md``):
retry with exponential backoff and per-window deadlines
(:class:`~repro.resilience.policies.RetryPolicy`), a plan-manager circuit
breaker serving the last-good plan through replan storms, a dead-letter
queue for malformed events (``quarantine=True``), bounded-queue load
shedding, and a seeded chaos harness
(:class:`~repro.resilience.chaos.ChaosSchedule`).
"""

from .ingest import (
    IncrementalWindowBuilder,
    RejectedEvent,
    Window,
    WindowedIngestor,
    event_fault,
)
from .pipeline import BatchSource, QueueBatchSource, WindowPipeline
from .plan_manager import PlanDecision, PlanManager
from .service import ServiceConfig, ServingReport, StreamingService, serve_offline
from .signature import DriftDetector, WindowProfile, WorkloadSignature
from .stats import ServiceStats, WindowFailure, WindowRecord
from .streams import stream_from_dataset, synthetic_event_stream

__all__ = [
    "IncrementalWindowBuilder",
    "RejectedEvent",
    "event_fault",
    "Window",
    "WindowedIngestor",
    "BatchSource",
    "QueueBatchSource",
    "WindowPipeline",
    "PlanDecision",
    "PlanManager",
    "ServiceConfig",
    "ServingReport",
    "StreamingService",
    "serve_offline",
    "DriftDetector",
    "WindowProfile",
    "WorkloadSignature",
    "ServiceStats",
    "WindowFailure",
    "WindowRecord",
    "stream_from_dataset",
    "synthetic_event_stream",
]
