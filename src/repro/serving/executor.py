"""Execution stage: per-window cost building and simulation.

The unit of execution is one *window transition*: the previous window's
snapshot followed by the current one.  Costs are built on that two-snapshot
graph (the second snapshot takes the incremental path, exactly as the
offline batch pipeline prices snapshot ``t`` given ``t-1``) and only the
current window's :class:`~repro.accel.metrics.SnapshotCosts` is simulated.

Window results are therefore independent of how windows are grouped into
batches or interleaved across workers — the property the service's
determinism guarantee rests on.  The worker pool
(:class:`WindowExecutor`) only controls *when* a window is simulated,
never *what* its result is.
"""

from __future__ import annotations

import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Optional, Tuple, TYPE_CHECKING, TypeVar

from ..accel.metrics import CostSummary, SimulationResult
from ..accel.simulator import AcceleratorSimulator
from ..baselines.algorithms import build_costs
from ..core.plan import DGNNSpec, ExecutionPlan
from ..ditile import DiTileAccelerator
from ..graphs.dynamic import DynamicGraph
from ..graphs.snapshot import GraphSnapshot
from ..obs import span as obs_span
from .stats import timed_call, wall_clock

if TYPE_CHECKING:  # pragma: no cover - type-only; avoids an import cycle
    from ..resilience.chaos import ChaosSchedule
    from ..resilience.faults import FaultModel
    from ..resilience.policies import RetryPolicy

__all__ = [
    "transition_graph",
    "simulate_window",
    "WindowRunner",
    "WindowExecutor",
]

T = TypeVar("T")


def transition_graph(
    prev: Optional[GraphSnapshot], cur: GraphSnapshot, name: str = "window"
) -> DynamicGraph:
    """The context graph a window is planned and priced on.

    ``[prev, cur]`` in steady state; ``[cur]`` for the first window, which
    is a cold start (every vertex computed) in both the online and the
    offline path.
    """
    snapshots = [cur] if prev is None else [prev, cur]
    return DynamicGraph(snapshots, name=name)


def simulate_window(
    model: DiTileAccelerator,
    spec: DGNNSpec,
    transition: DynamicGraph,
    plan: ExecutionPlan,
    faults: Optional["FaultModel"] = None,
) -> SimulationResult:
    """Simulate the last snapshot of ``transition`` under ``plan``.

    Mirrors :meth:`DiTileAccelerator.build_costs` /
    :meth:`~repro.baselines.base.AcceleratorModel.simulate`, but keeps
    only the current window's snapshot costs so the returned
    :class:`SimulationResult` prices exactly one window.  ``faults``
    models a degraded array (``None`` — the default — is bit-identical
    to the fault-free path).
    """
    algorithm = "ditile" if model.options.enable_reuse else "re"
    costs = build_costs(
        transition,
        spec,
        algorithm,
        model.placement_from_plan(plan),
        model.params,
        tiling_alpha=plan.tiling.alpha,
    )
    window_costs = CostSummary(
        algorithm="ditile",
        snapshots=[costs.snapshots[-1]],
        load_utilization=costs.load_utilization,
    )
    simulator = AcceleratorSimulator(
        model.hardware,
        model.simulator_params(),
        name=model.name,
        energy_params=model.energy_params(),
        faults=faults,
    )
    return simulator.run(window_costs)


class WindowRunner:
    """The per-window execution policy: chaos injection, timing, retries.

    Extracted from :class:`~repro.serving.service.StreamingService` so the
    sharded coordinator (:mod:`repro.dist`) drives the *identical* code
    path — same chaos keying, same obs spans, same retry accounting —
    rather than a reimplementation that could drift.
    """

    def __init__(
        self,
        model: DiTileAccelerator,
        spec: DGNNSpec,
        chaos: Optional["ChaosSchedule"] = None,
        faults: Optional["FaultModel"] = None,
        retry: Optional["RetryPolicy"] = None,
    ):
        self.model = model
        self.spec = spec
        self.chaos = chaos
        self.faults = faults
        self.retry = retry

    def execute(
        self,
        transition: DynamicGraph,
        plan: ExecutionPlan,
        index: int,
        attempt: int = 1,
    ) -> Tuple[SimulationResult, float]:
        """Simulate one window, timing the execution.

        Returns ``(result, seconds)``; the dispatch thread accumulates the
        seconds into ``stats.execute_s`` so no stats object is mutated
        concurrently.  ``attempt`` keys the chaos schedule so a retried
        execution draws fresh (but replayable) fault decisions.
        """
        from ..resilience.chaos import InjectedFault

        chaos = self.chaos
        if chaos is not None:
            delay = chaos.latency(index, attempt)
            if delay > 0.0:
                time.sleep(delay)
            if chaos.crashes(index, attempt):
                raise InjectedFault(
                    f"injected crash: window {index}, attempt {attempt}"
                )
        with obs_span("execute", window=index) as sp:
            result, seconds = timed_call(
                lambda: simulate_window(
                    self.model, self.spec, transition, plan, faults=self.faults
                )
            )
            if sp.enabled:
                sp.add("cycles", result.execution_cycles)
            return result, seconds

    def execute_resilient(
        self, transition: DynamicGraph, plan: ExecutionPlan, index: int
    ) -> Tuple[Optional[SimulationResult], float, int, Optional[Tuple[int, str]]]:
        """Run :meth:`execute` under the configured retry policy.

        Returns ``(result, seconds, retries, failure)``: ``failure`` is
        ``None`` on success, else ``(attempts, error)`` once the attempt
        budget (or the per-window deadline) is exhausted — a permanent
        window failure the dispatcher records instead of raising, so one
        poisoned window cannot abort the stream.  Without a retry policy
        the first exception propagates (the pre-resilience behaviour).
        """
        policy = self.retry
        if policy is None:
            result, seconds = self.execute(transition, plan, index)
            return result, seconds, 0, None
        started = wall_clock()
        retries = 0
        attempt = 1
        while True:
            try:
                result, seconds = self.execute(transition, plan, index, attempt)
                return result, seconds, retries, None
            except Exception as exc:  # noqa: BLE001 - retry boundary
                error = f"{type(exc).__name__}: {exc}"
                if attempt >= policy.max_attempts:
                    return None, 0.0, retries, (attempt, error)
                if (
                    policy.deadline_s is not None
                    and wall_clock() - started >= policy.deadline_s
                ):
                    return None, 0.0, retries, (
                        attempt,
                        f"deadline {policy.deadline_s}s exceeded after "
                        f"{attempt} attempts; last error: {error}",
                    )
                time.sleep(policy.backoff(attempt))
                retries += 1
                attempt += 1


class _ImmediateFuture(Future):
    """A completed future, for the ``workers=0`` inline mode."""

    def __init__(self, fn: Callable[[], T]):
        super().__init__()
        try:
            self.set_result(fn())
        except BaseException as exc:  # noqa: BLE001 - mirror executor behaviour
            self.set_exception(exc)


class WindowExecutor:
    """A small worker pool (or inline executor) for window simulations.

    ``workers=0`` executes submissions synchronously on the caller's
    thread — the sequential reference mode used by
    :func:`~repro.serving.service.serve_offline` and by parity tests.
    """

    def __init__(self, workers: int = 2):
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.workers = workers
        self._shutdown = False
        self._pool = (
            ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-serve"
            )
            if workers > 0
            else None
        )

    def submit(self, fn: Callable[[], T]) -> "Future[T]":
        """Schedule ``fn``; inline mode runs it before returning."""
        if self._shutdown:
            raise RuntimeError("WindowExecutor has been shut down")
        if self._pool is None:
            return _ImmediateFuture(fn)
        return self._pool.submit(fn)

    def shutdown(self, wait: bool = True, cancel_pending: bool = False) -> None:
        """Release pool threads.

        Idempotent and exception-safe: a second call (including the one
        from ``__exit__`` after an explicit shutdown, or a cleanup path
        re-entered after an error) is a no-op.  ``cancel_pending`` drops
        queued-but-unstarted submissions — in-flight ones always run to
        completion when ``wait`` is true, so no worker is left writing
        into torn-down state.
        """
        if self._shutdown:
            return
        self._shutdown = True
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait, cancel_futures=cancel_pending)

    def __enter__(self) -> "WindowExecutor":
        return self

    def __exit__(self, *_exc) -> None:
        self.shutdown()
