"""Execution stage: per-window cost building and simulation.

The unit of execution is one *window transition*: the previous window's
snapshot followed by the current one.  Costs are built on that two-snapshot
graph (the second snapshot takes the incremental path, exactly as the
offline batch pipeline prices snapshot ``t`` given ``t-1``) and only the
current window's :class:`~repro.accel.metrics.SnapshotCosts` is simulated.

Window results are therefore independent of how windows are grouped into
batches or interleaved across workers — the property the service's
determinism guarantee rests on.  The worker pool
(:class:`WindowExecutor`) only controls *when* a window is simulated,
never *what* its result is.
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Optional, TYPE_CHECKING, TypeVar

from ..accel.metrics import CostSummary, SimulationResult
from ..accel.simulator import AcceleratorSimulator
from ..baselines.algorithms import build_costs
from ..core.plan import DGNNSpec, ExecutionPlan
from ..ditile import DiTileAccelerator
from ..graphs.dynamic import DynamicGraph
from ..graphs.snapshot import GraphSnapshot

if TYPE_CHECKING:  # pragma: no cover - type-only; avoids an import cycle
    from ..resilience.faults import FaultModel

__all__ = ["transition_graph", "simulate_window", "WindowExecutor"]

T = TypeVar("T")


def transition_graph(
    prev: Optional[GraphSnapshot], cur: GraphSnapshot, name: str = "window"
) -> DynamicGraph:
    """The context graph a window is planned and priced on.

    ``[prev, cur]`` in steady state; ``[cur]`` for the first window, which
    is a cold start (every vertex computed) in both the online and the
    offline path.
    """
    snapshots = [cur] if prev is None else [prev, cur]
    return DynamicGraph(snapshots, name=name)


def simulate_window(
    model: DiTileAccelerator,
    spec: DGNNSpec,
    transition: DynamicGraph,
    plan: ExecutionPlan,
    faults: Optional["FaultModel"] = None,
) -> SimulationResult:
    """Simulate the last snapshot of ``transition`` under ``plan``.

    Mirrors :meth:`DiTileAccelerator.build_costs` /
    :meth:`~repro.baselines.base.AcceleratorModel.simulate`, but keeps
    only the current window's snapshot costs so the returned
    :class:`SimulationResult` prices exactly one window.  ``faults``
    models a degraded array (``None`` — the default — is bit-identical
    to the fault-free path).
    """
    algorithm = "ditile" if model.options.enable_reuse else "re"
    costs = build_costs(
        transition,
        spec,
        algorithm,
        model.placement_from_plan(plan),
        model.params,
        tiling_alpha=plan.tiling.alpha,
    )
    window_costs = CostSummary(
        algorithm="ditile",
        snapshots=[costs.snapshots[-1]],
        load_utilization=costs.load_utilization,
    )
    simulator = AcceleratorSimulator(
        model.hardware,
        model.simulator_params(),
        name=model.name,
        energy_params=model.energy_params(),
        faults=faults,
    )
    return simulator.run(window_costs)


class _ImmediateFuture(Future):
    """A completed future, for the ``workers=0`` inline mode."""

    def __init__(self, fn: Callable[[], T]):
        super().__init__()
        try:
            self.set_result(fn())
        except BaseException as exc:  # noqa: BLE001 - mirror executor behaviour
            self.set_exception(exc)


class WindowExecutor:
    """A small worker pool (or inline executor) for window simulations.

    ``workers=0`` executes submissions synchronously on the caller's
    thread — the sequential reference mode used by
    :func:`~repro.serving.service.serve_offline` and by parity tests.
    """

    def __init__(self, workers: int = 2):
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.workers = workers
        self._shutdown = False
        self._pool = (
            ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-serve"
            )
            if workers > 0
            else None
        )

    def submit(self, fn: Callable[[], T]) -> "Future[T]":
        """Schedule ``fn``; inline mode runs it before returning."""
        if self._shutdown:
            raise RuntimeError("WindowExecutor has been shut down")
        if self._pool is None:
            return _ImmediateFuture(fn)
        return self._pool.submit(fn)

    def shutdown(self, wait: bool = True, cancel_pending: bool = False) -> None:
        """Release pool threads.

        Idempotent and exception-safe: a second call (including the one
        from ``__exit__`` after an explicit shutdown, or a cleanup path
        re-entered after an error) is a no-op.  ``cancel_pending`` drops
        queued-but-unstarted submissions — in-flight ones always run to
        completion when ``wait`` is true, so no worker is left writing
        into torn-down state.
        """
        if self._shutdown:
            return
        self._shutdown = True
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait, cancel_futures=cancel_pending)

    def __enter__(self) -> "WindowExecutor":
        return self

    def __exit__(self, *_exc) -> None:
        self.shutdown()
