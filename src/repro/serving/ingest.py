"""Ingest stage: event streams -> incrementally materialized window snapshots.

Events are assigned to fixed-width time windows by the same rule the
offline reference uses (:func:`~repro.graphs.continuous.window_index`),
then each closing window's snapshot is produced by *applying the window's
net edge delta* to the previous snapshot
(:func:`~repro.graphs.delta.apply_delta`) — a sorted-array merge whose
cost scales with ``|E| + |delta|`` — rather than rebuilding the CSR from
the full accumulated edge set (PiPAD's snapshot-preparation overlap only
pays off if preparation itself is cheap).

Streaming realities handled here:

* **Out-of-order events** inside the still-open window are buffered and
  sorted at close (the same ``(time, src, dst, kind)`` order
  :class:`~repro.graphs.continuous.ContinuousDynamicGraph` applies).
* **Late events** — older than the already-closed window — are dropped
  and counted (or rejected, with ``strict_time_order=True``).
* **Empty windows** (gaps in the stream) still emit a snapshot equal to
  their predecessor, keeping the window clock aligned with the offline
  discretization.
* **Add/remove churn** within one window nets out: only an edge's final
  state relative to the live edge set enters the delta.
* **Malformed events** — non-finite or negative timestamps, vertex ids
  outside the declared space — are rejected with a precise error, or
  (``quarantine=True``) diverted into a dead-letter queue of
  :class:`RejectedEvent`\\ s so one poison event cannot take down the
  stream.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Tuple

import numpy as np

from ..graphs.continuous import ContinuousDynamicGraph, EdgeEvent, window_index
from ..graphs.delta import SnapshotDelta, apply_delta
from ..graphs.snapshot import GraphSnapshot
from .stats import wall_clock

__all__ = [
    "Window",
    "RejectedEvent",
    "event_fault",
    "IncrementalWindowBuilder",
    "ShardedWindowBuilder",
    "WindowedIngestor",
]

_ADD = "add"


@dataclass(frozen=True)
class RejectedEvent:
    """One quarantined event in the ingest dead-letter queue."""

    event: EdgeEvent
    reason: str
    #: stream position at which the event arrived (0-based)
    position: int


def event_fault(event: EdgeEvent, num_vertices: int) -> Optional[str]:
    """Why ``event`` is malformed, or ``None`` if it is well-formed.

    The single validation rule shared by the strict (raise) and
    quarantine (dead-letter) paths, so both reject exactly the same
    events for exactly the same reasons.
    """
    if not math.isfinite(event.time):
        return f"non-finite timestamp {event.time!r}"
    if event.time < 0:
        return f"negative timestamp {event.time!r}"
    if not (0 <= event.src < num_vertices and 0 <= event.dst < num_vertices):
        return (
            f"vertex id outside the fixed vertex space [0, {num_vertices})"
        )
    return None


@dataclass
class Window:
    """One closed window: its materialized snapshot plus bookkeeping."""

    index: int
    snapshot: GraphSnapshot
    delta: SnapshotDelta
    num_events: int
    close_time: float  # stream-time upper boundary of the window
    closed_at: float = field(default=0.0, repr=False)  # wall clock, stats only


class IncrementalWindowBuilder:
    """Maintains the live edge set and materializes successive snapshots.

    The vertex id space is fixed up front (as the offline discretization
    fixes it from the whole stream); events referencing vertices outside
    it are rejected so online and offline snapshots stay comparable.
    """

    def __init__(
        self,
        num_vertices: int,
        feature_dim: int = 1,
        initial: Optional[GraphSnapshot] = None,
    ):
        if num_vertices < 0:
            raise ValueError(f"num_vertices must be >= 0, got {num_vertices}")
        if initial is not None and initial.num_vertices > num_vertices:
            raise ValueError(
                f"initial snapshot has {initial.num_vertices} vertices, "
                f"more than the declared id space {num_vertices}"
            )
        self.num_vertices = num_vertices
        self.feature_dim = feature_dim
        if initial is None or initial.num_edges == 0:
            src = dst = np.empty(0, dtype=np.int64)
        else:
            src, dst = initial.edge_arrays()
        self.current = GraphSnapshot.from_edge_arrays(
            num_vertices, src, dst, feature_dim=feature_dim
        )
        self._live = set(zip(src.tolist(), dst.tolist()))

    def close_window(
        self, events: List[EdgeEvent], timestamp: int = 0
    ) -> Tuple[GraphSnapshot, SnapshotDelta]:
        """Apply one window's events and return ``(snapshot, delta)``.

        ``delta`` is the exact net change versus the previous window —
        churn inside the window (add then remove, duplicate adds, removes
        of absent edges) cancels out, mirroring the edge-*set* semantics
        of :meth:`ContinuousDynamicGraph.edges_at`.
        """
        final: dict = {}
        for event in sorted(events):
            if event.src >= self.num_vertices or event.dst >= self.num_vertices:
                raise ValueError(
                    f"event {event} outside the fixed vertex space "
                    f"[0, {self.num_vertices})"
                )
            final[(event.src, event.dst)] = event.kind
        added = [
            pair for pair, kind in final.items()
            if kind == _ADD and pair not in self._live
        ]
        removed = [
            pair for pair, kind in final.items()
            if kind != _ADD and pair in self._live
        ]
        delta = SnapshotDelta(
            added_src=np.array([s for s, _ in added], dtype=np.int64),
            added_dst=np.array([d for _, d in added], dtype=np.int64),
            removed_src=np.array([s for s, _ in removed], dtype=np.int64),
            removed_dst=np.array([d for _, d in removed], dtype=np.int64),
        )
        if delta.num_changes:
            self.current = apply_delta(self.current, delta, timestamp=timestamp)
            self._live.difference_update(removed)
            self._live.update(added)
        return self.current, delta


class ShardedWindowBuilder:
    """Builds one shard's window sequence from pre-routed, pre-validated events.

    The sharded serving layer (:mod:`repro.dist`) splits ingest in two:
    the router (coordinator side) validates events and assigns window
    indices exactly as :class:`WindowedIngestor` does, then each shard
    worker turns its slice of ``(window_index, event)`` pairs into
    :class:`Window`\\ s over the shard's *own* live edge set.  Because
    every event for an edge routes to the shard owning its destination
    vertex, the per-shard net deltas are disjoint and concatenate to the
    exact global delta — the coordinator's merge invariant.

    ``start_window`` makes the builder resumable: a restarted worker is
    seeded with the shard subgraph of the last merged global snapshot and
    replays only the windows after it.
    """

    def __init__(
        self,
        num_vertices: int,
        window: float,
        feature_dim: int = 1,
        initial: Optional[GraphSnapshot] = None,
        origin: float = 0.0,
        start_window: int = 0,
    ):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if start_window < 0:
            raise ValueError(f"start_window must be >= 0, got {start_window}")
        self.window = window
        self.origin = origin
        self.next_index = start_window
        self.builder = IncrementalWindowBuilder(num_vertices, feature_dim, initial)

    def build(
        self,
        routed: Iterable[Tuple[int, EdgeEvent]],
        end_window: int,
    ) -> Iterator[Window]:
        """Yield windows ``next_index .. end_window - 1`` in order.

        ``routed`` must be sorted by window index (the router emits it
        that way) with every index in ``[next_index, end_window)``.  Gaps
        — and trailing windows this shard received no events for — are
        emitted as empty windows, so every shard produces the identical
        window count regardless of where events landed.
        """
        buffer: List[EdgeEvent] = []
        for index, event in routed:
            if index < self.next_index:
                raise ValueError(
                    f"routed event for window {index} arrived after window "
                    f"{self.next_index} opened (router must sort by window)"
                )
            if index >= end_window:
                raise ValueError(
                    f"routed event for window {index} beyond end_window "
                    f"{end_window}"
                )
            while self.next_index < index:
                yield self._close(buffer)
                buffer = []
            buffer.append(event)
        while self.next_index < end_window:
            yield self._close(buffer)
            buffer = []

    def _close(self, buffer: List[EdgeEvent]) -> Window:
        index = self.next_index
        snapshot, delta = self.builder.close_window(buffer, timestamp=index)
        self.next_index += 1
        return Window(
            index=index,
            snapshot=snapshot,
            delta=delta,
            num_events=len(buffer),
            close_time=self.origin + (index + 1) * self.window,
            closed_at=wall_clock(),
        )


class WindowedIngestor:
    """Streams events into :class:`Window`\\ s of fixed time width."""

    def __init__(
        self,
        num_vertices: int,
        window: float,
        feature_dim: int = 1,
        initial: Optional[GraphSnapshot] = None,
        origin: Optional[float] = None,
        strict_time_order: bool = False,
        quarantine: bool = False,
        start_window: int = 0,
    ):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if start_window < 0:
            raise ValueError(f"start_window must be >= 0, got {start_window}")
        self.window = window
        self.origin = origin
        self.strict_time_order = strict_time_order
        self.quarantine = quarantine
        #: durable-resume watermark: windows below it were already served
        #: (and are baked into ``initial``), so their replayed events are
        #: consumed for validation/late accounting but never re-applied
        #: or re-yielded — the exactly-once half of crash recovery
        self.start_window = start_window
        self.builder = IncrementalWindowBuilder(num_vertices, feature_dim, initial)
        self.late_events = 0
        self.total_events = 0
        #: events consumed into already-recovered windows during a resume
        self.replayed_events = 0
        #: dead-letter queue (populated only with ``quarantine=True``)
        self.rejected: List[RejectedEvent] = []

    @property
    def quarantined_events(self) -> int:
        """Malformed events diverted into the dead-letter queue."""
        return len(self.rejected)

    @classmethod
    def for_stream(
        cls,
        stream: ContinuousDynamicGraph,
        window: float,
        feature_dim: Optional[int] = None,
        origin: Optional[float] = None,
        strict_time_order: bool = False,
        quarantine: bool = False,
        initial: Optional[GraphSnapshot] = None,
        start_window: int = 0,
    ) -> "WindowedIngestor":
        """An ingestor matched to ``stream``'s vertex space and initial graph.

        ``initial``/``start_window`` are the durable-resume overrides:
        recovery seeds the builder with the checkpointed snapshot (which
        already contains windows below the watermark) instead of the
        stream's own initial graph.
        """
        return cls(
            num_vertices=stream.num_vertices,
            window=window,
            feature_dim=feature_dim or stream.initial.feature_dim,
            initial=initial if initial is not None else stream.initial,
            origin=origin,
            strict_time_order=strict_time_order,
            quarantine=quarantine,
            start_window=start_window,
        )

    def _close(self, index: int, buffer: List[EdgeEvent]) -> Window:
        anchor = self.origin if self.origin is not None else 0.0
        snapshot, delta = self.builder.close_window(buffer, timestamp=index)
        return Window(
            index=index,
            snapshot=snapshot,
            delta=delta,
            num_events=len(buffer),
            close_time=anchor + (index + 1) * self.window,
            closed_at=wall_clock(),
        )

    def windows(self, events: Iterable[EdgeEvent]) -> Iterator[Window]:
        """Consume ``events`` and yield windows as they close.

        The final (possibly partial) window is flushed when the iterable
        is exhausted.  An empty stream yields a single window holding the
        initial graph, matching
        :meth:`ContinuousDynamicGraph.discretize_windows`.

        With ``start_window > 0`` (durable resume) the window clock still
        runs from 0 — validation, origin anchoring, and the late-event
        rule see exactly what the uninterrupted run saw — but windows
        below the watermark are *suppressed*: their events are dropped at
        close (counted in ``replayed_events``) instead of being applied,
        because the builder's initial snapshot already contains them.
        """
        current = 0
        buffer: List[EdgeEvent] = []
        for position, event in enumerate(events):
            self.total_events += 1
            fault = event_fault(event, self.builder.num_vertices)
            if fault is not None:
                # Validate before the event can anchor the origin or hit
                # ``window_index`` (a NaN timestamp breaks both).
                if not self.quarantine:
                    raise ValueError(f"malformed event {event}: {fault}")
                self.rejected.append(RejectedEvent(event, fault, position))
                continue
            if self.origin is None:
                self.origin = event.time
            index = window_index(event.time, self.origin, self.window)
            if index < current:
                if self.strict_time_order:
                    raise ValueError(
                        f"late event {event}: window {index} already closed "
                        f"(serving window {current})"
                    )
                self.late_events += 1
                continue
            if index > current:
                if current >= self.start_window:
                    yield self._close(current, buffer)
                else:
                    self.replayed_events += len(buffer)
                buffer = []
                for gap in range(max(current + 1, self.start_window), index):
                    yield self._close(gap, [])
                current = index
            buffer.append(event)
        # Always flush: an empty stream still serves one (initial) window.
        # On a resume whose stream ends inside the recovered prefix the
        # flush would re-serve a committed window — suppress it instead.
        if current >= self.start_window:
            yield self._close(current, buffer)
        else:
            self.replayed_events += len(buffer)
