"""Pipelined window dispatch: overlap ingest, plan resolution, and execution.

The serialized dispatch discipline (PRs 1 and 7) pulled a batch of
windows, resolved each window's plan in order, submitted the batch to
the worker pool, and then **blocked** collecting every future before
pulling the next batch — so plan resolution for batch ``k+1`` idled
through exactly the execution time of batch ``k``, and ingest could run
at most ``queue_capacity`` windows ahead.  PiPAD (PAPERS.md) overlaps
snapshot preparation with computation and adds frame-level parallelism
across independent windows; this module is that restructure for the
serving layer.

:class:`WindowPipeline` keeps up to ``depth`` batches *in flight*:

::

    fill   ── pull windows ─▶ resolve plans (in window order) ─▶ submit
      │          ▲                                                 │
      │          │ bounded by ``depth`` batches                    ▼
    collect ◀── oldest batch's futures, in order ◀──────── worker pool

* **Fill** pulls the next batch from a :class:`BatchSource` (the ingest
  queue single-process, the shard merge loop in :mod:`repro.dist`),
  resolves its plans sequentially, and submits it — repeating until
  ``depth`` batches are in flight or the source has nothing ready.
  With work already in flight the pull is non-blocking, so a slow
  upstream never stalls collection; with nothing in flight it blocks,
  and that wait is recorded as ``prefetch_stall_s``.
* **Collect** pops the *oldest* in-flight batch and waits out its
  futures in window order; the wait is recorded as ``collect_stall_s``
  — execution time the pipeline failed to hide.

``depth=1`` is exactly the serialized discipline (fill one batch,
collect it, repeat).  Results are bit-identical at **every** depth
because the pipeline changes only *when* windows are resolved and
simulated, never *what* is resolved: plans still resolve sequentially
in window order on the dispatch thread (cache decisions cannot depend
on pool timing), windows are still priced on their own transition
graphs (:mod:`repro.serving.executor`), and results are still collected
in window order.  The parity sweeps in ``tests/test_serving.py`` and
``tests/test_dist.py`` pin this across depths and shard counts.

The fill stage also short-circuits workload measurement: a window whose
delta is empty has — by construction of the incremental ingest path —
the *same* snapshot as its predecessor, so its :class:`WindowProfile`
is reused instead of re-measured (``profile_reuses``), eliminating the
wasted ``resolve`` span time empty windows used to show in the phase
breakdown.
"""

from __future__ import annotations

import queue as queue_mod
from collections import deque
from typing import Deque, List, NamedTuple, Optional, Protocol

from ..accel.metrics import SimulationResult
from ..core.plan import DGNNSpec
from ..graphs.snapshot import GraphSnapshot
from ..obs import gauge_set as obs_gauge_set
from ..obs import span as obs_span
from .executor import WindowExecutor, WindowRunner, transition_graph
from .ingest import Window
from .plan_manager import PlanManager
from .signature import WindowProfile
from .stats import ServiceStats, WindowFailure, WindowRecord, timed_call, wall_clock

__all__ = ["BatchSource", "QueueBatchSource", "WindowPipeline"]


class BatchSource(Protocol):
    """Where a pipeline's windows come from, one ordered batch at a time.

    Implementations: :class:`QueueBatchSource` (the single-process
    ingest queue) and the shard-merge source inside
    :class:`~repro.dist.coordinator.ShardedService`.
    """

    def pull(self, max_windows: int, block: bool) -> Optional[List[Window]]:
        """The next 1..``max_windows`` windows, in window order.

        ``block=True`` waits until at least one window is available and
        returns ``None`` only when the stream is exhausted;
        ``block=False`` returns ``None`` as soon as nothing is ready
        (the pipeline goes and collects finished work instead).
        Consecutive calls must yield a gap-free window sequence — the
        source owns ordering, the pipeline owns overlap.
        """

    def depth(self) -> int:
        """Windows buffered upstream right now (telemetry only)."""


class QueueBatchSource:
    """Batches windows off the ingest thread's bounded queue.

    Mirrors the original dispatch loop's drain discipline exactly: one
    (possibly blocking) head pull, then non-blocking drains up to the
    batch bound.  A :class:`BaseException` item re-raises on the
    dispatch thread (the ingest thread's error hand-off) and the
    sentinel marks exhaustion.
    """

    def __init__(self, window_queue, sentinel: object):
        self._queue = window_queue
        self._sentinel = sentinel
        self._done = False

    def pull(self, max_windows: int, block: bool) -> Optional[List[Window]]:
        if self._done:
            return None
        if block:
            item = self._queue.get()
        else:
            try:
                item = self._queue.get_nowait()
            except queue_mod.Empty:
                return None
        batch: List[Window] = []
        while True:
            if item is self._sentinel:
                self._done = True
                break
            if isinstance(item, BaseException):
                raise item
            batch.append(item)
            if len(batch) >= max_windows:
                break
            try:
                item = self._queue.get_nowait()
            except queue_mod.Empty:
                break
        return batch or None

    def depth(self) -> int:
        return self._queue.qsize()


class _InFlight(NamedTuple):
    """One submitted window awaiting collection."""

    window: Window
    decision_value: str
    future: "object"  # Future[(result, seconds, retries, failure)]
    #: plan-manager snapshot taken right after this window's plan
    #: resolved (durable runs only) — the state a checkpoint at this
    #: window must carry.  Resolution runs ahead of commit at depth > 1,
    #: so exporting at commit time would leak future resolutions into
    #: the checkpoint and break post-resume decision parity.
    plan_state: Optional[dict] = None


class WindowPipeline:
    """The overlapped fill/collect dispatch loop.

    Shared verbatim by :class:`~repro.serving.service.StreamingService`
    and :class:`~repro.dist.coordinator.ShardedService` — one dispatch
    discipline, one stall accounting, one parity argument.  Mutates
    ``stats`` and appends to ``results`` exactly as the serialized loops
    did; the caller still owns pool/ingest teardown.
    """

    def __init__(
        self,
        source: BatchSource,
        manager: PlanManager,
        runner: WindowRunner,
        pool: WindowExecutor,
        spec: DGNNSpec,
        stats: ServiceStats,
        results: List[SimulationResult],
        depth: int = 1,
        max_batch_windows: int = 4,
        queue_gauge: str = "serve.queue_depth",
        prev: Optional[GraphSnapshot] = None,
        committer=None,
    ):
        if depth < 1:
            raise ValueError(f"pipeline depth must be >= 1, got {depth}")
        self._source = source
        self._manager = manager
        self._runner = runner
        self._pool = pool
        self._spec = spec
        self._stats = stats
        self._results = results
        self.depth = depth
        self.max_batch_windows = max_batch_windows
        self._queue_gauge = queue_gauge
        #: predecessor snapshot of the first window — ``None`` on a fresh
        #: run, the checkpointed snapshot on a durable resume (so the
        #: first re-executed window's transition graph matches the
        #: uninterrupted run's exactly)
        self._prev: Optional[GraphSnapshot] = prev
        #: durability commit barrier
        #: (:class:`~repro.durability.recovery.WindowCommitter`);
        #: ``None`` keeps the pre-durability code path byte-identical
        self._committer = committer
        self._profile: Optional[WindowProfile] = None
        self._in_flight: Deque[List[_InFlight]] = deque()

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def drive(self) -> None:
        """Drive the source to exhaustion; returns with nothing in flight.

        On an exception (ingest hand-off, resolve failure, a window
        failure with no retry policy) in-flight futures are abandoned to
        the caller's pool shutdown — identical to the serialized loops.
        """
        self._stats.pipeline_depth = self.depth
        while True:
            self._fill()
            if not self._in_flight:
                break
            self._collect(self._in_flight.popleft())
        obs_gauge_set("serve.pipeline_depth", self.depth)
        obs_gauge_set("serve.overlap_ratio", self._stats.overlap_ratio)

    # ------------------------------------------------------------------
    # Fill stage: pull -> resolve (in order) -> submit
    # ------------------------------------------------------------------
    def _fill(self) -> None:
        while len(self._in_flight) < self.depth:
            block = not self._in_flight
            upstream = self._source.depth()
            started = wall_clock()
            batch = self._source.pull(self.max_batch_windows, block)
            if block:
                # Nothing was executing, so every second here is the
                # upstream stage (ingest / shard merge) on the critical
                # path — the stall a deeper pipeline cannot fix.
                self._stats.prefetch_stall_s += wall_clock() - started
            if batch is None:
                return
            self._stats.record_queue_depth(upstream)
            obs_gauge_set(self._queue_gauge, upstream)
            self._submit(batch)

    def _window_profile(self, window: Window) -> WindowProfile:
        """The window's workload profile, reusing the previous window's
        measurement when the delta is empty (the snapshot is unchanged
        by construction of the incremental ingest path)."""
        if window.delta.num_changes == 0 and self._profile is not None:
            self._stats.profile_reuses += 1
        else:
            self._profile = WindowProfile.from_snapshot(window.snapshot)
        return self._profile

    def _submit(self, batch: List[Window]) -> None:
        self._stats.batches += 1
        entries: List[_InFlight] = []
        for window in batch:
            with obs_span("window", index=window.index) as sp:
                transition = transition_graph(
                    self._prev, window.snapshot, name=f"window-{window.index}"
                )
                profile = self._window_profile(window)
                (plan, decision), resolve_s = timed_call(
                    lambda t=transition, p=profile: self._manager.resolve(
                        t, self._spec, profile=p
                    )
                )
                self._stats.plan_resolve_s += resolve_s
                if sp.enabled:
                    sp.set_attr("decision", decision.value)
                    sp.add("events", window.num_events)
            entries.append(
                _InFlight(
                    window=window,
                    decision_value=decision.value,
                    future=self._pool.submit(
                        lambda t=transition, p=plan, i=window.index: (
                            self._runner.execute_resilient(t, p, i)
                        )
                    ),
                    plan_state=(
                        self._manager.export_state()
                        if self._committer is not None
                        else None
                    ),
                )
            )
            self._prev = window.snapshot
        self._in_flight.append(entries)
        self._stats.max_inflight_batches = max(
            self._stats.max_inflight_batches, len(self._in_flight)
        )
        obs_gauge_set("serve.inflight_batches", len(self._in_flight))

    # ------------------------------------------------------------------
    # Collect stage: oldest batch, futures in window order
    # ------------------------------------------------------------------
    def _collect(self, entries: List[_InFlight]) -> None:
        stats = self._stats
        first, last = entries[0].window.index, entries[-1].window.index
        with obs_span("collect", first=first, last=last) as sp:
            stall_s = 0.0
            for window, decision_value, future, plan_state in entries:
                started = wall_clock()
                result, execute_s, retries, failure = future.result()
                stall_s += wall_clock() - started
                stats.execute_s += execute_s
                stats.retries += retries
                if failure is not None:
                    attempts, error = failure
                    stats.windows_failed += 1
                    stats.failures.append(
                        WindowFailure(
                            index=window.index, attempts=attempts, error=error
                        )
                    )
                else:
                    self._results.append(result)
                    stats.records.append(
                        WindowRecord(
                            index=window.index,
                            num_events=window.num_events,
                            latency_s=wall_clock() - window.closed_at,
                            cycles=result.execution_cycles,
                            plan_decision=decision_value,
                        )
                    )
                if self._committer is not None:
                    # The commit barrier: a window — served or recorded
                    # failed — is durable before the next one collects.
                    self._committer.commit(
                        window.index, window.snapshot, plan_state
                    )
            stats.collect_stall_s += stall_s
            if sp.enabled:
                sp.set_attr("stall_s", stall_s)
