"""Execution-plan cache with drift-triggered re-planning.

Planning a window runs the full scheduler front-end (tiling search,
``Ps``/``Pv`` optimization, Algorithm 2 balance) — far more work than
simulating the window's incremental costs.  The serving layer therefore
caches plans in an LRU keyed by :class:`~repro.serving.signature.WorkloadSignature`
and re-invokes :class:`~repro.core.scheduler.DiTileScheduler` only when

* a window's signature misses the cache, or
* the :class:`~repro.serving.signature.DriftDetector` observes that the
  workload has drifted beyond threshold from the profile the cached plan
  was computed for.

Resolution is sequential in window order (the service resolves plans in
its single-threaded dispatch stage), so cache behaviour — and therefore
every served result — is deterministic regardless of worker-pool timing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..caching import LRUCache
from ..core.plan import DGNNSpec, ExecutionPlan
from ..ditile import DiTileAccelerator
from ..graphs.dynamic import DynamicGraph
from ..obs import counter_add as obs_counter_add
from ..obs import span as obs_span
from ..resilience.policies import BreakerConfig, CircuitBreaker
from .signature import DriftDetector, WindowProfile, WorkloadSignature

__all__ = ["PlanDecision", "PlanEntry", "PlanManager"]


class PlanDecision(enum.Enum):
    """How a window's plan was obtained."""

    HIT = "hit"  # cached plan reused as-is
    MISS = "miss"  # no cached plan for this signature; scheduler invoked
    REPLAN = "replan"  # cached plan found but drift fired; scheduler invoked
    BREAKER = "breaker"  # breaker open: last-good plan served, scheduler skipped


@dataclass
class PlanEntry:
    """One cached plan plus the workload profile it was computed for."""

    plan: ExecutionPlan
    reference: WindowProfile


class PlanManager:
    """LRU-bounded plan cache in front of the DiTile scheduler."""

    def __init__(
        self,
        model: DiTileAccelerator,
        capacity: int = 32,
        drift_threshold: float = 0.25,
        breaker: Optional[BreakerConfig] = None,
        label: Optional[str] = None,
    ):
        self.model = model
        #: optional owner tag ("coordinator", "shard-3", ...) surfaced on
        #: resolve spans so multi-manager traces stay attributable
        self.label = label
        self.detector = DriftDetector(drift_threshold)
        self._cache: LRUCache[WorkloadSignature, PlanEntry] = LRUCache(capacity)
        self.hits = 0
        self.misses = 0
        self.replans = 0
        # Circuit breaker (optional): `threshold` consecutive scheduler
        # invocations — a replan storm — trip it open, and while open the
        # last-good plan is served without touching the scheduler.
        self._breaker = CircuitBreaker(breaker) if breaker is not None else None
        self._last_good: Optional[ExecutionPlan] = None
        self.breaker_hits = 0

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def resolve(
        self,
        transition: DynamicGraph,
        spec: DGNNSpec,
        profile: Optional[WindowProfile] = None,
    ) -> Tuple[ExecutionPlan, PlanDecision]:
        """The plan to execute ``transition`` (its last snapshot's window)
        under, plus how it was obtained.

        ``transition`` is the ingest stage's context graph — the previous
        window's snapshot followed by the current one (just the current
        one for the first window).  A fresh plan is computed on exactly
        this graph; a cached plan is applied to it unchanged.
        """
        with obs_span("resolve") as sp:
            plan, decision = self._resolve(transition, spec, profile)
            if sp.enabled:
                sp.set_attr("decision", decision.value)
                if self.label is not None:
                    sp.set_attr("manager", self.label)
                obs_counter_add(f"plan_cache.{decision.value}", 1)
            return plan, decision

    def _resolve(
        self,
        transition: DynamicGraph,
        spec: DGNNSpec,
        profile: Optional[WindowProfile],
    ) -> Tuple[ExecutionPlan, PlanDecision]:
        current = profile or WindowProfile.from_snapshot(transition[-1])
        signature = WorkloadSignature.from_profile(current, spec)
        entry = self._cache.get(signature)
        storming = entry is None or self.detector.fires(entry.reference, current)
        if (
            storming
            and self._breaker is not None
            and not self._breaker.allow()
            and self._last_good is not None
        ):
            # Replan storm with the breaker open: degrade to the last
            # plan the scheduler actually produced instead of invoking
            # it again.  The cache is left untouched, so once the breaker
            # half-opens the storm is re-evaluated on real state.
            self._breaker.record_short_circuit()
            self.breaker_hits += 1
            return self._last_good, PlanDecision.BREAKER
        if entry is None:
            plan = self._invoke_scheduler(transition, spec)
            self._cache.put(signature, PlanEntry(plan, current))
            self.misses += 1
            return plan, PlanDecision.MISS
        if storming:
            plan = self._invoke_scheduler(transition, spec)
            self._cache.put(signature, PlanEntry(plan, current))
            self.replans += 1
            return plan, PlanDecision.REPLAN
        if self._breaker is not None:
            self._breaker.record_success()
        self._last_good = entry.plan
        self.hits += 1
        return entry.plan, PlanDecision.HIT

    def _invoke_scheduler(
        self, transition: DynamicGraph, spec: DGNNSpec
    ) -> ExecutionPlan:
        """Run the full scheduler front-end, feeding the breaker."""
        plan = self.model.scheduler.plan(transition, spec)
        self._last_good = plan
        if self._breaker is not None:
            self._breaker.record_invocation()
        return plan

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def export_state(self) -> Dict[str, Any]:
        """Snapshot resolution state for a durability checkpoint.

        Captures the LRU entries (stalest first — re-``put`` in that
        order reproduces the recency order exactly), the decision
        counters, the last-good plan, and the breaker scalars.  Entries
        are immutable once cached (:meth:`_resolve` always ``put``\\ s a
        fresh :class:`PlanEntry`), so the shallow copy is stable no
        matter how far resolution runs ahead of the checkpoint.  A
        resumed manager restored from this snapshot makes decisions
        byte-identical to the uninterrupted run — the plan half of the
        recovery parity guarantee.
        """
        state: Dict[str, Any] = {
            "entries": list(self._cache.items()),
            "hits": self.hits,
            "misses": self.misses,
            "replans": self.replans,
            "breaker_hits": self.breaker_hits,
            "last_good": self._last_good,
            "cache_stats": {
                "hits": self._cache.stats.hits,
                "misses": self._cache.stats.misses,
                "evictions": self._cache.stats.evictions,
            },
            "breaker": None,
        }
        if self._breaker is not None:
            state["breaker"] = {
                key: value
                for key, value in vars(self._breaker).items()
                if key != "config"
            }
        return state

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Apply an :meth:`export_state` snapshot to this (fresh) manager."""
        self._cache.clear()
        for signature, entry in state["entries"]:
            self._cache.put(signature, entry)
        self.hits = state["hits"]
        self.misses = state["misses"]
        self.replans = state["replans"]
        self.breaker_hits = state["breaker_hits"]
        self._last_good = state["last_good"]
        cache_stats = state["cache_stats"]
        self._cache.stats.hits = cache_stats["hits"]
        self._cache.stats.misses = cache_stats["misses"]
        self._cache.stats.evictions = cache_stats["evictions"]
        if state["breaker"] is not None and self._breaker is not None:
            vars(self._breaker).update(state["breaker"])

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def lookups(self) -> int:
        """Total resolve calls."""
        return self.hits + self.misses + self.replans + self.breaker_hits

    @property
    def hit_rate(self) -> float:
        """Fraction of windows served from cache without re-planning."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    @property
    def size(self) -> int:
        """Plans currently cached."""
        return len(self._cache)

    @property
    def evictions(self) -> int:
        """Entries dropped by the LRU bound."""
        return self._cache.stats.evictions

    @property
    def breaker_trips(self) -> int:
        """Times the circuit breaker tripped open (0 without a breaker)."""
        return self._breaker.trips if self._breaker is not None else 0

    def __repr__(self) -> str:
        return (
            f"PlanManager(size={self.size}, hits={self.hits}, "
            f"misses={self.misses}, replans={self.replans}, "
            f"evictions={self.evictions}, breaker_hits={self.breaker_hits})"
        )
