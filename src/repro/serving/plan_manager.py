"""Execution-plan cache with drift-triggered re-planning.

Planning a window runs the full scheduler front-end (tiling search,
``Ps``/``Pv`` optimization, Algorithm 2 balance) — far more work than
simulating the window's incremental costs.  The serving layer therefore
caches plans in an LRU keyed by :class:`~repro.serving.signature.WorkloadSignature`
and re-invokes :class:`~repro.core.scheduler.DiTileScheduler` only when

* a window's signature misses the cache, or
* the :class:`~repro.serving.signature.DriftDetector` observes that the
  workload has drifted beyond threshold from the profile the cached plan
  was computed for.

Resolution is sequential in window order (the service resolves plans in
its single-threaded dispatch stage), so cache behaviour — and therefore
every served result — is deterministic regardless of worker-pool timing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from ..caching import LRUCache
from ..core.plan import DGNNSpec, ExecutionPlan
from ..ditile import DiTileAccelerator
from ..graphs.dynamic import DynamicGraph
from ..obs import counter_add as obs_counter_add
from ..obs import span as obs_span
from .signature import DriftDetector, WindowProfile, WorkloadSignature

__all__ = ["PlanDecision", "PlanEntry", "PlanManager"]


class PlanDecision(enum.Enum):
    """How a window's plan was obtained."""

    HIT = "hit"  # cached plan reused as-is
    MISS = "miss"  # no cached plan for this signature; scheduler invoked
    REPLAN = "replan"  # cached plan found but drift fired; scheduler invoked


@dataclass
class PlanEntry:
    """One cached plan plus the workload profile it was computed for."""

    plan: ExecutionPlan
    reference: WindowProfile


class PlanManager:
    """LRU-bounded plan cache in front of the DiTile scheduler."""

    def __init__(
        self,
        model: DiTileAccelerator,
        capacity: int = 32,
        drift_threshold: float = 0.25,
    ):
        self.model = model
        self.detector = DriftDetector(drift_threshold)
        self._cache: LRUCache[WorkloadSignature, PlanEntry] = LRUCache(capacity)
        self.hits = 0
        self.misses = 0
        self.replans = 0

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def resolve(
        self,
        transition: DynamicGraph,
        spec: DGNNSpec,
        profile: Optional[WindowProfile] = None,
    ) -> Tuple[ExecutionPlan, PlanDecision]:
        """The plan to execute ``transition`` (its last snapshot's window)
        under, plus how it was obtained.

        ``transition`` is the ingest stage's context graph — the previous
        window's snapshot followed by the current one (just the current
        one for the first window).  A fresh plan is computed on exactly
        this graph; a cached plan is applied to it unchanged.
        """
        with obs_span("resolve") as sp:
            plan, decision = self._resolve(transition, spec, profile)
            if sp.enabled:
                sp.set_attr("decision", decision.value)
                obs_counter_add(f"plan_cache.{decision.value}", 1)
            return plan, decision

    def _resolve(
        self,
        transition: DynamicGraph,
        spec: DGNNSpec,
        profile: Optional[WindowProfile],
    ) -> Tuple[ExecutionPlan, PlanDecision]:
        current = profile or WindowProfile.from_snapshot(transition[-1])
        signature = WorkloadSignature.from_profile(current, spec)
        entry = self._cache.get(signature)
        if entry is None:
            plan = self.model.scheduler.plan(transition, spec)
            self._cache.put(signature, PlanEntry(plan, current))
            self.misses += 1
            return plan, PlanDecision.MISS
        if self.detector.fires(entry.reference, current):
            plan = self.model.scheduler.plan(transition, spec)
            self._cache.put(signature, PlanEntry(plan, current))
            self.replans += 1
            return plan, PlanDecision.REPLAN
        self.hits += 1
        return entry.plan, PlanDecision.HIT

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def lookups(self) -> int:
        """Total resolve calls."""
        return self.hits + self.misses + self.replans

    @property
    def hit_rate(self) -> float:
        """Fraction of windows served from cache without re-planning."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    @property
    def size(self) -> int:
        """Plans currently cached."""
        return len(self._cache)

    @property
    def evictions(self) -> int:
        """Entries dropped by the LRU bound."""
        return self._cache.stats.evictions

    def __repr__(self) -> str:
        return (
            f"PlanManager(size={self.size}, hits={self.hits}, "
            f"misses={self.misses}, replans={self.replans}, "
            f"evictions={self.evictions})"
        )
