"""The streaming-inference service: ingest -> plan/dispatch -> execute.

Pipeline shape (PiPAD-style preparation/execution overlap):

::

    events ──> [ingest thread] ──(bounded queue)──> [dispatch] ──> [worker pool]
                incremental          backpressure      plan cache      batched
                window builds                          + drift         simulation

* The **ingest thread** runs :class:`~repro.serving.ingest.WindowedIngestor`
  and pushes closed windows into a bounded queue — when execution falls
  behind, the queue fills and ingest blocks (backpressure).
* The **dispatch stage** (caller's thread) runs the overlapped
  :class:`~repro.serving.pipeline.WindowPipeline`: it keeps up to
  ``pipeline_depth`` batches of ``max_batch_windows`` windows in flight,
  resolving each window's plan *sequentially in window order* through
  the :class:`~repro.serving.plan_manager.PlanManager` while earlier
  batches are still executing.  Sequential plan resolution is what makes
  cache decisions — and therefore results — independent of pool timing.
* The **worker pool** simulates the in-flight windows concurrently; the
  dispatch stage collects batches oldest-first, in window order,
  bounding in-flight work at ``pipeline_depth * max_batch_windows``.

Determinism: :func:`serve_offline` runs the plain offline batch pipeline
(window-discretize the whole stream, then price each transition
sequentially) with the identical plan-manager policy.  Its per-window
:class:`~repro.accel.metrics.SimulationResult`\\ s are exactly equal to
the online service's, which the parity tests assert.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # import-cycle guard: durability imports serving.stats
    from ..durability.config import DurabilityConfig

from ..accel.metrics import SimulationResult
from ..core.plan import DGNNSpec
from ..ditile import DiTileAccelerator
from ..graphs.continuous import ContinuousDynamicGraph
from ..graphs.snapshot import GraphSnapshot
from ..obs import gauge_set as obs_gauge_set
from ..obs import span as obs_span
from ..resilience.chaos import ChaosSchedule
from ..resilience.faults import FaultModel
from ..resilience.policies import BreakerConfig, RetryPolicy
from .executor import (
    WindowExecutor,
    WindowRunner,
    simulate_window,
    transition_graph,
)
from .ingest import WindowedIngestor
from .pipeline import QueueBatchSource, WindowPipeline
from .plan_manager import PlanManager
from .stats import ServiceStats, wall_clock

__all__ = ["ServiceConfig", "ServingReport", "StreamingService", "serve_offline"]

_SENTINEL = object()


@dataclass(frozen=True)
class ServiceConfig:
    """Tunable knobs of the streaming service."""

    #: stream-time width of one snapshot window
    window: float = 1.0
    #: window-clock anchor; ``None`` anchors at the first event time
    origin: Optional[float] = None
    #: simulation worker threads (0 = inline sequential execution)
    workers: int = 2
    #: pending windows grouped into one worker-pool batch
    max_batch_windows: int = 4
    #: batches in flight at once (1 = serialized dispatch: each batch is
    #: collected before the next is resolved; results are bit-identical
    #: at every depth — see docs/serving.md "Pipelined execution")
    pipeline_depth: int = 2
    #: bound of the ingest->dispatch queue (the backpressure knob)
    queue_capacity: int = 8
    #: LRU bound of the execution-plan cache
    plan_cache_capacity: int = 32
    #: relative workload change that forces a re-plan on a cache hit
    drift_threshold: float = 0.25
    #: reject late events instead of dropping/counting them
    strict_time_order: bool = False
    # Resilience hooks — all off by default; with every one at its
    # default the service is bit-identical to the pre-resilience code
    # path (the bench counter gate relies on it).
    #: retry window executions with exponential backoff (``None`` = a
    #: failed execution aborts the stream, the pre-resilience behaviour)
    retry: Optional[RetryPolicy] = None
    #: trip a circuit breaker on replan storms, serving the last-good plan
    breaker: Optional[BreakerConfig] = None
    #: divert malformed events to a dead-letter queue instead of raising
    quarantine: bool = False
    #: drop windows when the ingest queue is full instead of blocking
    load_shedding: bool = False
    #: seeded fault-injection schedule (chaos testing only)
    chaos: Optional[ChaosSchedule] = None
    #: hardware fault model applied to every window simulation
    faults: Optional[FaultModel] = None
    #: durable ingest (write-ahead log + checkpoints + crash recovery);
    #: ``None`` runs the exact pre-durability code path
    durability: Optional["DurabilityConfig"] = None

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ValueError("window must be positive")
        if self.durability is not None and self.load_shedding:
            raise ValueError(
                "load_shedding is incompatible with durable ingest: "
                "timing-dependent drops cannot be replayed crash-"
                "consistently (a resumed run must re-serve exactly the "
                "windows the original run served)"
            )
        if self.max_batch_windows < 1:
            raise ValueError("max_batch_windows must be >= 1")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.pipeline_depth < 1:
            raise ValueError("pipeline_depth must be >= 1")


@dataclass
class ServingReport:
    """Everything one :meth:`StreamingService.serve` run produced."""

    results: List[SimulationResult]
    stats: ServiceStats

    @property
    def num_windows(self) -> int:
        """Windows served."""
        return len(self.results)

    @property
    def total_cycles(self) -> float:
        """Accelerator cycles summed over all served windows."""
        return sum(r.execution_cycles for r in self.results)


class StreamingService:
    """Serves an event stream through the DiTile pipeline, online."""

    def __init__(
        self,
        model: Optional[DiTileAccelerator] = None,
        config: ServiceConfig = ServiceConfig(),
    ):
        self.model = model if model is not None else DiTileAccelerator()
        self.config = config

    def _plan_manager(self) -> PlanManager:
        return PlanManager(
            self.model,
            capacity=self.config.plan_cache_capacity,
            drift_threshold=self.config.drift_threshold,
            breaker=self.config.breaker,
        )

    def _window_runner(
        self, spec: DGNNSpec, chaos: Optional[ChaosSchedule]
    ) -> WindowRunner:
        return WindowRunner(
            self.model,
            spec,
            chaos=chaos,
            faults=self.config.faults,
            retry=self.config.retry,
        )

    # ------------------------------------------------------------------
    # Online serving
    # ------------------------------------------------------------------
    def serve(
        self, stream: ContinuousDynamicGraph, spec: DGNNSpec
    ) -> ServingReport:
        """Serve ``stream`` end to end and return results plus stats."""
        with obs_span(
            "serve",
            stream=stream.name,
            workers=self.config.workers,
            max_batch_windows=self.config.max_batch_windows,
        ):
            return self._serve(stream, spec)

    def _serve(
        self, stream: ContinuousDynamicGraph, spec: DGNNSpec
    ) -> ServingReport:
        cfg = self.config
        dur = None
        if cfg.durability is not None:
            from ..durability.recovery import DurableRun

            dur = DurableRun(
                cfg.durability, window=cfg.window, origin=cfg.origin
            ).start()
        try:
            return self._serve_run(stream, spec, dur)
        finally:
            if dur is not None:
                dur.close()

    def _serve_run(
        self,
        stream: ContinuousDynamicGraph,
        spec: DGNNSpec,
        dur=None,
    ) -> ServingReport:
        cfg = self.config
        chaos = (
            cfg.chaos if cfg.chaos is not None and not cfg.chaos.is_quiet else None
        )
        checkpoint = dur.checkpoint if dur is not None else None
        ingestor = WindowedIngestor.for_stream(
            stream,
            window=cfg.window,
            feature_dim=spec.feature_dim,
            origin=cfg.origin,
            strict_time_order=cfg.strict_time_order,
            quarantine=cfg.quarantine,
            initial=checkpoint.snapshot if checkpoint is not None else None,
            start_window=dur.watermark if dur is not None else 0,
        )
        events = stream.events
        if chaos is not None and chaos.poison_rate > 0.0:
            # Poison before logging: the WAL records the stream the
            # service actually consumed, so replay reproduces the exact
            # injected events without re-running the chaos schedule.
            events = chaos.inject(events, num_vertices=stream.num_vertices)
        if dur is not None:
            events = dur.wrap_stream(events)
        window_queue: "queue.Queue" = queue.Queue(maxsize=cfg.queue_capacity)
        stop = threading.Event()
        shed = [0]  # mutated by the ingest thread, read after join

        def _enqueue(item) -> bool:
            """Blocking put that gives up once the dispatcher has stopped
            (so an aborted dispatch loop never strands the ingest thread
            on a full queue)."""
            while not stop.is_set():
                try:
                    window_queue.put(item, timeout=0.05)
                    return True
                except queue.Full:
                    continue
            return False

        def _ingest() -> None:
            try:
                for window in ingestor.windows(events):
                    # The span covers the queue hand-off, so its duration
                    # shows backpressure stalls (a full queue) directly.
                    with obs_span("ingest", window=window.index) as sp:
                        if sp.enabled:
                            sp.add("events", window.num_events)
                        if cfg.load_shedding:
                            try:
                                window_queue.put_nowait(window)
                            except queue.Full:
                                shed[0] += 1
                        elif not _enqueue(window):
                            return
                # The sentinel (and any error below) always blocks its way
                # in — shedding only ever drops windows.
                _enqueue(_SENTINEL)
            except BaseException as exc:  # propagate into the dispatch loop
                _enqueue(exc)

        ingest_thread = threading.Thread(
            target=_ingest, name="repro-serve-ingest", daemon=True
        )
        stats = ServiceStats()
        results: List[SimulationResult] = []
        manager = self._plan_manager()
        runner = self._window_runner(spec, chaos)
        prev_snapshot = None
        committer = None
        if dur is not None:
            from ..durability.checkpoint import Checkpoint

            if checkpoint is not None:
                # Restore the committed prefix: served results/records,
                # the execution-failure counters (those windows are never
                # re-executed), and the plan-manager state as of the
                # watermark — everything else (events, late, quarantine)
                # is re-derived identically by the WAL replay itself.
                manager.restore_state(checkpoint.plan_state)
                results.extend(checkpoint.results)
                stats.records.extend(checkpoint.records)
                stats.retries = checkpoint.counters.get("retries", 0)
                stats.windows_failed = checkpoint.counters.get(
                    "windows_failed", 0
                )
                stats.failures.extend(checkpoint.counters.get("failures", []))
                prev_snapshot = checkpoint.snapshot

            def _capture(watermark, snapshot, plan_state) -> Checkpoint:
                return Checkpoint(
                    watermark=watermark,
                    snapshot=snapshot,
                    plan_state=plan_state,
                    results=list(results),
                    records=list(stats.records),
                    counters={
                        "retries": stats.retries,
                        "windows_failed": stats.windows_failed,
                        "failures": list(stats.failures),
                    },
                    wal_records=len(dur.records) + dur.wal.records_appended,
                    meta={"window": cfg.window, "origin": cfg.origin},
                )

            committer = dur.committer(_capture)
        started = wall_clock()
        ingest_thread.start()
        pool = WindowExecutor(cfg.workers)
        try:
            # Plans still resolve sequentially, in window order, on this
            # thread before any simulation is scheduled — the pipeline
            # only overlaps *when* batches resolve/execute, so cache
            # behaviour (and results) cannot depend on worker timing.
            WindowPipeline(  # repro: noqa[MP001] false positive via the BatchSource protocol: only the dist merge source's pull() can fork (shard restart); this queue-backed source never does
                source=QueueBatchSource(window_queue, _SENTINEL),
                manager=manager,
                runner=runner,
                pool=pool,
                spec=spec,
                stats=stats,
                results=results,
                depth=cfg.pipeline_depth,
                max_batch_windows=cfg.max_batch_windows,
                prev=prev_snapshot,
                committer=committer,
            ).drive()
        finally:
            # Drain in-flight simulations (queued-but-unstarted ones are
            # cancelled), then release the ingest thread: `stop` breaks
            # any blocking put, so the join cannot hang even when the
            # dispatch loop aborted with the queue full.
            pool.shutdown(wait=True, cancel_pending=True)
            stop.set()
            ingest_thread.join()
        stats.elapsed_s = wall_clock() - started
        stats.windows = len(results)
        stats.events = ingestor.total_events
        stats.late_events = ingestor.late_events
        stats.shed_windows = shed[0]
        stats.quarantined_events = ingestor.quarantined_events
        stats.from_plan_manager(manager)
        if dur is not None:
            dur.finalize_stats(stats)
        obs_gauge_set("serve.plan_cache_hit_rate", stats.plan_hit_rate)
        if (
            cfg.retry is not None
            or cfg.breaker is not None
            or cfg.quarantine
            or cfg.load_shedding
            or chaos is not None
        ):
            obs_gauge_set("serve.retries", stats.retries)
            obs_gauge_set("serve.windows_failed", stats.windows_failed)
            obs_gauge_set("serve.shed_windows", stats.shed_windows)
            obs_gauge_set("serve.quarantined_events", stats.quarantined_events)
            obs_gauge_set("serve.breaker_trips", stats.breaker_trips)
            obs_gauge_set("serve.plan_breaker_hits", stats.plan_breaker_hits)
        return ServingReport(results=results, stats=stats)


def serve_offline(
    stream: ContinuousDynamicGraph,
    spec: DGNNSpec,
    model: Optional[DiTileAccelerator] = None,
    config: ServiceConfig = ServiceConfig(),
) -> List[SimulationResult]:
    """The offline batch pipeline over the same windowed discretization.

    Discretizes the whole stream up front
    (:meth:`ContinuousDynamicGraph.discretize_windows`), then prices each
    window transition sequentially with the identical plan-cache policy.
    This is the determinism reference: :meth:`StreamingService.serve` must
    produce exactly these per-window results.
    """
    model = model if model is not None else DiTileAccelerator()
    service = StreamingService(model, config)
    manager = service._plan_manager()
    discrete = stream.discretize_windows(
        config.window, feature_dim=spec.feature_dim, origin=config.origin
    )
    results: List[SimulationResult] = []
    prev: Optional[GraphSnapshot] = None
    for t in range(discrete.num_snapshots):
        transition = transition_graph(prev, discrete[t], name=f"window-{t}")
        plan, _ = manager.resolve(transition, spec)
        results.append(
            simulate_window(model, spec, transition, plan, faults=config.faults)
        )
        prev = discrete[t]
    return results
