"""The streaming-inference service: ingest -> plan/dispatch -> execute.

Pipeline shape (PiPAD-style preparation/execution overlap):

::

    events ──> [ingest thread] ──(bounded queue)──> [dispatch] ──> [worker pool]
                incremental          backpressure      plan cache      batched
                window builds                          + drift         simulation

* The **ingest thread** runs :class:`~repro.serving.ingest.WindowedIngestor`
  and pushes closed windows into a bounded queue — when execution falls
  behind, the queue fills and ingest blocks (backpressure).
* The **dispatch stage** (caller's thread) drains up to
  ``max_batch_windows`` pending windows, resolves each window's plan
  *sequentially in window order* through the
  :class:`~repro.serving.plan_manager.PlanManager`, and submits the batch
  to the worker pool.  Sequential plan resolution is what makes cache
  decisions — and therefore results — independent of pool timing.
* The **worker pool** simulates the batch's windows concurrently; the
  dispatch stage collects them in order before pulling the next batch,
  bounding in-flight work at the batch size.

Determinism: :func:`serve_offline` runs the plain offline batch pipeline
(window-discretize the whole stream, then price each transition
sequentially) with the identical plan-manager policy.  Its per-window
:class:`~repro.accel.metrics.SimulationResult`\\ s are exactly equal to
the online service's, which the parity tests assert.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass
from typing import List, Optional

from ..accel.metrics import SimulationResult
from ..core.plan import DGNNSpec
from ..ditile import DiTileAccelerator
from ..graphs.continuous import ContinuousDynamicGraph
from ..graphs.snapshot import GraphSnapshot
from ..obs import gauge_set as obs_gauge_set
from ..obs import span as obs_span
from .executor import WindowExecutor, simulate_window, transition_graph
from .ingest import Window, WindowedIngestor
from .plan_manager import PlanManager
from .stats import ServiceStats, WindowRecord, timed_call, wall_clock

__all__ = ["ServiceConfig", "ServingReport", "StreamingService", "serve_offline"]

_SENTINEL = object()


@dataclass(frozen=True)
class ServiceConfig:
    """Tunable knobs of the streaming service."""

    #: stream-time width of one snapshot window
    window: float = 1.0
    #: window-clock anchor; ``None`` anchors at the first event time
    origin: Optional[float] = None
    #: simulation worker threads (0 = inline sequential execution)
    workers: int = 2
    #: pending windows grouped into one worker-pool batch
    max_batch_windows: int = 4
    #: bound of the ingest->dispatch queue (the backpressure knob)
    queue_capacity: int = 8
    #: LRU bound of the execution-plan cache
    plan_cache_capacity: int = 32
    #: relative workload change that forces a re-plan on a cache hit
    drift_threshold: float = 0.25
    #: reject late events instead of dropping/counting them
    strict_time_order: bool = False

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ValueError("window must be positive")
        if self.max_batch_windows < 1:
            raise ValueError("max_batch_windows must be >= 1")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.workers < 0:
            raise ValueError("workers must be >= 0")


@dataclass
class ServingReport:
    """Everything one :meth:`StreamingService.serve` run produced."""

    results: List[SimulationResult]
    stats: ServiceStats

    @property
    def num_windows(self) -> int:
        """Windows served."""
        return len(self.results)

    @property
    def total_cycles(self) -> float:
        """Accelerator cycles summed over all served windows."""
        return sum(r.execution_cycles for r in self.results)


class StreamingService:
    """Serves an event stream through the DiTile pipeline, online."""

    def __init__(
        self,
        model: Optional[DiTileAccelerator] = None,
        config: ServiceConfig = ServiceConfig(),
    ):
        self.model = model if model is not None else DiTileAccelerator()
        self.config = config

    def _plan_manager(self) -> PlanManager:
        return PlanManager(
            self.model,
            capacity=self.config.plan_cache_capacity,
            drift_threshold=self.config.drift_threshold,
        )

    # ------------------------------------------------------------------
    # Online serving
    # ------------------------------------------------------------------
    def serve(
        self, stream: ContinuousDynamicGraph, spec: DGNNSpec
    ) -> ServingReport:
        """Serve ``stream`` end to end and return results plus stats."""
        with obs_span(
            "serve",
            stream=stream.name,
            workers=self.config.workers,
            max_batch_windows=self.config.max_batch_windows,
        ):
            return self._serve(stream, spec)

    def _serve(
        self, stream: ContinuousDynamicGraph, spec: DGNNSpec
    ) -> ServingReport:
        cfg = self.config
        ingestor = WindowedIngestor.for_stream(
            stream,
            window=cfg.window,
            feature_dim=spec.feature_dim,
            origin=cfg.origin,
            strict_time_order=cfg.strict_time_order,
        )
        window_queue: "queue.Queue" = queue.Queue(maxsize=cfg.queue_capacity)

        def _ingest() -> None:
            try:
                for window in ingestor.windows(stream.events):
                    # The span covers the queue hand-off, so its duration
                    # shows backpressure stalls (a full queue) directly.
                    with obs_span("ingest", window=window.index) as sp:
                        if sp.enabled:
                            sp.add("events", window.num_events)
                        window_queue.put(window)
                window_queue.put(_SENTINEL)
            except BaseException as exc:  # propagate into the dispatch loop
                window_queue.put(exc)

        ingest_thread = threading.Thread(
            target=_ingest, name="repro-serve-ingest", daemon=True
        )
        stats = ServiceStats()
        results: List[SimulationResult] = []
        manager = self._plan_manager()
        prev: Optional[GraphSnapshot] = None
        started = wall_clock()
        ingest_thread.start()
        with WindowExecutor(cfg.workers) as pool:
            done = False
            while not done:
                depth = window_queue.qsize()
                stats.record_queue_depth(depth)
                obs_gauge_set("serve.queue_depth", depth)
                batch: List[Window] = []
                item = window_queue.get()
                while True:
                    if item is _SENTINEL:
                        done = True
                        break
                    if isinstance(item, BaseException):
                        raise item
                    batch.append(item)
                    if len(batch) >= cfg.max_batch_windows:
                        break
                    try:
                        item = window_queue.get_nowait()
                    except queue.Empty:
                        break
                if not batch:
                    break
                stats.batches += 1
                # Plans resolve sequentially, in window order, before any
                # simulation is scheduled — cache behaviour cannot depend
                # on worker timing.
                futures = []
                for window in batch:
                    with obs_span("window", index=window.index) as sp:
                        transition = transition_graph(
                            prev, window.snapshot, name=f"window-{window.index}"
                        )
                        (plan, decision), resolve_s = timed_call(
                            lambda t=transition: manager.resolve(t, spec)
                        )
                        stats.plan_resolve_s += resolve_s
                        if sp.enabled:
                            sp.set_attr("decision", decision.value)
                            sp.add("events", window.num_events)
                    futures.append(
                        (
                            window,
                            decision,
                            pool.submit(
                                lambda t=transition, p=plan, i=window.index: (
                                    self._execute(spec, t, p, i)
                                )
                            ),
                        )
                    )
                    prev = window.snapshot
                for window, decision, future in futures:
                    result, execute_s = future.result()
                    stats.execute_s += execute_s
                    results.append(result)
                    stats.records.append(
                        WindowRecord(
                            index=window.index,
                            num_events=window.num_events,
                            latency_s=wall_clock() - window.closed_at,
                            cycles=result.execution_cycles,
                            plan_decision=decision.value,
                        )
                    )
        ingest_thread.join()
        stats.elapsed_s = wall_clock() - started
        stats.windows = len(results)
        stats.events = ingestor.total_events
        stats.late_events = ingestor.late_events
        stats.from_plan_manager(manager)
        obs_gauge_set("serve.plan_cache_hit_rate", stats.plan_hit_rate)
        return ServingReport(results=results, stats=stats)

    def _execute(self, spec, transition, plan, index):
        """Simulate one window in a worker thread, timing the execution.

        Returns ``(result, seconds)``; the dispatch thread accumulates the
        seconds into ``stats.execute_s`` so no stats object is mutated
        concurrently.
        """
        with obs_span("execute", window=index) as sp:
            result, seconds = timed_call(
                lambda: simulate_window(self.model, spec, transition, plan)
            )
            if sp.enabled:
                sp.add("cycles", result.execution_cycles)
            return result, seconds


def serve_offline(
    stream: ContinuousDynamicGraph,
    spec: DGNNSpec,
    model: Optional[DiTileAccelerator] = None,
    config: ServiceConfig = ServiceConfig(),
) -> List[SimulationResult]:
    """The offline batch pipeline over the same windowed discretization.

    Discretizes the whole stream up front
    (:meth:`ContinuousDynamicGraph.discretize_windows`), then prices each
    window transition sequentially with the identical plan-cache policy.
    This is the determinism reference: :meth:`StreamingService.serve` must
    produce exactly these per-window results.
    """
    model = model if model is not None else DiTileAccelerator()
    service = StreamingService(model, config)
    manager = service._plan_manager()
    discrete = stream.discretize_windows(
        config.window, feature_dim=spec.feature_dim, origin=config.origin
    )
    results: List[SimulationResult] = []
    prev: Optional[GraphSnapshot] = None
    for t in range(discrete.num_snapshots):
        transition = transition_graph(prev, discrete[t], name=f"window-{t}")
        plan, _ = manager.resolve(transition, spec)
        results.append(simulate_window(model, spec, transition, plan))
        prev = discrete[t]
    return results
