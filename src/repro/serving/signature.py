"""Workload signatures and drift detection for the serving plan cache.

The scheduler's decisions (tiling ``alpha``, the ``Ps x Pv`` grid, the
balance mapping) depend on coarse workload shape — vertex/edge counts and
the degree profile — not on the exact edge list.  Two windows whose shapes
agree to within a quantization bucket can therefore share one
:class:`~repro.core.plan.ExecutionPlan`.  This module defines

* :class:`WindowProfile` — the measured shape of one window's snapshot;
* :class:`WorkloadSignature` — its quantized, hashable cache key
  (log-bucketed counts + degree-skew bucket + the DGNN spec);
* :class:`DriftDetector` — fires when a window's profile has moved too far
  from the profile its cached plan was computed for (DGC-style workload
  drift across time chunks), forcing a re-plan even on a signature hit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.plan import DGNNSpec
from ..graphs.snapshot import GraphSnapshot

__all__ = ["WindowProfile", "WorkloadSignature", "DriftDetector"]


@dataclass(frozen=True)
class WindowProfile:
    """Coarse shape of one window's snapshot, as seen by the scheduler."""

    num_vertices: int
    num_edges: int
    #: max in-degree over mean in-degree — the skew the balance stage
    #: (Algorithm 2) exists to absorb; 1.0 for regular or empty graphs
    degree_skew: float

    @classmethod
    def from_snapshot(cls, snapshot: GraphSnapshot) -> "WindowProfile":
        """Measure ``snapshot``'s profile."""
        degrees = snapshot.in_degree()
        if snapshot.num_edges == 0 or snapshot.num_vertices == 0:
            skew = 1.0
        else:
            skew = float(degrees.max()) / (snapshot.num_edges / snapshot.num_vertices)
        return cls(
            num_vertices=snapshot.num_vertices,
            num_edges=snapshot.num_edges,
            degree_skew=skew,
        )


def _log_bucket(value: float, resolution: int) -> int:
    """Quantize ``value`` onto a log2 grid with ``resolution`` steps/octave."""
    if value <= 0:
        return -1
    return round(math.log2(value) * resolution)


@dataclass(frozen=True)
class WorkloadSignature:
    """Quantized plan-cache key: workloads mapping to the same signature
    are similar enough for the scheduler to make the same decisions."""

    spec: DGNNSpec
    vertex_bucket: int
    edge_bucket: int
    skew_bucket: int

    #: log2 sub-steps per octave — 4 means counts within ~19% of each
    #: other usually share a bucket
    RESOLUTION = 4

    @classmethod
    def from_profile(
        cls, profile: WindowProfile, spec: DGNNSpec
    ) -> "WorkloadSignature":
        """Quantize ``profile`` under ``spec``."""
        return cls(
            spec=spec,
            vertex_bucket=_log_bucket(profile.num_vertices, cls.RESOLUTION),
            edge_bucket=_log_bucket(profile.num_edges, cls.RESOLUTION),
            skew_bucket=_log_bucket(profile.degree_skew, cls.RESOLUTION),
        )


@dataclass(frozen=True)
class DriftDetector:
    """Decides when a cached plan's workload assumptions have expired.

    ``threshold`` bounds the tolerated *relative* change in edge count and
    degree skew between the profile a plan was computed for and the window
    now being served.  Quantized signatures alone would let a workload
    creep arbitrarily far through a sequence of same-bucket steps while
    its plan entry keeps being refreshed; the detector compares against
    the plan's own reference profile, so accumulated drift fires it.
    """

    threshold: float = 0.25

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise ValueError(f"drift threshold must be positive, got {self.threshold}")

    @staticmethod
    def _relative_change(reference: float, current: float) -> float:
        if reference == current:
            return 0.0
        return abs(current - reference) / max(abs(reference), 1.0)

    def drift(self, reference: WindowProfile, current: WindowProfile) -> float:
        """The drift measure: worst relative change over the tracked axes."""
        return max(
            self._relative_change(reference.num_edges, current.num_edges),
            self._relative_change(reference.num_vertices, current.num_vertices),
            self._relative_change(reference.degree_skew, current.degree_skew),
        )

    def fires(self, reference: WindowProfile, current: WindowProfile) -> bool:
        """Whether ``current`` has drifted beyond the threshold."""
        return self.drift(reference, current) > self.threshold
